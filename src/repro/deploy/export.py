"""Backend export: the multi-backend compilation story.

"Overton compiles the schema into (many versions of) TensorFlow, CoreML, or
PyTorch" (§2.4).  In this reproduction the executable backend is the
repro.nn substrate; this module emits the *backend-neutral program
description* that multi-backend compilation needs: a computation graph
(nodes = payload encoders, aggregations, task heads; edges = the schema's
dataflow) plus per-backend source skeletons that a code generator would
fill in.

The graph is what downstream tooling consumes (visualization, backend code
generation, serving validation); it contains everything *structural* about
the compiled model and nothing about learned weights.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.schema_def import Schema
from repro.core.tuning_spec import ModelConfig
from repro.errors import CompilationError

BACKENDS = ("reference", "tensorflow", "pytorch", "coreml")


@dataclass
class GraphNode:
    """One operation in the exported backend-neutral compute graph."""

    name: str
    kind: str  # input | encoder | aggregate | head
    op: str
    inputs: list[str] = field(default_factory=list)
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "op": self.op,
            "inputs": self.inputs,
            "attributes": self.attributes,
        }


@dataclass
class ProgramGraph:
    """The compiled model's structure as a DAG."""

    nodes: list[GraphNode] = field(default_factory=list)

    def node(self, name: str) -> GraphNode:
        for n in self.nodes:
            if n.name == name:
                return n
        raise CompilationError(f"no graph node named {name!r}")

    def topological(self) -> list[GraphNode]:
        """Nodes in dependency order (validates acyclicity)."""
        by_name = {n.name: n for n in self.nodes}
        state: dict[str, int] = {}
        order: list[GraphNode] = []

        def visit(name: str) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                raise CompilationError(f"cycle through {name!r}")
            state[name] = 0
            for dep in by_name[name].inputs:
                visit(dep)
            state[name] = 1
            order.append(by_name[name])

        for n in self.nodes:
            visit(n.name)
        return order

    def to_json(self) -> str:
        return json.dumps([n.to_dict() for n in self.nodes], indent=2)


def build_program_graph(schema: Schema, config: ModelConfig) -> ProgramGraph:
    """Lower (schema, tuning config) into the backend-neutral graph."""
    graph = ProgramGraph()
    for payload in schema.topological_payload_order():
        p_config = config.for_payload(payload.name)
        if payload.type == "sequence":
            graph.nodes.append(
                GraphNode(
                    name=f"input:{payload.name}",
                    kind="input",
                    op="token_ids",
                    attributes={"max_length": payload.max_length},
                )
            )
            graph.nodes.append(
                GraphNode(
                    name=f"encode:{payload.name}",
                    kind="encoder",
                    op=p_config.encoder,
                    inputs=[f"input:{payload.name}"],
                    attributes={
                        "embedding": p_config.embedding,
                        "size": p_config.size,
                        "dropout": p_config.dropout,
                    },
                )
            )
        elif payload.type == "singleton" and payload.base:
            graph.nodes.append(
                GraphNode(
                    name=f"encode:{payload.name}",
                    kind="aggregate",
                    op=p_config.aggregation,
                    inputs=[f"encode:{b}" for b in payload.base],
                    attributes={"size": p_config.size},
                )
            )
        elif payload.type == "singleton":
            graph.nodes.append(
                GraphNode(
                    name=f"input:{payload.name}",
                    kind="input",
                    op="features",
                    attributes={"dim": payload.dim},
                )
            )
            graph.nodes.append(
                GraphNode(
                    name=f"encode:{payload.name}",
                    kind="encoder",
                    op="project",
                    inputs=[f"input:{payload.name}"],
                    attributes={"size": p_config.size},
                )
            )
        elif payload.type == "set":
            graph.nodes.append(
                GraphNode(
                    name=f"input:{payload.name}",
                    kind="input",
                    op="set_members",
                    attributes={"max_members": payload.max_members},
                )
            )
            graph.nodes.append(
                GraphNode(
                    name=f"encode:{payload.name}",
                    kind="encoder",
                    op="span_pool+member_embed",
                    inputs=[f"input:{payload.name}", f"encode:{payload.range}"],
                    attributes={
                        "embedding": p_config.embedding,
                        "size": p_config.size,
                    },
                )
            )
    for task in schema.tasks:
        graph.nodes.append(
            GraphNode(
                name=f"head:{task.name}",
                kind="head",
                op=task.type,
                inputs=[f"encode:{task.payload}"],
                attributes={"classes": list(task.classes)},
            )
        )
    graph.topological()  # validates
    return graph


# ----------------------------------------------------------------------
# Backend skeleton emission
# ----------------------------------------------------------------------
_ENCODER_CALLS = {
    "reference": {
        "bow": "repro.nn.Embedding",
        "cnn": "repro.nn.CNNEncoder",
        "lstm": "repro.nn.LSTM",
        "bilstm": "repro.nn.BiLSTM",
        "gru": "repro.nn.GRU",
        "attention": "repro.nn.TransformerEncoder",
    },
    "tensorflow": {
        "bow": "tf.keras.layers.Embedding",
        "cnn": "tf.keras.layers.Conv1D",
        "lstm": "tf.keras.layers.LSTM",
        "bilstm": "tf.keras.layers.Bidirectional(LSTM)",
        "gru": "tf.keras.layers.GRU",
        "attention": "tf.keras.layers.MultiHeadAttention",
    },
    "pytorch": {
        "bow": "torch.nn.Embedding",
        "cnn": "torch.nn.Conv1d",
        "lstm": "torch.nn.LSTM",
        "bilstm": "torch.nn.LSTM(bidirectional=True)",
        "gru": "torch.nn.GRU",
        "attention": "torch.nn.TransformerEncoder",
    },
    "coreml": {
        "bow": "coreml.embedding",
        "cnn": "coreml.convolution1d",
        "lstm": "coreml.unilstm",
        "bilstm": "coreml.bilstm",
        "gru": "coreml.gru",
        "attention": "coreml.attention",
    },
}


def export_backend_skeleton(graph: ProgramGraph, backend: str) -> str:
    """Emit a human-readable source skeleton for one backend.

    Serving teams read this to see exactly what a backend build would
    contain; the reference backend's skeleton names real repro.nn classes.
    """
    if backend not in BACKENDS:
        raise CompilationError(
            f"unknown backend {backend!r}; choices: {BACKENDS}"
        )
    calls = _ENCODER_CALLS[backend]
    lines = [f"# {backend} program skeleton (generated by repro.deploy.export)"]
    for node in graph.topological():
        if node.kind == "input":
            lines.append(f"{_var(node.name)} = placeholder({node.attributes})")
        elif node.kind == "encoder":
            op = calls.get(node.op, node.op)
            args = ", ".join(_var(i) for i in node.inputs)
            lines.append(
                f"{_var(node.name)} = {op}(size={node.attributes.get('size')})({args})"
            )
        elif node.kind == "aggregate":
            args = ", ".join(_var(i) for i in node.inputs)
            lines.append(f"{_var(node.name)} = aggregate_{node.op}({args})")
        elif node.kind == "head":
            args = ", ".join(_var(i) for i in node.inputs)
            classes = len(node.attributes.get("classes") or []) or "members"
            lines.append(
                f"{_var(node.name)} = {node.op}_head(classes={classes})({args})"
            )
    return "\n".join(lines)


def _var(name: str) -> str:
    return name.replace(":", "_").replace("+", "_")
