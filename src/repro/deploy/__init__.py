"""Deployment: artifacts, the model store, serving, sync, and versioning."""

from repro.deploy.artifact import ModelArtifact
from repro.deploy.store import ModelStore, StoredVersion
from repro.deploy.predictor import Predictor, predictions_match
from repro.deploy.sync import (
    SyncCheck,
    SyncedPush,
    check_pair,
    data_fingerprint,
    fetch_pair,
    push_pair,
)
from repro.deploy.versioning import VersionLog, VersionRecord
from repro.deploy.export import (
    BACKENDS,
    GraphNode,
    ProgramGraph,
    build_program_graph,
    export_backend_skeleton,
)
from repro.deploy.profiler import SLA, LatencyProfile, profile_predictor, sla_gate

__all__ = [
    "ModelArtifact",
    "ModelStore",
    "StoredVersion",
    "Predictor",
    "predictions_match",
    "SyncCheck",
    "SyncedPush",
    "check_pair",
    "data_fingerprint",
    "fetch_pair",
    "push_pair",
    "VersionLog",
    "VersionRecord",
    "BACKENDS",
    "GraphNode",
    "ProgramGraph",
    "build_program_graph",
    "export_backend_skeleton",
    "SLA",
    "LatencyProfile",
    "profile_predictor",
    "sla_gate",
]
