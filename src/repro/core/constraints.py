"""Application-level constraints: the paper's stated future work.

"Supporting more complex, application-level constraints seems ideally
suited to an SRL approach, and is future work for Overton" (§4, §5).  This
module implements that extension in the spirit of DeepDive/Markov Logic:
declarative *soft constraints* over the joint outputs of multiple tasks,
applied at inference time by rescoring joint configurations.

A constraint scores a joint assignment of task predictions for one example;
violations subtract ``weight`` from the joint log-score.  Inference
enumerates the top-k options per constrained task (the per-task
distributions are already computed by the model) and picks the highest
scoring consistent configuration — knowledge-compilation style, no separate
query phase, matching the paper's description of Overton's SRL stance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ReproError


class ConstraintError(ReproError):
    """A constraint definition or application is invalid."""


@dataclass
class Constraint:
    """A soft constraint over a joint assignment.

    ``check(assignment, context)`` returns True when satisfied.  The
    assignment maps task name -> chosen label index; ``context`` is the
    caller-provided per-example payload (e.g. the record), so checks can
    inspect candidate entities etc.
    """

    name: str
    tasks: tuple[str, ...]
    check: Callable[[dict[str, int], Any], bool]
    weight: float = 5.0  # log-score penalty when violated

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ConstraintError(f"constraint {self.name!r} binds no tasks")
        if self.weight <= 0:
            raise ConstraintError(
                f"constraint {self.name!r}: weight must be positive "
                "(hard constraints use a large weight)"
            )


@dataclass
class JointDecodeResult:
    """One example's constrained decode."""

    assignment: dict[str, int]
    score: float
    violations: list[str] = field(default_factory=list)
    changed: dict[str, tuple[int, int]] = field(default_factory=dict)  # task -> (before, after)


class ConstraintSet:
    """A collection of constraints plus the joint decoder."""

    def __init__(self, constraints: Sequence[Constraint] = ()) -> None:
        names = [c.name for c in constraints]
        if len(set(names)) != len(names):
            raise ConstraintError(f"duplicate constraint names: {names}")
        self.constraints = list(constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def add(self, constraint: Constraint) -> None:
        if any(c.name == constraint.name for c in self.constraints):
            raise ConstraintError(f"constraint {constraint.name!r} already defined")
        self.constraints.append(constraint)

    def constrained_tasks(self) -> list[str]:
        tasks: list[str] = []
        for c in self.constraints:
            for t in c.tasks:
                if t not in tasks:
                    tasks.append(t)
        return tasks

    # ------------------------------------------------------------------
    # Joint decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        distributions: dict[str, np.ndarray],
        context: Any = None,
        top_k: int = 3,
    ) -> JointDecodeResult:
        """Pick the best joint assignment under the constraints.

        ``distributions`` maps task -> probability vector for ONE example.
        Unconstrained tasks keep their argmax.  Constrained tasks are
        jointly rescored over their per-task top-k candidates:

            score(a) = sum_t log p_t(a_t) - sum_violated(weight_c)
        """
        if top_k < 1:
            raise ConstraintError("top_k must be >= 1")
        independent = {
            task: int(np.argmax(probs)) for task, probs in distributions.items()
        }
        constrained = [t for t in self.constrained_tasks() if t in distributions]
        if not constrained or not self.constraints:
            return JointDecodeResult(assignment=independent, score=0.0)

        candidate_lists = []
        for task in constrained:
            probs = np.asarray(distributions[task], dtype=float)
            order = np.argsort(-probs)[: min(top_k, probs.size)]
            candidate_lists.append([(int(i), float(probs[i])) for i in order])

        best: JointDecodeResult | None = None
        for combo in itertools.product(*candidate_lists):
            assignment = dict(independent)
            log_score = 0.0
            for task, (idx, p) in zip(constrained, combo):
                assignment[task] = idx
                log_score += float(np.log(max(p, 1e-12)))
            violations = []
            for constraint in self.constraints:
                if not constraint.check(assignment, context):
                    violations.append(constraint.name)
                    log_score -= constraint.weight
            if best is None or log_score > best.score:
                best = JointDecodeResult(
                    assignment=assignment, score=log_score, violations=violations
                )
        assert best is not None
        best.changed = {
            t: (independent[t], best.assignment[t])
            for t in constrained
            if independent[t] != best.assignment[t]
        }
        return best

    def violation_rate(
        self,
        per_example_distributions: Sequence[dict[str, np.ndarray]],
        contexts: Sequence[Any] | None = None,
    ) -> float:
        """Fraction of examples whose *independent* argmaxes violate any
        constraint — the monitoring number that motivates joint decoding."""
        if not per_example_distributions:
            return 0.0
        contexts = contexts or [None] * len(per_example_distributions)
        violated = 0
        for dists, context in zip(per_example_distributions, contexts):
            assignment = {t: int(np.argmax(p)) for t, p in dists.items()}
            if any(not c.check(assignment, context) for c in self.constraints):
                violated += 1
        return violated / len(per_example_distributions)


# ----------------------------------------------------------------------
# The factoid application's natural constraint
# ----------------------------------------------------------------------
def intent_argument_compatibility(
    intent_classes: Sequence[str],
    candidate_categories_of: Callable[[Any, int], str | None],
    intent_category: dict[str, tuple[str, ...]],
    weight: float = 5.0,
) -> Constraint:
    """Intent and IntentArg must agree: the selected entity's category must
    be compatible with the predicted intent.

    ``candidate_categories_of(context, index)`` resolves a candidate index
    to its category for the current example.
    """

    def check(assignment: dict[str, int], context: Any) -> bool:
        intent_idx = assignment.get("Intent")
        arg_idx = assignment.get("IntentArg")
        if intent_idx is None or arg_idx is None:
            return True
        intent = intent_classes[intent_idx]
        category = candidate_categories_of(context, arg_idx)
        if category is None:
            return True  # unknown candidate: don't penalize
        return category in intent_category.get(intent, ())

    return Constraint(
        name="intent_argument_compatibility",
        tasks=("Intent", "IntentArg"),
        check=check,
        weight=weight,
    )
