"""Overton's core abstractions: schema, signature, tuning spec, facade.

The facade (:class:`repro.core.overton.Overton`) is imported lazily to keep
schema-only uses light; ``from repro.core import Overton`` still works.
"""

from repro.core.payloads import PAYLOAD_TYPES, PayloadSpec
from repro.core.tasks import TASK_TYPES, TaskSpec
from repro.core.schema_def import Schema
from repro.core.signature import InputSignature, ServingSignature, TaskSignature
from repro.core.constraints import (
    Constraint,
    ConstraintError,
    ConstraintSet,
    JointDecodeResult,
    intent_argument_compatibility,
)
from repro.core.tuning_spec import (
    AGGREGATION_CHOICES,
    ENCODER_CHOICES,
    ModelConfig,
    PayloadConfig,
    TrainerConfig,
    TuningSpec,
)

__all__ = [
    "PAYLOAD_TYPES",
    "PayloadSpec",
    "TASK_TYPES",
    "TaskSpec",
    "Schema",
    "InputSignature",
    "ServingSignature",
    "TaskSignature",
    "AGGREGATION_CHOICES",
    "ENCODER_CHOICES",
    "ModelConfig",
    "PayloadConfig",
    "TrainerConfig",
    "TuningSpec",
    "Overton",
    "Constraint",
    "ConstraintError",
    "ConstraintSet",
    "JointDecodeResult",
    "intent_argument_compatibility",
]


def __getattr__(name: str):
    if name == "Overton":
        from repro.core.overton import Overton

        return Overton
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
