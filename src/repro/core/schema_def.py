"""The Overton schema: payloads + tasks.

"Overton takes as input a schema whose design goal is to support rich
applications from modeling to automatic deployment ... the schema defines
what the model computes but not how" (§1).  Accordingly this object contains
**no hyperparameters**: encoders, sizes, and embeddings live in the separate
tuning specification (:mod:`repro.core.tuning_spec`), giving the paper's
*model independence*.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.payloads import PayloadSpec
from repro.core.tasks import TaskSpec
from repro.errors import SchemaError


@dataclass(frozen=True)
class Schema:
    """An immutable, validated Overton schema."""

    payloads: tuple[PayloadSpec, ...]
    tasks: tuple[TaskSpec, ...]

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def payload(self, name: str) -> PayloadSpec:
        for p in self.payloads:
            if p.name == name:
                return p
        raise SchemaError(f"unknown payload {name!r}")

    def task(self, name: str) -> TaskSpec:
        for t in self.tasks:
            if t.name == name:
                return t
        raise SchemaError(f"unknown task {name!r}")

    @property
    def payload_names(self) -> list[str]:
        return [p.name for p in self.payloads]

    @property
    def task_names(self) -> list[str]:
        return [t.name for t in self.tasks]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        names = [p.name for p in self.payloads]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate payload names: {names}")
        task_names = [t.name for t in self.tasks]
        if len(set(task_names)) != len(task_names):
            raise SchemaError(f"duplicate task names: {task_names}")
        if not self.tasks:
            raise SchemaError("a schema needs at least one task")

        known = set(names)
        for p in self.payloads:
            for ref in p.base:
                if ref not in known:
                    raise SchemaError(
                        f"payload {p.name!r} references unknown payload {ref!r}"
                    )
            if p.range is not None:
                if p.range not in known:
                    raise SchemaError(
                        f"payload {p.name!r} range references unknown payload {p.range!r}"
                    )
                if self.payload(p.range).type != "sequence":
                    raise SchemaError(
                        f"payload {p.name!r} range {p.range!r} must be a sequence"
                    )
        self._check_acyclic()

        for t in self.tasks:
            if t.payload not in known:
                raise SchemaError(
                    f"task {t.name!r} references unknown payload {t.payload!r}"
                )
            payload = self.payload(t.payload)
            if t.type == "select" and payload.type != "set":
                raise SchemaError(
                    f"select task {t.name!r} requires a set payload, "
                    f"got {payload.type!r}"
                )

    def _check_acyclic(self) -> None:
        """Payload references (base + range) must form a DAG."""
        edges: dict[str, list[str]] = {p.name: [] for p in self.payloads}
        for p in self.payloads:
            edges[p.name].extend(p.base)
            if p.range is not None:
                edges[p.name].append(p.range)

        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(node: str, trail: tuple[str, ...]) -> None:
            mark = state.get(node)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(trail + (node,))
                raise SchemaError(f"payload reference cycle: {cycle}")
            state[node] = 0
            for ref in edges[node]:
                visit(ref, trail + (node,))
            state[node] = 1

        for name in edges:
            visit(name, ())

    def topological_payload_order(self) -> list[PayloadSpec]:
        """Payloads ordered so references come before referrers."""
        order: list[PayloadSpec] = []
        done: set[str] = set()

        def visit(p: PayloadSpec) -> None:
            if p.name in done:
                return
            for ref in p.base:
                visit(self.payload(ref))
            if p.range is not None:
                visit(self.payload(p.range))
            done.add(p.name)
            order.append(p)

        for p in self.payloads:
            visit(p)
        return order

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, spec: dict) -> "Schema":
        """Parse the JSON schema format shown in Fig. 2a."""
        if not isinstance(spec, dict):
            raise SchemaError("schema must be a JSON object")
        unknown = set(spec) - {"payloads", "tasks"}
        if unknown:
            raise SchemaError(f"unknown top-level schema fields {sorted(unknown)}")
        payloads_spec = spec.get("payloads", {})
        tasks_spec = spec.get("tasks", {})
        if not isinstance(payloads_spec, dict) or not isinstance(tasks_spec, dict):
            raise SchemaError("'payloads' and 'tasks' must be objects")
        payloads = tuple(
            PayloadSpec.from_dict(name, p) for name, p in payloads_spec.items()
        )
        tasks = tuple(TaskSpec.from_dict(name, t) for name, t in tasks_spec.items())
        return cls(payloads=payloads, tasks=tasks)

    def to_dict(self) -> dict:
        return {
            "payloads": {p.name: p.to_dict() for p in self.payloads},
            "tasks": {t.name: t.to_dict() for t in self.tasks},
        }

    @classmethod
    def from_json(cls, text: str) -> "Schema":
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"schema is not valid JSON: {exc}") from exc
        return cls.from_dict(spec)

    @classmethod
    def from_file(cls, path: str | Path) -> "Schema":
        return cls.from_json(Path(path).read_text())

    def to_json(self, indent: int = 2) -> str:
        # Preserve declaration order so round-trips compare equal; the
        # fingerprint uses its own canonical (sorted) form.
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    def fingerprint(self) -> str:
        """Stable content hash, used for artifact compatibility checks."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
