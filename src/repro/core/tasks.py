"""Task specifications.

"For each payload type, Overton defines a multiclass and a bitvector
classification task.  Overton also supports a task of selecting one out of a
set" (§2.1).  A task binds a label space to a payload; Overton compiles the
inference code and loss function from this declaration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

TASK_TYPES = ("multiclass", "bitvector", "select")


@dataclass(frozen=True)
class TaskSpec:
    """Declarative description of one model task.

    Attributes
    ----------
    name:
        Task identifier, unique within a schema.
    payload:
        The payload this task classifies (its granularity: one prediction
        per singleton, per sequence position, or per set).
    type:
        ``multiclass`` (exactly one label), ``bitvector`` (any subset of
        labels), or ``select`` (choose one member of a set payload).
    classes:
        Ordered label names.  Required for multiclass and bitvector; must be
        empty for select (the label space is the candidate set itself).
    """

    name: str
    payload: str
    type: str
    classes: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.type not in TASK_TYPES:
            raise SchemaError(
                f"task {self.name!r}: unknown type {self.type!r}; "
                f"expected one of {TASK_TYPES}"
            )
        if self.type in ("multiclass", "bitvector"):
            if len(self.classes) < 2 and self.type == "multiclass":
                raise SchemaError(
                    f"multiclass task {self.name!r} needs at least 2 classes"
                )
            if len(self.classes) < 1 and self.type == "bitvector":
                raise SchemaError(
                    f"bitvector task {self.name!r} needs at least 1 class"
                )
            if len(set(self.classes)) != len(self.classes):
                raise SchemaError(f"task {self.name!r}: duplicate class names")
        if self.type == "select" and self.classes:
            raise SchemaError(
                f"select task {self.name!r} must not declare classes; it "
                "selects among the payload's members"
            )

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def class_index(self, label: str) -> int:
        """Map a class name to its index, with a helpful error."""
        try:
            return self.classes.index(label)
        except ValueError:
            raise SchemaError(
                f"task {self.name!r}: unknown class {label!r}; "
                f"known classes: {list(self.classes)}"
            ) from None

    @classmethod
    def from_dict(cls, name: str, spec: dict) -> "TaskSpec":
        """Parse one task from its JSON schema entry."""
        if not isinstance(spec, dict):
            raise SchemaError(f"task {name!r}: spec must be an object")
        known = {"payload", "type", "classes"}
        unknown = set(spec) - known
        if unknown:
            raise SchemaError(f"task {name!r}: unknown fields {sorted(unknown)}")
        for required in ("payload", "type"):
            if required not in spec:
                raise SchemaError(f"task {name!r}: missing required field {required!r}")
        return cls(
            name=name,
            payload=spec["payload"],
            type=spec["type"],
            classes=tuple(spec.get("classes", [])),
        )

    def to_dict(self) -> dict:
        out: dict = {"payload": self.payload, "type": self.type}
        if self.classes:
            out["classes"] = list(self.classes)
        return out
