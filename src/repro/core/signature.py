"""Serving signatures.

"This information allows Overton to compile the inference code and the loss
functions for each task and to build a serving signature, which contains
detailed information of the types and can be consumed by model serving
infrastructure" (§2.1).

The signature is the *only* contract between a deployed artifact and serving
code — serving never needs the schema, tuning spec, or training data, which
is what lets the model change without serving-code changes (model
independence, §1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.schema_def import Schema
from repro.errors import SchemaError


@dataclass(frozen=True)
class TaskSignature:
    """Output contract for one task."""

    name: str
    type: str
    granularity: str  # singleton | sequence | set
    classes: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.type,
            "granularity": self.granularity,
            "classes": list(self.classes),
        }


@dataclass(frozen=True)
class InputSignature:
    """Input contract for one payload that serving must supply."""

    name: str
    type: str
    max_length: int | None
    max_members: int | None
    dim: int | None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.type,
            "max_length": self.max_length,
            "max_members": self.max_members,
            "dim": self.dim,
        }


@dataclass(frozen=True)
class ServingSignature:
    """Full serving contract: inputs, outputs, and the schema fingerprint."""

    inputs: tuple[InputSignature, ...]
    outputs: tuple[TaskSignature, ...]
    schema_fingerprint: str

    @classmethod
    def from_schema(cls, schema: Schema) -> "ServingSignature":
        inputs = []
        for p in schema.payloads:
            if p.base:
                # Derived payloads are computed inside the model; serving
                # does not supply them.
                continue
            inputs.append(
                InputSignature(
                    name=p.name,
                    type=p.type,
                    max_length=p.max_length,
                    max_members=p.max_members,
                    dim=p.dim,
                )
            )
        outputs = []
        for t in schema.tasks:
            payload = schema.payload(t.payload)
            outputs.append(
                TaskSignature(
                    name=t.name,
                    type=t.type,
                    granularity=payload.type,
                    classes=t.classes,
                )
            )
        return cls(
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            schema_fingerprint=schema.fingerprint(),
        )

    def output(self, task_name: str) -> TaskSignature:
        for out in self.outputs:
            if out.name == task_name:
                return out
        raise SchemaError(f"signature has no output for task {task_name!r}")

    def to_dict(self) -> dict:
        return {
            "inputs": [i.to_dict() for i in self.inputs],
            "outputs": [o.to_dict() for o in self.outputs],
            "schema_fingerprint": self.schema_fingerprint,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, spec: dict) -> "ServingSignature":
        inputs = tuple(
            InputSignature(
                name=i["name"],
                type=i["type"],
                max_length=i.get("max_length"),
                max_members=i.get("max_members"),
                dim=i.get("dim"),
            )
            for i in spec["inputs"]
        )
        outputs = tuple(
            TaskSignature(
                name=o["name"],
                type=o["type"],
                granularity=o["granularity"],
                classes=tuple(o["classes"]),
            )
            for o in spec["outputs"]
        )
        return cls(
            inputs=inputs,
            outputs=outputs,
            schema_fingerprint=spec["schema_fingerprint"],
        )

    @classmethod
    def from_json(cls, text: str) -> "ServingSignature":
        return cls.from_dict(json.loads(text))
