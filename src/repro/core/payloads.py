"""Payload specifications.

"Conceptually, Overton embeds raw data into a payload, which is then used as
input to a task or to another payload" (§2.1).  Three payload types exist:

* **singleton** — one vector per example (e.g. the whole query).  A singleton
  either aggregates other payloads (``base``) or carries a raw numeric
  feature vector (``dim``).
* **sequence** — a vector per position (e.g. tokens), bounded by
  ``max_length``.
* **set** — a vector per member of a variable-size set (e.g. candidate
  entities).  Members may reference spans of a sequence payload (``range``)
  and may carry their own ids for an embedding table (``vocab``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

PAYLOAD_TYPES = ("singleton", "sequence", "set")


@dataclass(frozen=True)
class PayloadSpec:
    """Declarative description of one payload.

    Attributes
    ----------
    name:
        Payload identifier, unique within a schema.
    type:
        One of ``singleton``, ``sequence``, ``set``.
    max_length:
        Required for sequences: the maximum number of positions.
    base:
        For singletons: names of payloads this payload aggregates.
    range:
        For sets: the sequence payload whose spans members reference.
    max_members:
        For sets: maximum number of members (candidates) per example.
    dim:
        For raw singletons (no ``base``): width of the numeric feature
        vector found directly in the data record.
    vocab:
        Optional name of an id vocabulary for this payload (tokens for
        sequences, entity ids for sets).
    """

    name: str
    type: str
    max_length: int | None = None
    base: tuple[str, ...] = field(default_factory=tuple)
    range: str | None = None
    max_members: int | None = None
    dim: int | None = None
    vocab: str | None = None

    def __post_init__(self) -> None:
        if self.type not in PAYLOAD_TYPES:
            raise SchemaError(
                f"payload {self.name!r}: unknown type {self.type!r}; "
                f"expected one of {PAYLOAD_TYPES}"
            )
        if self.type == "sequence":
            if not self.max_length or self.max_length <= 0:
                raise SchemaError(
                    f"sequence payload {self.name!r} requires a positive max_length"
                )
        if self.type == "singleton":
            if not self.base and self.dim is None:
                raise SchemaError(
                    f"singleton payload {self.name!r} needs either base payloads "
                    "to aggregate or a raw feature dim"
                )
            if self.base and self.dim is not None:
                raise SchemaError(
                    f"singleton payload {self.name!r} cannot have both base and dim"
                )
        if self.type == "set":
            if self.range is None:
                raise SchemaError(
                    f"set payload {self.name!r} requires a range sequence payload"
                )
            if not self.max_members or self.max_members <= 0:
                raise SchemaError(
                    f"set payload {self.name!r} requires a positive max_members"
                )

    @classmethod
    def from_dict(cls, name: str, spec: dict) -> "PayloadSpec":
        """Parse one payload from its JSON schema entry."""
        if not isinstance(spec, dict):
            raise SchemaError(f"payload {name!r}: spec must be an object")
        known = {"type", "max_length", "base", "range", "max_members", "dim", "vocab"}
        unknown = set(spec) - known
        if unknown:
            raise SchemaError(f"payload {name!r}: unknown fields {sorted(unknown)}")
        if "type" not in spec:
            raise SchemaError(f"payload {name!r}: missing required field 'type'")
        base = spec.get("base", [])
        if isinstance(base, str):
            base = [base]
        return cls(
            name=name,
            type=spec["type"],
            max_length=spec.get("max_length"),
            base=tuple(base),
            range=spec.get("range"),
            max_members=spec.get("max_members"),
            dim=spec.get("dim"),
            vocab=spec.get("vocab"),
        )

    def to_dict(self) -> dict:
        """Serialize back to the JSON schema form (round-trip safe)."""
        out: dict = {"type": self.type}
        if self.max_length is not None:
            out["max_length"] = self.max_length
        if self.base:
            out["base"] = list(self.base)
        if self.range is not None:
            out["range"] = self.range
        if self.max_members is not None:
            out["max_members"] = self.max_members
        if self.dim is not None:
            out["dim"] = self.dim
        if self.vocab is not None:
            out["vocab"] = self.vocab
        return out
