"""The legacy Overton facade: a thin shim over :mod:`repro.api`.

"Given a schema and a data file, Overton is responsible to instantiate and
train a model, combine supervision, select the model's hyperparameters, and
produce a production-ready binary" (§1).  That loop now lives in
:class:`repro.api.Application` (which adds the declarative ``app.json``
spec, :class:`repro.api.Run` results, and :class:`repro.api.Endpoint`
serving); this class keeps the original object-per-call surface for
existing code and delegates every method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.api.application import Application, SupervisionPolicy
from repro.api.run import TrainedModel  # re-exported for backwards compatibility
from repro.core.schema_def import Schema
from repro.core.tuning_spec import ModelConfig, TuningSpec
from repro.data.dataset import Dataset
from repro.data.record import Record
from repro.deploy.artifact import ModelArtifact
from repro.deploy.store import ModelStore, StoredVersion
from repro.model.embeddings_registry import EmbeddingRegistry
from repro.model.task_heads import TaskTargets
from repro.slicing import SliceSet
from repro.supervision import CombinedSupervision
from repro.training import QualityReport, TaskEvaluation
from repro.tuning import SearchResult

__all__ = ["Overton", "TrainedModel"]


@dataclass
class Overton:
    """One application = one schema + one Overton instance."""

    schema: Schema
    slices: SliceSet = field(default_factory=SliceSet)
    registry: EmbeddingRegistry = field(default_factory=EmbeddingRegistry)
    gold_source: str = "gold"
    seed: int = 0

    def _application(self) -> Application:
        return Application(
            self.schema,
            slices=self.slices,
            registry=self.registry,
            supervision=SupervisionPolicy(gold_source=self.gold_source),
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Supervision combination (Figure 1: "Combine Supervision")
    # ------------------------------------------------------------------
    def combine(
        self,
        records: Sequence[Record],
        method: str = "label_model",
        rebalance: bool = True,
    ) -> tuple[dict[str, TaskTargets], dict[str, CombinedSupervision]]:
        return self._application().combine(records, method=method, rebalance=rebalance)

    # ------------------------------------------------------------------
    # Training (Figure 1: "Train & Tune Models")
    # ------------------------------------------------------------------
    def train(
        self,
        dataset: Dataset,
        config: ModelConfig | None = None,
        method: str = "label_model",
    ) -> TrainedModel:
        """Train one model on the dataset's train split."""
        return self._application().fit(dataset, config, method=method).trained

    def tune(
        self,
        dataset: Dataset,
        spec: TuningSpec,
        strategy: str = "grid",
        num_trials: int = 8,
        method: str = "label_model",
    ) -> tuple[TrainedModel, SearchResult]:
        """Hyperparameter/architecture search, scored on the dev split."""
        run = self._application().tune(
            dataset, spec, strategy=strategy, num_trials=num_trials, method=method
        )
        assert run.search is not None
        return run.trained, run.search

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def evaluate(
        self, trained: TrainedModel, dataset: Dataset, tag: str = "test"
    ) -> dict[str, TaskEvaluation]:
        return self._application().evaluate(trained, dataset, tag=tag)

    def report(
        self, trained: TrainedModel, dataset: Dataset, tags: Sequence[str] | None = None
    ) -> QualityReport:
        return self._application().report(trained, dataset, tags=tags)

    # ------------------------------------------------------------------
    # Deployment (Figure 1: "Create Deployable Model")
    # ------------------------------------------------------------------
    def build_artifact(
        self, trained: TrainedModel, metrics: dict | None = None
    ) -> ModelArtifact:
        return self._application().build_artifact(trained, metrics=metrics)

    def deploy(
        self,
        trained: TrainedModel,
        store: ModelStore,
        name: str,
        metrics: dict | None = None,
    ) -> StoredVersion:
        """Serialize and push the trained model to the store."""
        return self._application().deploy(trained, store, name=name, metrics=metrics)
