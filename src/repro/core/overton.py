"""The Overton facade: the Figure 1 loop as one object.

"Given a schema and a data file, Overton is responsible to instantiate and
train a model, combine supervision, select the model's hyperparameters, and
produce a production-ready binary" (§1).  Engineers using this class write
no modeling code: they provide the schema, a data file, slices, and
optionally a tuning spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.schema_def import Schema
from repro.core.tuning_spec import ModelConfig, TuningSpec
from repro.data.dataset import Dataset
from repro.data.record import Record
from repro.data.vocab import Vocab
from repro.deploy.artifact import ModelArtifact
from repro.deploy.store import ModelStore, StoredVersion
from repro.deploy.sync import data_fingerprint
from repro.errors import TrainingError
from repro.model.compiler import compile_model
from repro.model.embeddings_registry import EmbeddingRegistry
from repro.model.multitask import MultitaskModel
from repro.model.task_heads import TaskTargets
from repro.slicing import SliceSet
from repro.supervision import (
    CombinedSupervision,
    class_weights_from_probs,
    combine_supervision,
)
from repro.training import (
    QualityReport,
    TaskEvaluation,
    Trainer,
    TrainHistory,
    evaluate,
    mean_primary,
    quality_report,
)
from repro.tuning import SearchResult, grid_search, random_search


@dataclass
class TrainedModel:
    """A trained model plus everything needed to evaluate and deploy it."""

    model: MultitaskModel
    vocabs: dict[str, Vocab]
    history: TrainHistory
    supervision: dict[str, CombinedSupervision]
    config: ModelConfig
    train_fingerprint: str


@dataclass
class Overton:
    """One application = one schema + one Overton instance."""

    schema: Schema
    slices: SliceSet = field(default_factory=SliceSet)
    registry: EmbeddingRegistry = field(default_factory=EmbeddingRegistry)
    gold_source: str = "gold"
    seed: int = 0

    # ------------------------------------------------------------------
    # Supervision combination (Figure 1: "Combine Supervision")
    # ------------------------------------------------------------------
    def combine(
        self,
        records: Sequence[Record],
        method: str = "label_model",
        rebalance: bool = True,
    ) -> tuple[dict[str, TaskTargets], dict[str, CombinedSupervision]]:
        """Build noise-aware training targets for every task.

        The gold source is always excluded from training supervision — it
        exists for validation only (§3: "validation is still done
        manually").
        """
        membership = (
            self.slices.membership_matrix(records) if len(self.slices) else None
        )
        targets: dict[str, TaskTargets] = {}
        combined_all: dict[str, CombinedSupervision] = {}
        for task in self.schema.tasks:
            sources = set()
            for record in records:
                sources.update(record.sources_for(task.name))
            exclude = [self.gold_source] if self.gold_source in sources else []
            if sources == {self.gold_source}:
                # Gold is the only supervision (e.g. tiny demo datasets):
                # train on it rather than failing.
                exclude = []
            combined = combine_supervision(
                records, self.schema, task.name, method=method, exclude_sources=exclude
            )
            combined_all[task.name] = combined
            class_weights = None
            if rebalance and task.type == "multiclass":
                flat = combined.probs.reshape(-1, combined.probs.shape[-1])
                flat_weights = combined.weights.reshape(-1)
                class_weights = class_weights_from_probs(flat, flat_weights)
            elif rebalance and task.type == "bitvector":
                # Per-class positive weight for BCE: rare positive classes
                # would otherwise collapse to all-negative predictions.
                flat = combined.probs.reshape(-1, combined.probs.shape[-1])
                flat_weights = combined.weights.reshape(-1)
                labeled = flat[flat_weights > 0]
                if len(labeled):
                    pos_rate = labeled.mean(axis=0)
                    class_weights = np.clip(
                        (1.0 - pos_rate) / np.maximum(pos_rate, 1e-6), 1.0, 10.0
                    )
            targets[task.name] = TaskTargets(
                probs=combined.probs,
                weights=combined.weights,
                class_weights=class_weights,
                membership=membership,
            )
        return targets, combined_all

    # ------------------------------------------------------------------
    # Training (Figure 1: "Train & Tune Models")
    # ------------------------------------------------------------------
    def train(
        self,
        dataset: Dataset,
        config: ModelConfig | None = None,
        method: str = "label_model",
    ) -> TrainedModel:
        """Train one model on the dataset's train split."""
        config = config or ModelConfig()
        train = dataset.split("train")
        dev = dataset.split("dev")
        if len(train) == 0:
            raise TrainingError("dataset has no records tagged 'train'")
        self.slices.materialize(dataset.records)
        vocabs = dataset.build_vocabs()
        model = compile_model(
            self.schema,
            config,
            vocabs,
            slice_names=self.slices.names,
            registry=self.registry,
            seed=config.trainer.seed or self.seed,
        )
        targets, combined = self.combine(train.records, method=method)
        trainer = Trainer(model, config.trainer)
        history = trainer.fit(
            train.records,
            vocabs,
            targets,
            dev_records=dev.records if len(dev) else None,
            gold_source=self.gold_source,
        )
        return TrainedModel(
            model=model,
            vocabs=vocabs,
            history=history,
            supervision=combined,
            config=config,
            train_fingerprint=data_fingerprint(train.records),
        )

    def tune(
        self,
        dataset: Dataset,
        spec: TuningSpec,
        strategy: str = "grid",
        num_trials: int = 8,
        method: str = "label_model",
    ) -> tuple[TrainedModel, SearchResult]:
        """Hyperparameter/architecture search, scored on the dev split."""
        dev = dataset.split("dev")
        if len(dev) == 0:
            raise TrainingError("tuning requires records tagged 'dev'")

        trained_cache: dict[int, TrainedModel] = {}

        def trial(config: ModelConfig) -> float:
            trained = self.train(dataset, config, method=method)
            evals = evaluate(
                trained.model, dev.records, self.schema, trained.vocabs, self.gold_source
            )
            score = mean_primary(evals)
            trained_cache[id(config)] = trained
            return score

        if strategy == "grid":
            result = grid_search(spec, trial)
        elif strategy == "random":
            result = random_search(spec, trial, num_trials=num_trials, seed=self.seed)
        else:
            raise TrainingError(f"unknown tuning strategy {strategy!r}")
        best = trained_cache[id(result.best_config)]
        return best, result

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def evaluate(
        self, trained: TrainedModel, dataset: Dataset, tag: str = "test"
    ) -> dict[str, TaskEvaluation]:
        subset = dataset.with_tag(tag) if tag else dataset
        return evaluate(
            trained.model, subset.records, self.schema, trained.vocabs, self.gold_source
        )

    def report(
        self, trained: TrainedModel, dataset: Dataset, tags: Sequence[str] | None = None
    ) -> QualityReport:
        return quality_report(
            trained.model,
            dataset.records,
            self.schema,
            trained.vocabs,
            self.gold_source,
            tags=tags,
        )

    # ------------------------------------------------------------------
    # Deployment (Figure 1: "Create Deployable Model")
    # ------------------------------------------------------------------
    def build_artifact(
        self, trained: TrainedModel, metrics: dict | None = None
    ) -> ModelArtifact:
        return ModelArtifact.from_model(
            trained.model,
            trained.vocabs,
            metrics=metrics,
            extra_metadata={"data_fingerprint": trained.train_fingerprint},
        )

    def deploy(
        self,
        trained: TrainedModel,
        store: ModelStore,
        name: str,
        metrics: dict | None = None,
    ) -> StoredVersion:
        """Serialize and push the trained model to the store."""
        return store.push(name, self.build_artifact(trained, metrics))
