"""The model-tuning specification (Fig. 2a, right panel).

The tuning spec is deliberately *separate* from the schema: "A key design
decision is that the schema does not contain information about
hyperparameters like hidden state sizes" (§2.1).  It lists, per payload, the
coarse blocks Overton's search may choose among — embeddings, encoders,
sizes, aggregations — plus trainer-level options.

A spec *expands* into a list of concrete :class:`ModelConfig` candidates;
the tuning controller (:mod:`repro.tuning`) evaluates them.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TuningError

ENCODER_CHOICES = ("bow", "cnn", "lstm", "bilstm", "gru", "attention")
AGGREGATION_CHOICES = ("mean", "max", "attention")


@dataclass(frozen=True)
class PayloadConfig:
    """Concrete architecture choices for one payload."""

    embedding: str = "learned"  # "learned" or a named pretrained product
    encoder: str = "bow"
    size: int = 32
    aggregation: str = "mean"
    attention_heads: int = 2
    dropout: float = 0.0

    def to_dict(self) -> dict:
        return {
            "embedding": self.embedding,
            "encoder": self.encoder,
            "size": self.size,
            "aggregation": self.aggregation,
            "attention_heads": self.attention_heads,
            "dropout": self.dropout,
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "PayloadConfig":
        return cls(**spec)


@dataclass(frozen=True)
class TrainerConfig:
    """Concrete trainer hyperparameters."""

    optimizer: str = "adam"
    lr: float = 0.01
    epochs: int = 10
    batch_size: int = 32
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    seed: int = 0
    slice_weight: float = 0.5
    patience: int = 0  # 0 disables early stopping

    def to_dict(self) -> dict:
        return {
            "optimizer": self.optimizer,
            "lr": self.lr,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "weight_decay": self.weight_decay,
            "clip_norm": self.clip_norm,
            "seed": self.seed,
            "slice_weight": self.slice_weight,
            "patience": self.patience,
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "TrainerConfig":
        return cls(**spec)


@dataclass(frozen=True)
class ModelConfig:
    """One fully concrete candidate: per-payload choices + trainer + dtype.

    ``dtype`` is the float precision the compiler stamps into the model —
    ``"float64"`` (the default, bit-identical to the pre-policy stack) or
    ``"float32"``.  It is a *model* decision, not a payload or trainer one:
    every parameter, activation, and loss of the compiled model lives in
    this dtype (see :mod:`repro.tensor.backend`).
    """

    payloads: dict[str, PayloadConfig] = field(default_factory=dict)
    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    dtype: str = "float64"

    def for_payload(self, name: str) -> PayloadConfig:
        return self.payloads.get(name, PayloadConfig())

    def to_dict(self) -> dict:
        return {
            "payloads": {k: v.to_dict() for k, v in self.payloads.items()},
            "trainer": self.trainer.to_dict(),
            "dtype": self.dtype,
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "ModelConfig":
        return cls(
            payloads={
                k: PayloadConfig.from_dict(v) for k, v in spec.get("payloads", {}).items()
            },
            trainer=TrainerConfig.from_dict(spec.get("trainer", {})),
            dtype=spec.get("dtype", "float64"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


@dataclass(frozen=True)
class TuningSpec:
    """A search space: per-payload lists of options + trainer lists.

    JSON format mirrors Fig. 2a::

        {
          "payloads": {
            "tokens": {"embedding": ["learned", "corpus-32"],
                        "encoder": ["lstm", "cnn"], "size": [32, 64]},
            "query":  {"aggregation": ["max", "mean"]}
          },
          "trainer": {"lr": [0.01, 0.003], "epochs": [10]}
        }
    """

    payload_options: dict[str, dict[str, list]] = field(default_factory=dict)
    trainer_options: dict[str, list] = field(default_factory=dict)

    _PAYLOAD_KEYS = (
        "embedding",
        "encoder",
        "size",
        "aggregation",
        "attention_heads",
        "dropout",
    )
    _TRAINER_KEYS = (
        "optimizer",
        "lr",
        "epochs",
        "batch_size",
        "weight_decay",
        "clip_norm",
        "seed",
        "slice_weight",
        "patience",
    )

    def __post_init__(self) -> None:
        for payload, options in self.payload_options.items():
            unknown = set(options) - set(self._PAYLOAD_KEYS)
            if unknown:
                raise TuningError(
                    f"payload {payload!r}: unknown tuning keys {sorted(unknown)}"
                )
            for encoder in options.get("encoder", []):
                if encoder not in ENCODER_CHOICES:
                    raise TuningError(
                        f"payload {payload!r}: unknown encoder {encoder!r}; "
                        f"choices: {ENCODER_CHOICES}"
                    )
            for agg in options.get("aggregation", []):
                if agg not in AGGREGATION_CHOICES:
                    raise TuningError(
                        f"payload {payload!r}: unknown aggregation {agg!r}; "
                        f"choices: {AGGREGATION_CHOICES}"
                    )
        unknown = set(self.trainer_options) - set(self._TRAINER_KEYS)
        if unknown:
            raise TuningError(f"unknown trainer tuning keys {sorted(unknown)}")

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def expand(self) -> list[ModelConfig]:
        """Enumerate the full cross product of all options (grid order)."""
        per_payload_candidates: dict[str, list[PayloadConfig]] = {}
        for payload, options in self.payload_options.items():
            keys = sorted(options)
            value_lists = [options[k] for k in keys]
            candidates = []
            for combo in itertools.product(*value_lists):
                candidates.append(PayloadConfig(**dict(zip(keys, combo))))
            per_payload_candidates[payload] = candidates or [PayloadConfig()]

        trainer_keys = sorted(self.trainer_options)
        trainer_lists = [self.trainer_options[k] for k in trainer_keys]
        trainer_candidates = [
            TrainerConfig(**dict(zip(trainer_keys, combo)))
            for combo in itertools.product(*trainer_lists)
        ] or [TrainerConfig()]

        payload_names = sorted(per_payload_candidates)
        payload_lists = [per_payload_candidates[name] for name in payload_names]
        configs = []
        for payload_combo in itertools.product(*payload_lists):
            payload_map = dict(zip(payload_names, payload_combo))
            for trainer in trainer_candidates:
                configs.append(ModelConfig(payloads=dict(payload_map), trainer=trainer))
        return configs

    def size(self) -> int:
        """Number of candidates ``expand()`` would produce."""
        total = 1
        for options in self.payload_options.values():
            for values in options.values():
                total *= max(len(values), 1)
        for values in self.trainer_options.values():
            total *= max(len(values), 1)
        return total

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, spec: dict) -> "TuningSpec":
        unknown = set(spec) - {"payloads", "trainer"}
        if unknown:
            raise TuningError(f"unknown top-level tuning fields {sorted(unknown)}")
        return cls(
            payload_options=spec.get("payloads", {}),
            trainer_options=spec.get("trainer", {}),
        )

    def to_dict(self) -> dict:
        return {"payloads": self.payload_options, "trainer": self.trainer_options}

    def fingerprint(self) -> str:
        """Stable short hash identifying this search space.

        Stamped on coverage reports so a report is traceable to the exact
        space it describes.  Deliberately *not* part of the trial-cache
        key: trial outcomes depend on (application, data, config), not on
        which space proposed the config, and widening a space must keep
        its old candidates' cache entries valid.
        """
        import hashlib

        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    @classmethod
    def from_json(cls, text: str) -> "TuningSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "TuningSpec":
        return cls.from_json(Path(path).read_text())
