"""The multitask trainer.

Consumes the compiled model, batched inputs, and per-task probabilistic
targets; produces a trained model plus a training history.  Early stopping
and best-epoch checkpointing run against the dev split's gold labels, which
mirrors the paper's practice of manual validation data ("validation is
still done manually, but this requires orders of magnitude less data than
training", §3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.tuning_spec import TrainerConfig
from repro.data.batching import encode_inputs, iterate_batches
from repro.data.encoded import EncodedDataset
from repro.data.record import Record
from repro.data.vocab import Vocab
from repro.errors import TrainingError
from repro.model.multitask import MultitaskModel
from repro.model.task_heads import TaskTargets
from repro.obs import get_tracer
from repro.optim import Adam, AdamW, ConstantSchedule, SGD, clip_grad_norm, grad_norm
from repro.tensor import dtype_policy
from repro.training.evaluation import evaluate, mean_primary
from repro.training.hooks import TrainerHooks


@dataclass
class EpochStats:
    """Loss and dev score for one training epoch."""

    epoch: int
    train_loss: float
    dev_score: float | None = None


@dataclass
class TrainHistory:
    """The full per-epoch training record, plus early-stopping outcome."""

    epochs: list[EpochStats] = field(default_factory=list)
    best_epoch: int = -1
    best_dev_score: float = -np.inf
    stopped_early: bool = False

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].train_loss if self.epochs else float("nan")


def _build_optimizer(model: MultitaskModel, config: TrainerConfig):
    params = model.parameters()
    if config.optimizer == "adam":
        return Adam(params, lr=config.lr, weight_decay=config.weight_decay)
    if config.optimizer == "adamw":
        return AdamW(params, lr=config.lr, weight_decay=config.weight_decay or 0.01)
    if config.optimizer == "sgd":
        return SGD(params, lr=config.lr, momentum=0.9, weight_decay=config.weight_decay)
    raise TrainingError(f"unknown optimizer {config.optimizer!r}")


def _slice_targets(targets: dict[str, TaskTargets], idx: np.ndarray) -> dict[str, TaskTargets]:
    """Select the batch rows of every target array."""
    out = {}
    for name, t in targets.items():
        out[name] = TaskTargets(
            probs=t.probs[idx],
            weights=t.weights[idx],
            class_weights=t.class_weights,
            membership=t.membership[idx] if t.membership is not None else None,
        )
    return out


def _cast_targets(targets: dict[str, TaskTargets], dtype) -> dict[str, TaskTargets]:
    """Cast float target arrays to ``dtype`` once, up front.

    Supervision produces float64 targets; casting here (a no-op under the
    default policy) keeps the loss functions from re-casting every batch's
    slice on every epoch of a float32 fit.
    """

    def cast(a):
        if a is not None and a.dtype.kind == "f" and a.dtype != dtype:
            return a.astype(dtype)
        return a

    return {
        name: TaskTargets(
            probs=cast(t.probs),
            weights=cast(t.weights),
            class_weights=cast(t.class_weights),
            membership=cast(t.membership),
        )
        for name, t in targets.items()
    }


class Trainer:
    """Runs the training loop for a compiled multitask model."""

    def __init__(self, model: MultitaskModel, config: TrainerConfig) -> None:
        self.model = model
        self.config = config
        self.optimizer = _build_optimizer(model, config)
        self.schedule = ConstantSchedule(self.optimizer)

    def fit(
        self,
        records: Sequence[Record],
        vocabs: dict[str, Vocab],
        targets: dict[str, TaskTargets],
        dev_records: Sequence[Record] | None = None,
        gold_source: str = "gold",
        callback: Callable[[EpochStats], None] | None = None,
        cache_batches: bool = True,
        hooks: TrainerHooks | None = None,
    ) -> TrainHistory:
        """Train on ``records``; optionally track dev quality per epoch.

        ``targets`` arrays must align with ``records`` order.  With a dev
        set and ``config.patience > 0``, training stops after ``patience``
        epochs without dev improvement and the best-epoch weights are
        restored.

        ``hooks`` opts into per-epoch instrumentation
        (:class:`~repro.training.hooks.TrainerHooks`): each epoch's stats,
        wall-clock, and mean gradient L2 norm are delivered to
        ``hooks.on_epoch``.  Gradient norms are only *measured* when hooks
        are present (or clipping already computes them), so the default
        fit pays nothing.

        ``cache_batches`` (the default) encodes the train and dev records
        once up front (:class:`~repro.data.EncodedDataset`) and serves every
        epoch's batches as row slices of that encoding; results are
        bit-identical to re-encoding per batch — same RNG stream, same
        batch order, same arrays — just without the per-epoch encode cost.
        Pass ``False`` to force the legacy re-encoding path (used by the
        core benchmark and the parity suite).
        """
        if not records:
            raise TrainingError("cannot train on an empty dataset")
        for name, t in targets.items():
            if len(t.probs) != len(records):
                raise TrainingError(
                    f"targets for {name!r} have {len(t.probs)} rows for "
                    f"{len(records)} records"
                )
        schema = self.model.schema
        targets = _cast_targets(targets, self.model.dtype)
        rng = np.random.default_rng(self.config.seed)
        history = TrainHistory()
        best_state: dict | None = None
        epochs_since_best = 0

        encoded: EncodedDataset | None = None
        dev_encoded: EncodedDataset | None = None
        # Encode under the model's dtype policy: a float32 model trains on
        # float32 batch arrays (half the cache memory, no per-forward
        # re-cast); under the default float64 policy this is a no-op.
        if cache_batches:
            with dtype_policy(self.model.dtype):
                encoded = EncodedDataset(records, schema, vocabs)
                if dev_records:
                    dev_encoded = EncodedDataset(dev_records, schema, vocabs)

        tracer = get_tracer()
        self.model.train()
        for epoch in range(self.config.epochs):
            epoch_started = time.perf_counter()
            losses = []
            batch_norms = []
            with tracer.span("train.epoch", epoch=epoch):
                for idx in iterate_batches(
                    len(records), self.config.batch_size, rng
                ):
                    if encoded is not None:
                        batch = encoded.batch(idx)
                    else:
                        batch_records = [records[int(i)] for i in idx]
                        with dtype_policy(self.model.dtype):
                            batch = encode_inputs(
                                batch_records, schema, vocabs, indices=idx
                            )
                    outputs = self.model(batch)
                    loss = self.model.compute_loss(
                        outputs,
                        _slice_targets(targets, idx),
                        slice_weight=self.config.slice_weight,
                    )
                    loss_value = loss.item()
                    if not np.isfinite(loss_value):
                        raise TrainingError(
                            f"non-finite loss at epoch {epoch}: {loss_value}; "
                            "lower the learning rate or enable gradient clipping"
                        )
                    self.optimizer.zero_grad()
                    loss.backward()
                    if self.config.clip_norm > 0:
                        norm = clip_grad_norm(
                            self.model.parameters(), self.config.clip_norm
                        )
                        if hooks is not None:
                            batch_norms.append(norm)
                    elif hooks is not None:
                        batch_norms.append(grad_norm(self.model.parameters()))
                    self.optimizer.step()
                    self.schedule.step()
                    losses.append(loss_value)

            stats = EpochStats(epoch=epoch, train_loss=float(np.mean(losses)))
            if dev_records:
                evals = evaluate(
                    self.model,
                    dev_records,
                    schema,
                    vocabs,
                    gold_source,
                    encoded=dev_encoded,
                )
                stats.dev_score = mean_primary(evals)
                if stats.dev_score > history.best_dev_score:
                    history.best_dev_score = stats.dev_score
                    history.best_epoch = epoch
                    best_state = self.model.state_dict()
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
            history.epochs.append(stats)
            if hooks is not None:
                hooks.on_epoch(
                    stats,
                    duration_s=time.perf_counter() - epoch_started,
                    grad_norm=(
                        float(np.mean(batch_norms)) if batch_norms else None
                    ),
                )
            if callback is not None:
                callback(stats)
            if (
                dev_records
                and self.config.patience > 0
                and epochs_since_best >= self.config.patience
            ):
                history.stopped_early = True
                break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history
