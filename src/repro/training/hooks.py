"""Opt-in trainer instrumentation: the hooks protocol and its metrics sink.

``Trainer.fit`` stays silent by default — training emits no signals and
pays no measurement cost.  A caller who wants machine-readable training
telemetry passes a :class:`TrainerHooks` implementation; the trainer then
times each epoch and measures gradient norms (once per batch, averaged)
and hands both to the hook alongside the epoch's
:class:`~repro.training.trainer.EpochStats`.

:class:`MetricsTrainerHooks` is the standard sink: it forwards everything
into the :mod:`repro.obs` metrics registry, making training progress
scrapeable from ``GET /metrics`` next to the serving numbers.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.obs import get_registry


@runtime_checkable
class TrainerHooks(Protocol):
    """What ``Trainer.fit(hooks=...)`` calls at the end of every epoch."""

    def on_epoch(
        self, stats: Any, *, duration_s: float, grad_norm: float | None
    ) -> None:
        """One finished epoch: its stats, wall-clock, and mean grad norm."""
        ...


class MetricsTrainerHooks:
    """Feeds epoch stats into the metrics registry under a model label."""

    def __init__(self, model: str = "default") -> None:
        self.model = model
        registry = get_registry()
        self._m_epochs = registry.counter(
            "repro_train_epochs_total", "Training epochs completed", ("model",)
        )
        self._m_epoch_s = registry.histogram(
            "repro_train_epoch_seconds", "Wall-clock per training epoch", ("model",)
        )
        self._m_loss = registry.gauge(
            "repro_train_loss", "Most recent epoch's mean train loss", ("model",)
        )
        self._m_grad_norm = registry.gauge(
            "repro_train_grad_norm",
            "Most recent epoch's mean gradient L2 norm",
            ("model",),
        )

    def on_epoch(
        self, stats: Any, *, duration_s: float, grad_norm: float | None
    ) -> None:
        self._m_epochs.inc(model=self.model)
        self._m_epoch_s.observe(duration_s, model=self.model)
        self._m_loss.set(stats.train_loss, model=self.model)
        if grad_norm is not None:
            self._m_grad_norm.set(grad_norm, model=self.model)
