"""Classification metrics: accuracy, precision/recall/F1, confusion matrices.

"Overton allows report per-tag monitoring, such as the accuracy, precision
and recall, or confusion matrices, as appropriate" (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError


@dataclass
class PRF:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float


def accuracy(predictions: np.ndarray, gold: np.ndarray, valid: np.ndarray | None = None) -> float:
    """Fraction correct over (optionally masked) items."""
    predictions, gold = _flatten_pair(predictions, gold)
    keep = _resolve_mask(valid, gold.shape)
    if keep.sum() == 0:
        return 0.0
    return float((predictions[keep] == gold[keep]).mean())


def per_class_prf(
    predictions: np.ndarray,
    gold: np.ndarray,
    num_classes: int,
    valid: np.ndarray | None = None,
) -> list[PRF]:
    """One PRF per class."""
    predictions, gold = _flatten_pair(predictions, gold)
    keep = _resolve_mask(valid, gold.shape)
    predictions, gold = predictions[keep], gold[keep]
    out = []
    for c in range(num_classes):
        tp = float(((predictions == c) & (gold == c)).sum())
        fp = float(((predictions == c) & (gold != c)).sum())
        fn = float(((predictions != c) & (gold == c)).sum())
        precision = tp / (tp + fp) if tp + fp > 0 else 0.0
        recall = tp / (tp + fn) if tp + fn > 0 else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        out.append(PRF(precision=precision, recall=recall, f1=f1))
    return out


def macro_f1(
    predictions: np.ndarray,
    gold: np.ndarray,
    num_classes: int,
    valid: np.ndarray | None = None,
) -> float:
    """Unweighted mean of per-class F1 over classes present in gold."""
    predictions, gold = _flatten_pair(predictions, gold)
    keep = _resolve_mask(valid, gold.shape)
    gold_kept = gold[keep]
    present = [c for c in range(num_classes) if (gold_kept == c).any()]
    if not present:
        return 0.0
    prfs = per_class_prf(predictions, gold, num_classes, valid)
    return float(np.mean([prfs[c].f1 for c in present]))


def micro_f1_multilabel(
    pred_bits: np.ndarray, gold_bits: np.ndarray, valid: np.ndarray | None = None
) -> float:
    """Micro-F1 for multilabel (bitvector) predictions.

    ``pred_bits``/``gold_bits`` are ``(..., K)`` 0/1 arrays; ``valid`` masks
    leading dims.
    """
    pred_bits = np.asarray(pred_bits)
    gold_bits = np.asarray(gold_bits)
    if pred_bits.shape != gold_bits.shape:
        raise TrainingError(
            f"shape mismatch: {pred_bits.shape} vs {gold_bits.shape}"
        )
    if valid is not None:
        keep = np.asarray(valid, dtype=bool)
        pred_bits = pred_bits[keep]
        gold_bits = gold_bits[keep]
    tp = float(((pred_bits == 1) & (gold_bits == 1)).sum())
    fp = float(((pred_bits == 1) & (gold_bits == 0)).sum())
    fn = float(((pred_bits == 0) & (gold_bits == 1)).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def confusion_matrix(
    predictions: np.ndarray,
    gold: np.ndarray,
    num_classes: int,
    valid: np.ndarray | None = None,
) -> np.ndarray:
    """(num_classes, num_classes) counts: rows = gold, cols = predicted."""
    predictions, gold = _flatten_pair(predictions, gold)
    keep = _resolve_mask(valid, gold.shape)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for g, p in zip(gold[keep], predictions[keep]):
        matrix[int(g), int(p)] += 1
    return matrix


def _flatten_pair(predictions: np.ndarray, gold: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions).reshape(-1)
    gold = np.asarray(gold).reshape(-1)
    if predictions.shape != gold.shape:
        raise TrainingError(
            f"predictions shape {predictions.shape} != gold shape {gold.shape}"
        )
    return predictions, gold


def _resolve_mask(valid: np.ndarray | None, shape: tuple[int, ...]) -> np.ndarray:
    if valid is None:
        return np.ones(shape, dtype=bool)
    return np.asarray(valid, dtype=bool).reshape(shape)
