"""Per-tag and per-slice quality reports: Overton's monitoring output.

"Engineers are free to define their own subsets of data via tags ...
Overton allows report per-tag monitoring" (§2.2).  A report row is (tag,
task, metric values, n); the table exports to pandas-compatible columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.schema_def import Schema
from repro.data.record import Record
from repro.data.tags import TagTable
from repro.data.vocab import Vocab
from repro.model.multitask import MultitaskModel
from repro.training.evaluation import evaluate


@dataclass
class ReportRow:
    """One (tag, task) line of a quality report."""

    tag: str
    task: str
    n: int
    metrics: dict[str, float] = field(default_factory=dict)


@dataclass
class QualityReport:
    """A full fine-grained quality report for one model on one dataset."""

    rows: list[ReportRow] = field(default_factory=list)

    def for_tag(self, tag: str) -> list[ReportRow]:
        return [r for r in self.rows if r.tag == tag]

    def for_task(self, task: str) -> list[ReportRow]:
        return [r for r in self.rows if r.task == task]

    def metric(self, tag: str, task: str, name: str) -> float:
        for row in self.rows:
            if row.tag == tag and row.task == task:
                return row.metrics.get(name, float("nan"))
        return float("nan")

    def to_columns(self) -> dict[str, list]:
        """Pandas-compatible columnar dict."""
        metric_names = sorted({m for r in self.rows for m in r.metrics})
        columns: dict[str, list] = {
            "tag": [r.tag for r in self.rows],
            "task": [r.task for r in self.rows],
            "n": [r.n for r in self.rows],
        }
        for name in metric_names:
            columns[name] = [r.metrics.get(name, float("nan")) for r in self.rows]
        return columns


def quality_report(
    model: MultitaskModel,
    records: Sequence[Record],
    schema: Schema,
    vocabs: dict[str, Vocab],
    gold_source: str = "gold",
    tags: Sequence[str] | None = None,
    include_overall: bool = True,
) -> QualityReport:
    """Evaluate per tag (all tags by default, including slices)."""
    table = TagTable([r.tags for r in records])
    tag_list = list(tags) if tags is not None else table.all_tags
    report = QualityReport()
    if include_overall:
        _append_rows(report, "overall", model, list(records), schema, vocabs, gold_source)
    for tag in tag_list:
        indices = table.indices(tag)
        subset = [records[int(i)] for i in indices]
        _append_rows(report, tag, model, subset, schema, vocabs, gold_source)
    return report


def confusion_for_tag(
    model: MultitaskModel,
    records: Sequence[Record],
    schema: Schema,
    vocabs: dict[str, Vocab],
    task_name: str,
    tag: str | None = None,
    gold_source: str = "gold",
) -> np.ndarray:
    """Confusion matrix for one multiclass task, restricted to ``tag``.

    "Overton allows report per-tag monitoring, such as ... confusion
    matrices, as appropriate" (§2.2).  Rows are gold classes, columns
    predictions; only positions the gold source labeled are counted.
    """
    from repro.data.batching import extract_targets
    from repro.training.evaluation import predict_all
    from repro.training.metrics import confusion_matrix

    task = schema.task(task_name)
    if task.type != "multiclass":
        raise ValueError(
            f"confusion matrices apply to multiclass tasks, not {task.type!r}"
        )
    subset = list(records)
    if tag is not None:
        subset = [r for r in subset if r.has_tag(tag)]
    if not subset:
        return np.zeros((task.num_classes, task.num_classes), dtype=np.int64)
    outputs = predict_all(model, subset, schema, vocabs)
    gold = extract_targets(subset, schema, task_name, gold_source)
    return confusion_matrix(
        outputs[task_name]["predictions"],
        gold["labels"],
        task.num_classes,
        gold["valid"],
    )


def render_confusion(matrix: np.ndarray, classes: Sequence[str]) -> str:
    """Text table of a confusion matrix (rows gold, columns predicted)."""
    from repro.monitoring.dashboards import format_table

    columns: dict[str, list] = {"gold \\ pred": list(classes)}
    for j, name in enumerate(classes):
        columns[name] = [int(matrix[i, j]) for i in range(len(classes))]
    return format_table(columns)


def _append_rows(
    report: QualityReport,
    tag: str,
    model: MultitaskModel,
    subset: list[Record],
    schema: Schema,
    vocabs: dict[str, Vocab],
    gold_source: str,
) -> None:
    if not subset:
        for task in schema.tasks:
            report.rows.append(ReportRow(tag=tag, task=task.name, n=0))
        return
    evals = evaluate(model, subset, schema, vocabs, gold_source)
    for task_name, evaluation in evals.items():
        report.rows.append(
            ReportRow(
                tag=tag,
                task=task_name,
                n=evaluation.n,
                metrics=dict(evaluation.metrics),
            )
        )
