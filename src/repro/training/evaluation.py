"""Evaluation harness: model quality against a trusted gold source.

"This quality is measured within Overton by evaluation on curated test
sets" (§2).  The gold source is just another lineage name — typically
``gold`` — kept out of training and used only here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.schema_def import Schema
from repro.data.batching import encode_inputs, extract_targets, iterate_batches
from repro.data.encoded import EncodedDataset
from repro.data.record import Record
from repro.data.vocab import Vocab
from repro.model.multitask import MultitaskModel
from repro.tensor import default_dtype, dtype_policy, no_grad
from repro.training.metrics import accuracy, macro_f1, micro_f1_multilabel


@dataclass
class TaskEvaluation:
    """Metrics for one task; ``primary`` is the headline number."""

    task: str
    metrics: dict[str, float] = field(default_factory=dict)
    n: int = 0

    @property
    def primary(self) -> float:
        if "f1" in self.metrics:
            return self.metrics["f1"]
        return self.metrics.get("accuracy", 0.0)


def predict_all(
    model: MultitaskModel,
    records: Sequence[Record],
    schema: Schema,
    vocabs: dict[str, Vocab],
    batch_size: int = 64,
    encoded: EncodedDataset | None = None,
) -> dict[str, dict[str, np.ndarray]]:
    """Run inference over all records; returns per-task stacked outputs.

    The forward passes run tape-free (``model.predict`` is wrapped in
    :func:`repro.tensor.no_grad`).  Passing a pre-built ``encoded`` dataset
    skips per-batch re-encoding — the trainer reuses one encoding of the
    dev split across every epoch's evaluation.  Per-batch encoding runs
    under the model's dtype policy so float32 models are fed float32
    batch arrays instead of re-casting float64 ones every forward.
    """
    model_dtype = getattr(model, "dtype", None) or default_dtype()
    collected: dict[str, list] = {t.name: [] for t in schema.tasks}
    probs: dict[str, list] = {t.name: [] for t in schema.tasks}
    with no_grad():
        for idx in iterate_batches(len(records), batch_size):
            if encoded is not None:
                batch = encoded.batch(idx)
            else:
                batch_records = [records[int(i)] for i in idx]
                with dtype_policy(model_dtype):
                    batch = encode_inputs(batch_records, schema, vocabs, indices=idx)
            outputs = model.predict(batch)
            for name, out in outputs.items():
                collected[name].append(out.predictions)
                probs[name].append(out.probs)
    return {
        name: {
            "predictions": np.concatenate(chunks, axis=0)
            if chunks
            else np.zeros(0, dtype=np.int64),
            "probs": np.concatenate(probs[name], axis=0)
            if probs[name]
            else np.zeros((0,)),
        }
        for name, chunks in collected.items()
    }


def evaluate(
    model: MultitaskModel,
    records: Sequence[Record],
    schema: Schema,
    vocabs: dict[str, Vocab],
    gold_source: str = "gold",
    batch_size: int = 64,
    encoded: EncodedDataset | None = None,
) -> dict[str, TaskEvaluation]:
    """Evaluate every task against ``gold_source`` labels.

    Inference runs tape-free; ``encoded`` (optional) reuses a prior
    :class:`~repro.data.EncodedDataset` of ``records`` instead of
    re-encoding them.
    """
    if not records:
        return {t.name: TaskEvaluation(task=t.name) for t in schema.tasks}
    outputs = predict_all(model, records, schema, vocabs, batch_size, encoded=encoded)
    results: dict[str, TaskEvaluation] = {}
    for task in schema.tasks:
        if encoded is not None:
            gold = encoded.gold_targets(task.name, gold_source)
        else:
            gold = extract_targets(records, schema, task.name, gold_source)
        preds = outputs[task.name]["predictions"]
        valid = gold["valid"]
        if task.type == "multiclass":
            acc = accuracy(preds, gold["labels"], valid)
            f1 = macro_f1(preds, gold["labels"], task.num_classes, valid)
            results[task.name] = TaskEvaluation(
                task=task.name,
                metrics={"accuracy": acc, "f1": f1},
                n=int(np.asarray(valid).sum()),
            )
        elif task.type == "bitvector":
            f1 = micro_f1_multilabel(preds, gold["labels"], valid)
            exact = _exact_match(preds, gold["labels"], valid)
            results[task.name] = TaskEvaluation(
                task=task.name,
                metrics={"f1": f1, "exact_match": exact},
                n=int(np.asarray(valid).sum()),
            )
        else:  # select
            acc = accuracy(preds, gold["labels"], valid)
            results[task.name] = TaskEvaluation(
                task=task.name,
                metrics={"accuracy": acc},
                n=int(np.asarray(valid).sum()),
            )
    return results


def mean_primary(evaluations: dict[str, TaskEvaluation]) -> float:
    """Mean of per-task primary metrics — the tuning objective."""
    if not evaluations:
        return 0.0
    return float(np.mean([e.primary for e in evaluations.values()]))


def _exact_match(pred_bits: np.ndarray, gold_bits: np.ndarray, valid) -> float:
    keep = np.asarray(valid, dtype=bool)
    if keep.sum() == 0:
        return 0.0
    matches = (np.asarray(pred_bits) == np.asarray(gold_bits)).all(axis=-1)
    return float(matches[keep].mean())
