"""Training loop, metrics, evaluation, and quality reports."""

from repro.training.metrics import (
    PRF,
    accuracy,
    confusion_matrix,
    macro_f1,
    micro_f1_multilabel,
    per_class_prf,
)
from repro.training.evaluation import (
    TaskEvaluation,
    evaluate,
    mean_primary,
    predict_all,
)
from repro.training.hooks import MetricsTrainerHooks, TrainerHooks
from repro.training.trainer import EpochStats, Trainer, TrainHistory
from repro.training.reports import (
    QualityReport,
    ReportRow,
    confusion_for_tag,
    quality_report,
    render_confusion,
)

__all__ = [
    "PRF",
    "accuracy",
    "confusion_matrix",
    "macro_f1",
    "micro_f1_multilabel",
    "per_class_prf",
    "TaskEvaluation",
    "evaluate",
    "mean_primary",
    "predict_all",
    "EpochStats",
    "MetricsTrainerHooks",
    "Trainer",
    "TrainerHooks",
    "TrainHistory",
    "QualityReport",
    "ReportRow",
    "confusion_for_tag",
    "quality_report",
    "render_confusion",
]
