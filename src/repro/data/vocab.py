"""Token / id vocabularies.

Payloads that carry symbols (token sequences, entity ids) need stable
integer vocabularies shared between training and serving.  Vocabularies are
part of the deployable artifact: the serving runtime must tokenize exactly
the way training did.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

PAD = "<pad>"
UNK = "<unk>"


class Vocab:
    """An append-only symbol table with reserved pad/unk entries."""

    def __init__(self, symbols: Iterable[str] = ()) -> None:
        self._index: dict[str, int] = {PAD: 0, UNK: 1}
        self._symbols: list[str] = [PAD, UNK]
        for s in symbols:
            self.add(s)

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._index

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def unk_id(self) -> int:
        return 1

    def add(self, symbol: str) -> int:
        """Insert ``symbol`` if new; return its id."""
        existing = self._index.get(symbol)
        if existing is not None:
            return existing
        idx = len(self._symbols)
        self._index[symbol] = idx
        self._symbols.append(symbol)
        return idx

    def id(self, symbol: str) -> int:
        """Id for ``symbol``, or the unk id if unseen."""
        return self._index.get(symbol, self.unk_id)

    def ids(self, symbols: Iterable[str]) -> list[int]:
        return [self.id(s) for s in symbols]

    def ids_flat(self, sequences: Iterable[Iterable[str]]) -> "np.ndarray":
        """Bulk lookup: ids of every symbol across ``sequences``, flattened.

        One int64 array in sequence-major order — the batching layer pairs
        it with a row-length mask to fill padded id matrices in a single
        fancy-index assignment instead of a per-record loop.
        """
        import numpy as np

        get = self._index.get
        unk = self.unk_id
        return np.asarray(
            [get(s, unk) for seq in sequences for s in seq], dtype=np.int64
        )

    def symbol(self, idx: int) -> str:
        return self._symbols[idx]

    # ------------------------------------------------------------------
    # Construction from data
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, sequences: Iterable[Iterable[str]], min_count: int = 1) -> "Vocab":
        """Build from token sequences, dropping symbols rarer than
        ``min_count``.  Iteration order is frequency-major then first-seen,
        so ids are deterministic for a given corpus."""
        counts: dict[str, int] = {}
        first_seen: dict[str, int] = {}
        position = 0
        for seq in sequences:
            for symbol in seq:
                counts[symbol] = counts.get(symbol, 0) + 1
                if symbol not in first_seen:
                    first_seen[symbol] = position
                    position += 1
        kept = [s for s, c in counts.items() if c >= min_count]
        kept.sort(key=lambda s: (-counts[s], first_seen[s]))
        return cls(kept)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"symbols": self._symbols[2:]}  # pad/unk reconstructed

    @classmethod
    def from_dict(cls, spec: dict) -> "Vocab":
        return cls(spec["symbols"])

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "Vocab":
        return cls.from_dict(json.loads(Path(path).read_text()))
