"""Engineer-facing data-file queries.

"The file is meant to be engineer readable and queryable (say using jq)"
(§2.2).  This module is the in-library jq equivalent: composable filters
and projections over records, so an engineer can slice a data file from a
REPL without external tools.

Example::

    q = (RecordQuery(dataset.records)
         .with_tag("train")
         .where_task_label("Intent", "gold", "height")
         .conflicting("Intent"))
    print(q.count())
    for row in q.project("payloads.query", "tasks.Intent"):
        print(row)
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.data.record import Record


class RecordQuery:
    """A lazy, chainable filter pipeline over records."""

    def __init__(self, records: Sequence[Record]) -> None:
        self._records = list(records)

    # ------------------------------------------------------------------
    # Filters (each returns a new query)
    # ------------------------------------------------------------------
    def where(self, predicate: Callable[[Record], bool]) -> "RecordQuery":
        return RecordQuery([r for r in self._records if predicate(r)])

    def with_tag(self, tag: str) -> "RecordQuery":
        return self.where(lambda r: r.has_tag(tag))

    def without_tag(self, tag: str) -> "RecordQuery":
        return self.where(lambda r: not r.has_tag(tag))

    def labeled_by(self, task: str, source: str) -> "RecordQuery":
        """Records where ``source`` provided a (non-null) label for ``task``."""
        return self.where(lambda r: r.label_from(task, source) is not None)

    def unlabeled(self, task: str) -> "RecordQuery":
        """Records with no supervision at all for ``task``."""
        return self.where(
            lambda r: not any(
                label is not None for label in r.sources_for(task).values()
            )
        )

    def where_task_label(self, task: str, source: str, label: Any) -> "RecordQuery":
        return self.where(lambda r: r.label_from(task, source) == label)

    def conflicting(self, task: str) -> "RecordQuery":
        """Records where at least two sources disagree on ``task``.

        This is the view engineers inspect first when a task underperforms:
        conflicts are where the label model is earning (or losing) its keep.
        """

        def has_conflict(record: Record) -> bool:
            labels = [
                _hashable(v)
                for v in record.sources_for(task).values()
                if v is not None
            ]
            return len(set(labels)) > 1

        return self.where(has_conflict)

    def token_contains(self, token: str, payload: str = "tokens") -> "RecordQuery":
        return self.where(lambda r: token in (r.payloads.get(payload) or []))

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def records(self) -> list[Record]:
        return list(self._records)

    def count(self) -> int:
        return len(self._records)

    def sample(self, n: int, seed: int = 0) -> list[Record]:
        import numpy as np

        if n >= len(self._records):
            return list(self._records)
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self._records), size=n, replace=False)
        return [self._records[int(i)] for i in idx]

    def project(self, *paths: str) -> Iterator[dict[str, Any]]:
        """Extract dotted paths (e.g. ``payloads.query``, ``tasks.Intent``)."""
        for record in self._records:
            row = {}
            data = record.to_dict()
            for path in paths:
                row[path] = _walk(data, path.split("."))
            yield row

    def label_distribution(self, task: str, source: str) -> dict[Any, int]:
        """Histogram of one source's labels for one task."""
        counts: dict[Any, int] = {}
        for record in self._records:
            label = record.label_from(task, source)
            if label is None:
                continue
            key = _hashable(label)
            counts[key] = counts.get(key, 0) + 1
        return counts


def _walk(data: Any, parts: list[str]) -> Any:
    for part in parts:
        if isinstance(data, dict):
            data = data.get(part)
        else:
            return None
    return data


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value
