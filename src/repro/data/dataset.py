"""Datasets: validated collections of records bound to a schema."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.schema_def import Schema
from repro.data.jsonl import read_records, write_records
from repro.data.record import Record
from repro.data.tags import TagTable, assign_splits
from repro.data.vocab import Vocab
from repro.errors import DataError


class Dataset:
    """An in-memory dataset validated against a schema.

    Records keep their file order; tags select subsets without copying the
    underlying records (Overton's monitoring is tag-driven).
    """

    def __init__(self, schema: Schema, records: Iterable[Record], validate: bool = True) -> None:
        self.schema = schema
        self.records = list(records)
        if validate:
            for i, record in enumerate(self.records):
                try:
                    record.validate(schema)
                except DataError as exc:
                    raise DataError(f"record {i}: {exc}") from exc

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, schema: Schema, path: str | Path, validate: bool = True) -> "Dataset":
        return cls(schema, read_records(path), validate=validate)

    def save(self, path: str | Path) -> int:
        return write_records(path, self.records)

    # ------------------------------------------------------------------
    # Tags and subsets
    # ------------------------------------------------------------------
    def tag_table(self) -> TagTable:
        return TagTable([r.tags for r in self.records])

    def subset(self, indices: np.ndarray | list[int]) -> "Dataset":
        """Select records by index (skips revalidation)."""
        picked = [self.records[int(i)] for i in indices]
        return Dataset(self.schema, picked, validate=False)

    def with_tag(self, tag: str) -> "Dataset":
        return self.subset(self.tag_table().indices(tag))

    def split(self, name: str) -> "Dataset":
        """Records in one of the default splits (train/dev/test)."""
        return self.with_tag(name)

    def ensure_splits(self, rng: np.random.Generator, train: float = 0.8, dev: float = 0.1) -> None:
        """Assign default split tags to records that have none."""
        missing = [
            r for r in self.records
            if not any(r.has_tag(s) for s in ("train", "dev", "test"))
        ]
        if not missing:
            return
        for record, split in zip(missing, assign_splits(len(missing), rng, train, dev)):
            record.add_tag(split)

    def apply_slice(self, name: str, predicate: Callable[[Record], bool]) -> int:
        """Tag records matched by ``predicate`` with ``slice:<name>``.

        Returns the number of records tagged.  This is the engineer's slice
        declaration path (§2.2 "Slicing": "An engineer defines a slice by
        tagging a subset of the data").
        """
        from repro.data.tags import slice_tag

        tag = slice_tag(name)
        count = 0
        for record in self.records:
            if predicate(record):
                record.add_tag(tag)
                count += 1
        return count

    # ------------------------------------------------------------------
    # Vocab construction
    # ------------------------------------------------------------------
    def build_vocabs(self, min_count: int = 1) -> dict[str, Vocab]:
        """Build a vocab for each payload that carries symbols.

        Sequence payloads vocab over their items; set payloads vocab over
        member ``id`` fields.
        """
        vocabs: dict[str, Vocab] = {}
        for payload in self.schema.payloads:
            if payload.type == "sequence":
                sequences = (
                    r.payloads.get(payload.name) or [] for r in self.records
                )
                vocabs[payload.name] = Vocab.build(sequences, min_count=min_count)
            elif payload.type == "set":
                id_lists = (
                    [m.get("id", "") for m in (r.payloads.get(payload.name) or [])]
                    for r in self.records
                )
                vocabs[payload.name] = Vocab.build(id_lists, min_count=min_count)
        return vocabs

    # ------------------------------------------------------------------
    # Supervision summary
    # ------------------------------------------------------------------
    def sources_for_task(self, task_name: str) -> list[str]:
        """All label sources observed for ``task_name``, sorted."""
        sources: set[str] = set()
        for record in self.records:
            sources.update(record.sources_for(task_name))
        return sorted(sources)

    def supervision_stats(self) -> dict[str, dict[str, int]]:
        """Per task, per source: number of records that source labeled."""
        stats: dict[str, dict[str, int]] = {t.name: {} for t in self.schema.tasks}
        for record in self.records:
            for task_name, sources in record.tasks.items():
                per_task = stats.setdefault(task_name, {})
                for source, label in sources.items():
                    if label is not None:
                        per_task[source] = per_task.get(source, 0) + 1
        return stats
