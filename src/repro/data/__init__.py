"""Data layer: records, JSONL files, tags, vocabularies, stores, batching."""

from repro.data.record import Record
from repro.data.jsonl import read_records, write_records
from repro.data.dataset import Dataset
from repro.data.tags import (
    DEFAULT_SPLITS,
    TagTable,
    assign_splits,
    is_slice_tag,
    slice_name,
    slice_tag,
)
from repro.data.vocab import PAD, UNK, Vocab
from repro.data.rowstore import ColumnStore, RowStore
from repro.data.query import RecordQuery
from repro.data.batching import (
    Batch,
    PayloadInputs,
    encode_inputs,
    extract_targets,
    iterate_batches,
)
from repro.data.encoded import EncodedDataset, encoding_fingerprint

__all__ = [
    "Record",
    "read_records",
    "write_records",
    "Dataset",
    "DEFAULT_SPLITS",
    "TagTable",
    "assign_splits",
    "is_slice_tag",
    "slice_name",
    "slice_tag",
    "PAD",
    "UNK",
    "Vocab",
    "RowStore",
    "ColumnStore",
    "Batch",
    "PayloadInputs",
    "encode_inputs",
    "extract_targets",
    "iterate_batches",
    "EncodedDataset",
    "encoding_fingerprint",
    "RecordQuery",
]
