"""Example storage engines: a memory-mapped row store and a column store.

"The schema file also provides schema information in a traditional database
sense: it is used to define a memory-mapped row-store for example.  Since all
elements of an example are needed together, a row store has obvious IO
benefits over column-store-like solutions" (§2.1, footnote 5).

:class:`RowStore` lays every record out contiguously (length-prefixed JSON
payloads) with a separate offset index, reading through ``mmap``.
:class:`ColumnStore` stores each field in its own file — the layout the
footnote argues against — and exists so the benchmark
(``benchmarks/bench_rowstore.py``) can measure the claim.
"""

from __future__ import annotations

import json
import mmap
import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.data.record import Record
from repro.errors import DataError

_MAGIC = b"OVRS"
_VERSION = 1
_HEADER = struct.Struct("<4sII")  # magic, version, record count
_OFFSET = struct.Struct("<QQ")  # offset, length


class RowStore:
    """Immutable, memory-mapped row storage for records.

    File layout::

        header:  magic | version | n_records
        index:   n_records * (offset, length)
        data:    concatenated JSON-encoded records

    Use :meth:`write` to build the file, then instantiate to read.  The whole
    record materializes from one contiguous region — the IO pattern the
    paper's footnote prefers for example-at-a-time access.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise DataError(f"row store not found: {self.path}")
        self._file = self.path.open("rb")
        self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        magic, version, count = _HEADER.unpack_from(self._mmap, 0)
        if magic != _MAGIC:
            raise DataError(f"{self.path} is not a row store (bad magic)")
        if version != _VERSION:
            raise DataError(f"unsupported row store version {version}")
        self._count = count
        self._index_base = _HEADER.size

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @classmethod
    def write(cls, path: str | Path, records: Iterable[Record]) -> "RowStore":
        """Serialize ``records`` into a new row store at ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        blobs = [record.to_json().encode() for record in records]
        index_size = len(blobs) * _OFFSET.size
        data_base = _HEADER.size + index_size
        with path.open("wb") as f:
            f.write(_HEADER.pack(_MAGIC, _VERSION, len(blobs)))
            offset = data_base
            for blob in blobs:
                f.write(_OFFSET.pack(offset, len(blob)))
                offset += len(blob)
            for blob in blobs:
                f.write(blob)
        return cls(path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def _locate(self, i: int) -> tuple[int, int]:
        if not 0 <= i < self._count:
            raise IndexError(f"record {i} out of range [0, {self._count})")
        return _OFFSET.unpack_from(self._mmap, self._index_base + i * _OFFSET.size)

    def read_bytes(self, i: int) -> bytes:
        """Raw JSON bytes of record ``i`` (one contiguous read)."""
        offset, length = self._locate(i)
        return self._mmap[offset : offset + length]

    def __getitem__(self, i: int) -> Record:
        return Record.from_json(self.read_bytes(i).decode())

    def __iter__(self) -> Iterator[Record]:
        for i in range(self._count):
            yield self[i]

    def close(self) -> None:
        self._mmap.close()
        self._file.close()

    def __enter__(self) -> "RowStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ColumnStore:
    """Field-per-file columnar layout, for the footnote-5 comparison.

    Each payload field, each task, and the tag list are stored as separate
    JSONL files.  Reconstructing a full record requires touching every file —
    the scattered IO pattern the paper's row store avoids.
    """

    PAYLOADS_DIR = "payloads"
    TASKS_DIR = "tasks"
    TAGS_FILE = "tags.jsonl"
    META_FILE = "meta.json"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        meta_path = self.root / self.META_FILE
        if not meta_path.exists():
            raise DataError(f"column store not found: {self.root}")
        meta = json.loads(meta_path.read_text())
        self._count = meta["count"]
        self._payload_names = meta["payloads"]
        self._task_names = meta["tasks"]
        # Lazily loaded columns: each is a list of python values.
        self._columns: dict[str, list] = {}

    @classmethod
    def write(cls, root: str | Path, records: Iterable[Record]) -> "ColumnStore":
        root = Path(root)
        (root / cls.PAYLOADS_DIR).mkdir(parents=True, exist_ok=True)
        (root / cls.TASKS_DIR).mkdir(parents=True, exist_ok=True)
        records = list(records)
        payload_names = sorted({n for r in records for n in r.payloads})
        task_names = sorted({n for r in records for n in r.tasks})
        for name in payload_names:
            with (root / cls.PAYLOADS_DIR / f"{name}.jsonl").open("w") as f:
                for r in records:
                    f.write(json.dumps(r.payloads.get(name)) + "\n")
        for name in task_names:
            with (root / cls.TASKS_DIR / f"{name}.jsonl").open("w") as f:
                for r in records:
                    f.write(json.dumps(r.tasks.get(name)) + "\n")
        with (root / cls.TAGS_FILE).open("w") as f:
            for r in records:
                f.write(json.dumps(r.tags) + "\n")
        (root / cls.META_FILE).write_text(
            json.dumps(
                {"count": len(records), "payloads": payload_names, "tasks": task_names}
            )
        )
        return cls(root)

    def __len__(self) -> int:
        return self._count

    def _column(self, key: str, path: Path) -> list:
        cached = self._columns.get(key)
        if cached is None:
            with path.open() as f:
                cached = [json.loads(line) for line in f]
            self._columns[key] = cached
        return cached

    def __getitem__(self, i: int) -> Record:
        if not 0 <= i < self._count:
            raise IndexError(f"record {i} out of range [0, {self._count})")
        payloads = {}
        for name in self._payload_names:
            col = self._column(
                f"p:{name}", self.root / self.PAYLOADS_DIR / f"{name}.jsonl"
            )
            value = col[i]
            if value is not None:
                payloads[name] = value
        tasks = {}
        for name in self._task_names:
            col = self._column(f"t:{name}", self.root / self.TASKS_DIR / f"{name}.jsonl")
            value = col[i]
            if value is not None:
                tasks[name] = value
        tags = self._column("tags", self.root / self.TAGS_FILE)[i]
        return Record(payloads=payloads, tasks=tasks, tags=list(tags))

    def drop_cache(self) -> None:
        """Forget loaded columns (forces IO on next access — for benchmarks)."""
        self._columns.clear()
