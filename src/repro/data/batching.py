"""Batching: convert records into padded numpy inputs for the compiled model.

The split of responsibilities mirrors the paper: records carry raw payloads
and per-source supervision; the *label model* (repro.supervision) combines
sources into probabilistic targets; this module only prepares model inputs
and gold targets for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.schema_def import Schema
from repro.data.record import Record
from repro.data.vocab import Vocab
from repro.errors import DataError
from repro.tensor.backend import default_dtype


@dataclass
class PayloadInputs:
    """Numpy inputs for one payload across a batch."""

    # Sequence payloads
    ids: np.ndarray | None = None  # (B, L) int64
    mask: np.ndarray | None = None  # (B, L) float
    # Set payloads
    member_ids: np.ndarray | None = None  # (B, M) int64
    spans: np.ndarray | None = None  # (B, M, 2) int64
    member_mask: np.ndarray | None = None  # (B, M) float
    # Raw singleton payloads
    features: np.ndarray | None = None  # (B, dim) float


@dataclass
class Batch:
    """All model inputs for a batch of records."""

    indices: np.ndarray  # positions of these records in the source dataset
    payloads: dict[str, PayloadInputs] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.indices)


def encode_inputs(
    records: Sequence[Record],
    schema: Schema,
    vocabs: dict[str, Vocab],
    indices: np.ndarray | None = None,
) -> Batch:
    """Encode ``records`` into a :class:`Batch` of padded arrays.

    Sequences are padded to the payload's ``max_length`` (fixed width keeps
    shapes stable across batches, which the serving signature relies on).
    """
    if indices is None:
        indices = np.arange(len(records))
    batch = Batch(indices=np.asarray(indices))
    n = len(records)
    # Float inputs (masks, raw features) follow the dtype policy; id/index
    # arrays are *always* integer — the policy must never touch them.
    dtype = default_dtype()

    for payload in schema.payloads:
        if payload.base:
            continue  # derived inside the model
        inputs = PayloadInputs()
        if payload.type == "sequence":
            vocab = _require_vocab(vocabs, payload.name)
            length = payload.max_length or 0
            ids = np.zeros((n, length), dtype=np.int64)
            if n and length:
                # Vectorized fill: one bulk vocab lookup over all tokens,
                # scattered into the padded matrix by a row-length mask.
                token_lists = [
                    (record.payloads.get(payload.name) or [])[:length]
                    for record in records
                ]
                lengths = np.fromiter(
                    (len(t) for t in token_lists), dtype=np.int64, count=n
                )
                valid = np.arange(length) < lengths[:, None]
                if lengths.any():
                    ids[valid] = vocab.ids_flat(token_lists)
                mask = valid.astype(dtype)
            else:
                mask = np.zeros((n, length), dtype=dtype)
            inputs.ids = ids
            inputs.mask = mask
        elif payload.type == "set":
            vocab = _require_vocab(vocabs, payload.name)
            m = payload.max_members or 0
            member_ids = np.zeros((n, m), dtype=np.int64)
            spans = np.zeros((n, m, 2), dtype=np.int64)
            member_mask = np.zeros((n, m), dtype=dtype)
            range_payload = schema.payload(payload.range) if payload.range else None
            max_pos = range_payload.max_length if range_payload else None
            for i, record in enumerate(records):
                members = (record.payloads.get(payload.name) or [])[:m]
                for j, member in enumerate(members):
                    member_ids[i, j] = vocab.id(member.get("id", ""))
                    span = member.get("range") or [0, 1]
                    start, end = span
                    if max_pos is not None:
                        start = min(start, max_pos - 1)
                        end = min(end, max_pos)
                    spans[i, j] = (start, max(end, start + 1))
                    member_mask[i, j] = 1.0
            inputs.member_ids = member_ids
            inputs.spans = spans
            inputs.member_mask = member_mask
        elif payload.type == "singleton" and payload.dim is not None:
            features = np.zeros((n, payload.dim), dtype=dtype)
            for i, record in enumerate(records):
                value = record.payloads.get(payload.name)
                if value is not None:
                    features[i] = np.asarray(value, dtype=dtype)
            inputs.features = features
        batch.payloads[payload.name] = inputs
    return batch


def _require_vocab(vocabs: dict[str, Vocab], name: str) -> Vocab:
    vocab = vocabs.get(name)
    if vocab is None:
        raise DataError(f"no vocabulary built for payload {name!r}")
    return vocab


def iterate_batches(
    n: int,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches.

    Shuffles when ``rng`` is given (training); sequential otherwise (eval).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(n)
    if rng is not None:
        order = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


# ----------------------------------------------------------------------
# Gold-target extraction (for evaluation against a trusted source)
# ----------------------------------------------------------------------
def extract_targets(
    records: Sequence[Record],
    schema: Schema,
    task_name: str,
    source: str,
) -> dict[str, np.ndarray]:
    """Extract hard targets from one source (usually the curated gold one).

    Returns arrays shaped per task granularity with a parallel validity
    mask; positions the source did not label are invalid.

    * multiclass singleton: ``labels (N,)``, ``valid (N,)``
    * multiclass sequence:  ``labels (N, L)``, ``valid (N, L)``
    * bitvector singleton:  ``labels (N, K)``, ``valid (N,)``
    * bitvector sequence:   ``labels (N, L, K)``, ``valid (N, L)``
    * select:               ``labels (N,)``, ``valid (N,)``
    """
    task = schema.task(task_name)
    payload = schema.payload(task.payload)
    n = len(records)
    k = task.num_classes

    if task.type == "multiclass" and payload.type != "sequence":
        labels = np.full(n, -1, dtype=np.int64)
        valid = np.zeros(n, dtype=bool)
        for i, record in enumerate(records):
            value = record.label_from(task_name, source)
            if value is not None:
                labels[i] = task.class_index(value)
                valid[i] = True
        return {"labels": labels, "valid": valid}

    if task.type == "multiclass" and payload.type == "sequence":
        length = payload.max_length or 0
        labels = np.full((n, length), -1, dtype=np.int64)
        valid = np.zeros((n, length), dtype=bool)
        for i, record in enumerate(records):
            value = record.label_from(task_name, source)
            if value is None:
                continue
            for t, item in enumerate(value[:length]):
                if item is not None:
                    labels[i, t] = task.class_index(item)
                    valid[i, t] = True
        return {"labels": labels, "valid": valid}

    if task.type == "bitvector":
        dtype = default_dtype()
        if payload.type == "sequence":
            length = payload.max_length or 0
            labels = np.zeros((n, length, k), dtype=dtype)
            valid = np.zeros((n, length), dtype=bool)
            for i, record in enumerate(records):
                value = record.label_from(task_name, source)
                if value is None:
                    continue
                for t, item in enumerate(value[:length]):
                    if item is None:
                        continue
                    valid[i, t] = True
                    for cls_name in item:
                        labels[i, t, task.class_index(cls_name)] = 1.0
            return {"labels": labels, "valid": valid}
        labels = np.zeros((n, k), dtype=dtype)
        valid = np.zeros(n, dtype=bool)
        for i, record in enumerate(records):
            value = record.label_from(task_name, source)
            if value is None:
                continue
            valid[i] = True
            for cls_name in value:
                labels[i, task.class_index(cls_name)] = 1.0
        return {"labels": labels, "valid": valid}

    if task.type == "select":
        labels = np.full(n, -1, dtype=np.int64)
        valid = np.zeros(n, dtype=bool)
        for i, record in enumerate(records):
            value = record.label_from(task_name, source)
            if value is not None:
                labels[i] = int(value)
                valid[i] = True
        return {"labels": labels, "valid": valid}

    raise DataError(f"unsupported task type {task.type!r}")
