"""Tags: Overton's fine-grained monitoring handles (§2.2 "Monitoring").

"Overton allows engineers to provide user-defined tags that are associated
with individual data points.  The system additionally defines default tags
including train, test, dev ... These tags are stored in a format that is
compatible with Pandas."

Tags are plain strings on records.  Slice tags use the ``slice:`` prefix by
convention so slices are ordinary tags that the slicing subsystem also
understands.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SPLITS = ("train", "dev", "test")
SLICE_PREFIX = "slice:"


def is_slice_tag(tag: str) -> bool:
    return tag.startswith(SLICE_PREFIX)


def slice_name(tag: str) -> str:
    """Strip the ``slice:`` prefix from a slice tag."""
    if not is_slice_tag(tag):
        raise ValueError(f"{tag!r} is not a slice tag")
    return tag[len(SLICE_PREFIX) :]


def slice_tag(name: str) -> str:
    """Build the tag for a slice name."""
    return f"{SLICE_PREFIX}{name}"


def assign_splits(
    n: int,
    rng: np.random.Generator,
    train: float = 0.8,
    dev: float = 0.1,
) -> list[str]:
    """Randomly assign each of ``n`` records a default split tag.

    Proportions must satisfy ``0 < train``, ``0 <= dev``, ``train + dev < 1``
    (the remainder is test).
    """
    if not 0 < train < 1 or dev < 0 or train + dev >= 1:
        raise ValueError(
            f"invalid split proportions train={train}, dev={dev}"
        )
    draws = rng.random(n)
    splits = []
    for value in draws:
        if value < train:
            splits.append("train")
        elif value < train + dev:
            splits.append("dev")
        else:
            splits.append("test")
    return splits


class TagTable:
    """A columnar view of tags across a dataset.

    "These tags are stored in a format that is compatible with Pandas" — the
    table exposes ``to_columns()`` returning a dict of equal-length lists, the
    exact structure ``pandas.DataFrame(...)`` accepts, without requiring
    pandas itself to be installed.
    """

    def __init__(self, tags_per_record: list[list[str]]) -> None:
        self._tags = [list(t) for t in tags_per_record]
        self._all_tags = sorted({tag for tags in self._tags for tag in tags})

    def __len__(self) -> int:
        return len(self._tags)

    @property
    def all_tags(self) -> list[str]:
        return list(self._all_tags)

    def mask(self, tag: str) -> np.ndarray:
        """Boolean membership vector for ``tag`` over all records."""
        return np.array([tag in tags for tags in self._tags], dtype=bool)

    def indices(self, tag: str) -> np.ndarray:
        """Record indices carrying ``tag``."""
        return np.nonzero(self.mask(tag))[0]

    def count(self, tag: str) -> int:
        return int(self.mask(tag).sum())

    def slice_tags(self) -> list[str]:
        return [t for t in self._all_tags if is_slice_tag(t)]

    def to_columns(self) -> dict[str, list]:
        """Pandas-compatible columnar dict: one bool column per tag."""
        columns: dict[str, list] = {"record": list(range(len(self._tags)))}
        for tag in self._all_tags:
            membership = self.mask(tag)
            columns[tag] = [bool(x) for x in membership]
        return columns
