"""JSONL data files: the engineer-facing data format.

"The file is meant to be engineer readable and queryable (say using jq), and
each line is a single JSON record" (§2.2).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.data.record import Record
from repro.errors import DataError


def read_records(path: str | Path) -> Iterator[Record]:
    """Stream records from a JSONL file, skipping blank lines."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"data file not found: {path}")
    with path.open() as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield Record.from_json(line)
            except DataError as exc:
                raise DataError(f"{path}:{line_no}: {exc}") from exc


def write_records(path: str | Path, records: Iterable[Record]) -> int:
    """Write records as JSONL; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as f:
        for record in records:
            f.write(record.to_json())
            f.write("\n")
            count += 1
    return count
