"""Example records.

"It is specified as (conceptually) a single file ... each line is a single
JSON record" (§2.2).  A record carries payload values, per-task supervision
keyed by *source* (lineage is first-class), and tags.

The canonical JSON layout (pretty-printed in Fig. 2a)::

    {
      "payloads": {
        "tokens": ["How", "tall", ...],
        "query": "How tall is the president of the united states",
        "entities": [{"id": "President_(title)", "range": [4, 5]}, ...]
      },
      "tasks": {
        "POS":    {"spacy": ["ADV", "ADJ", ...]},
        "Intent": {"weak1": "President", "weak2": "Height", "crowd": "Height"},
        "IntentArg": {"weak1": 2, "weak2": 0, "crowd": 1}
      },
      "tags": ["train", "slice:nutrition"]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.schema_def import Schema
from repro.errors import DataError


@dataclass
class Record:
    """One example: payload values + per-source supervision + tags."""

    payloads: dict[str, Any] = field(default_factory=dict)
    tasks: dict[str, dict[str, Any]] = field(default_factory=dict)
    tags: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, spec: dict) -> "Record":
        if not isinstance(spec, dict):
            raise DataError("record must be a JSON object")
        unknown = set(spec) - {"payloads", "tasks", "tags"}
        if unknown:
            raise DataError(f"record has unknown fields {sorted(unknown)}")
        tasks = spec.get("tasks", {})
        if not isinstance(tasks, dict):
            raise DataError("record 'tasks' must be an object")
        for task_name, sources in tasks.items():
            if not isinstance(sources, dict):
                raise DataError(
                    f"record task {task_name!r} must map source -> label "
                    "(lineage is required)"
                )
        return cls(
            payloads=dict(spec.get("payloads", {})),
            tasks={t: dict(s) for t, s in tasks.items()},
            tags=list(spec.get("tags", [])),
        )

    @classmethod
    def from_json(cls, line: str) -> "Record":
        try:
            spec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DataError(f"record is not valid JSON: {exc}") from exc
        return cls.from_dict(spec)

    def to_dict(self) -> dict:
        return {"payloads": self.payloads, "tasks": self.tasks, "tags": self.tags}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    # ------------------------------------------------------------------
    # Supervision access
    # ------------------------------------------------------------------
    def sources_for(self, task: str) -> dict[str, Any]:
        """All (source, label) pairs supplied for ``task`` (may be empty)."""
        return self.tasks.get(task, {})

    def label_from(self, task: str, source: str) -> Any:
        """The label ``source`` assigned for ``task``, or None if absent."""
        return self.tasks.get(task, {}).get(source)

    def add_label(self, task: str, source: str, label: Any) -> None:
        """Attach supervision (records lineage by construction)."""
        self.tasks.setdefault(task, {})[source] = label

    # ------------------------------------------------------------------
    # Tags
    # ------------------------------------------------------------------
    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def add_tag(self, tag: str) -> None:
        if tag not in self.tags:
            self.tags.append(tag)

    # ------------------------------------------------------------------
    # Validation against a schema
    # ------------------------------------------------------------------
    def validate(self, schema: Schema) -> None:
        """Raise :class:`DataError` if this record violates ``schema``."""
        for name, value in self.payloads.items():
            spec = schema.payload(name)  # raises SchemaError for unknown
            if value is None:
                continue  # "Each payload is described in the file (but may be null)"
            if spec.type == "sequence":
                if not isinstance(value, list):
                    raise DataError(f"sequence payload {name!r} must be a list")
                if spec.max_length is not None and len(value) > spec.max_length:
                    raise DataError(
                        f"sequence payload {name!r} has {len(value)} items, "
                        f"max_length is {spec.max_length}"
                    )
            elif spec.type == "set":
                if not isinstance(value, list):
                    raise DataError(f"set payload {name!r} must be a list of members")
                if spec.max_members is not None and len(value) > spec.max_members:
                    raise DataError(
                        f"set payload {name!r} has {len(value)} members, "
                        f"max_members is {spec.max_members}"
                    )
                for i, member in enumerate(value):
                    if not isinstance(member, dict):
                        raise DataError(
                            f"set payload {name!r} member {i} must be an object"
                        )
                    span = member.get("range")
                    if span is not None:
                        if (
                            not isinstance(span, list)
                            or len(span) != 2
                            or not all(isinstance(x, int) for x in span)
                            or span[0] < 0
                            or span[1] <= span[0]
                        ):
                            raise DataError(
                                f"set payload {name!r} member {i}: range must be "
                                f"[start, end) with 0 <= start < end, got {span!r}"
                            )
            elif spec.type == "singleton" and spec.dim is not None:
                if not isinstance(value, list) or len(value) != spec.dim:
                    raise DataError(
                        f"singleton payload {name!r} must be a {spec.dim}-vector"
                    )

        for task_name, sources in self.tasks.items():
            task = schema.task(task_name)  # raises SchemaError for unknown
            payload = schema.payload(task.payload)
            for source, label in sources.items():
                self._validate_label(task, payload, source, label)

    def _validate_label(self, task, payload, source: str, label: Any) -> None:
        where = f"task {task.name!r} source {source!r}"
        if label is None:
            return  # abstain
        if task.type == "multiclass":
            if payload.type == "sequence":
                seq = self.payloads.get(payload.name) or []
                if not isinstance(label, list) or len(label) != len(seq):
                    raise DataError(
                        f"{where}: sequence labels must align with "
                        f"{payload.name!r} ({len(seq)} positions)"
                    )
                for item in label:
                    if item is not None and item not in task.classes:
                        raise DataError(f"{where}: unknown class {item!r}")
            else:
                if label not in task.classes:
                    raise DataError(f"{where}: unknown class {label!r}")
        elif task.type == "bitvector":
            if payload.type == "sequence":
                seq = self.payloads.get(payload.name) or []
                if not isinstance(label, list) or len(label) != len(seq):
                    raise DataError(
                        f"{where}: bitvector sequence labels must align with "
                        f"{payload.name!r}"
                    )
                positions = label
            else:
                positions = [label]
            for item in positions:
                if item is None:
                    continue
                if not isinstance(item, list):
                    raise DataError(f"{where}: bitvector labels must be lists")
                for cls_name in item:
                    if cls_name not in task.classes:
                        raise DataError(f"{where}: unknown class {cls_name!r}")
        elif task.type == "select":
            members = self.payloads.get(payload.name) or []
            if not isinstance(label, int) or not 0 <= label < len(members):
                raise DataError(
                    f"{where}: select label must be a member index in "
                    f"[0, {len(members)}), got {label!r}"
                )
