"""Epoch-level encoded-batch caching.

The trainer's hot loop used to call :func:`repro.data.batching.encode_inputs`
on the same records every epoch — re-tokenizing, re-padding, and re-masking
identical data dozens of times per fit.  :class:`EncodedDataset` encodes the
full dataset exactly once and serves per-batch *views* by row slicing, so an
epoch costs one fancy-index per payload array instead of a python loop over
records.

Correctness hinges on a property of :func:`encode_inputs`: every record is
encoded independently into fixed-width rows (sequences pad to the payload's
``max_length``, sets to ``max_members``), so encoding a subset of records
and slicing the same rows out of a full encoding produce bit-identical
arrays.  Shuffling therefore behaves exactly as before — the trainer draws
the same index permutations from the same RNG stream and only the array
construction changes.

The cache is valid for one (schema, vocabs) pair, captured as a
:func:`encoding_fingerprint` at construction; callers that mutate vocabs
between epochs (none do today) can detect staleness with
:meth:`EncodedDataset.is_current`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Sequence

import numpy as np

from repro.core.schema_def import Schema
from repro.data.batching import Batch, PayloadInputs, encode_inputs, extract_targets
from repro.data.record import Record
from repro.data.vocab import Vocab
from repro.tensor.backend import default_dtype


def encoding_fingerprint(schema: Schema, vocabs: dict[str, Vocab]) -> str:
    """A stable digest of everything that shapes encoded arrays.

    Covers each payload's structural fields (type, widths, range/base
    wiring), each vocab's size — vocabs are append-only, so length pins
    the id assignment — and the active dtype policy, since the float
    arrays a cache built under float64 are not the arrays a float32
    consumer expects.
    """
    spec = {
        "dtype": default_dtype().name,
        "payloads": [
            {
                "name": p.name,
                "type": p.type,
                "max_length": p.max_length,
                "max_members": p.max_members,
                "dim": p.dim,
                "range": p.range,
                "base": list(p.base),
            }
            for p in schema.payloads
        ],
        "vocabs": {name: len(v) for name, v in sorted(vocabs.items())},
    }
    payload = json.dumps(spec, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


class EncodedDataset:
    """A dataset encoded once, served as per-batch row views.

    Build it from the records the trainer or evaluator will iterate;
    :meth:`batch` then replaces ``encode_inputs(records[idx], ...)`` with a
    row slice of the one full encoding.
    """

    def __init__(
        self,
        records: Sequence[Record],
        schema: Schema,
        vocabs: dict[str, Vocab],
    ) -> None:
        self.schema = schema
        self.fingerprint = encoding_fingerprint(schema, vocabs)
        self._records = list(records)
        self._full = encode_inputs(records, schema, vocabs)
        self._n = len(records)
        self._targets: dict[tuple[str, str], dict[str, np.ndarray]] = {}

    def __len__(self) -> int:
        return self._n

    def is_current(self, schema: Schema, vocabs: dict[str, Vocab]) -> bool:
        """Whether the cached encoding still matches (schema, vocabs)."""
        return self.fingerprint == encoding_fingerprint(schema, vocabs)

    def batch(self, indices: np.ndarray) -> Batch:
        """The encoded batch for dataset rows ``indices`` (any order).

        Row ``i`` of every returned array corresponds to record
        ``indices[i]``, exactly as ``encode_inputs`` with ``indices=`` would
        produce.
        """
        idx = np.asarray(indices)
        payloads: dict[str, PayloadInputs] = {}
        for name, p in self._full.payloads.items():
            payloads[name] = PayloadInputs(
                ids=p.ids[idx] if p.ids is not None else None,
                mask=p.mask[idx] if p.mask is not None else None,
                member_ids=p.member_ids[idx] if p.member_ids is not None else None,
                spans=p.spans[idx] if p.spans is not None else None,
                member_mask=p.member_mask[idx] if p.member_mask is not None else None,
                features=p.features[idx] if p.features is not None else None,
            )
        return Batch(indices=idx, payloads=payloads)

    def full_batch(self) -> Batch:
        """The entire dataset as one encoded batch (shared arrays, no copy)."""
        return self._full

    def gold_targets(self, task_name: str, source: str) -> dict[str, np.ndarray]:
        """Memoized :func:`extract_targets` over the full record set.

        The evaluation harness extracts the same gold labels for every task
        on every call; per-epoch dev evaluation makes that an epoch-hot
        python loop.  Labels are as immutable as the encoded inputs, so
        they are cached under the same fingerprint lifetime.
        """
        key = (task_name, source)
        cached = self._targets.get(key)
        if cached is None:
            cached = extract_targets(self._records, self.schema, task_name, source)
            self._targets[key] = cached
        return cached
