"""Per-slice quality reporting.

"Overton reports the accuracy conditioned on an example being in the slice"
(§2.2).  These are the tables an Overton engineer watches week to week.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SliceError


@dataclass
class SliceReport:
    """Quality of one prediction set conditioned on one slice."""

    slice_name: str
    size: int
    accuracy: float
    f1: float

    def to_row(self) -> dict:
        return {
            "slice": self.slice_name,
            "n": self.size,
            "accuracy": round(self.accuracy, 4),
            "f1": round(self.f1, 4),
        }


def accuracy_and_f1(
    predictions: np.ndarray, gold: np.ndarray, mask: np.ndarray | None = None
) -> tuple[float, float, int]:
    """Accuracy and macro-F1 over (optionally masked) items."""
    predictions = np.asarray(predictions)
    gold = np.asarray(gold)
    if predictions.shape != gold.shape:
        raise SliceError(
            f"predictions shape {predictions.shape} != gold shape {gold.shape}"
        )
    if mask is not None:
        keep = np.asarray(mask, dtype=bool)
        predictions = predictions[keep]
        gold = gold[keep]
    n = len(gold)
    if n == 0:
        return 0.0, 0.0, 0
    acc = float((predictions == gold).mean())
    classes = np.unique(np.concatenate([gold, predictions]))
    f1s = []
    for c in classes:
        tp = float(((predictions == c) & (gold == c)).sum())
        fp = float(((predictions == c) & (gold != c)).sum())
        fn = float(((predictions != c) & (gold == c)).sum())
        if tp == 0:
            f1s.append(0.0)
            continue
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        f1s.append(2 * precision * recall / (precision + recall))
    return acc, float(np.mean(f1s)), n


def per_slice_reports(
    predictions: np.ndarray,
    gold: np.ndarray,
    membership: np.ndarray,
    slice_names: list[str],
    valid: np.ndarray | None = None,
) -> list[SliceReport]:
    """One report per slice, plus an 'overall' row first.

    ``membership`` is ``(n, s)``; ``valid`` optionally restricts to items
    with trusted gold labels.
    """
    if membership.ndim != 2 or membership.shape[1] != len(slice_names):
        raise SliceError(
            f"membership shape {membership.shape} does not match "
            f"{len(slice_names)} slices"
        )
    base_mask = (
        np.ones(len(gold), dtype=bool) if valid is None else np.asarray(valid, bool)
    )
    acc, f1, n = accuracy_and_f1(predictions, gold, base_mask)
    reports = [SliceReport(slice_name="overall", size=n, accuracy=acc, f1=f1)]
    for j, name in enumerate(slice_names):
        mask = base_mask & (membership[:, j] > 0.5)
        acc, f1, n = accuracy_and_f1(predictions, gold, mask)
        reports.append(SliceReport(slice_name=name, size=n, accuracy=acc, f1=f1))
    return reports


def reports_to_columns(reports: list[SliceReport]) -> dict[str, list]:
    """Pandas-compatible columnar dict of slice reports."""
    return {
        "slice": [r.slice_name for r in reports],
        "n": [r.size for r in reports],
        "accuracy": [r.accuracy for r in reports],
        "f1": [r.f1 for r in reports],
    }
