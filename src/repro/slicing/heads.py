"""Slice-aware model heads: residual experts + learned indicators.

Implements the slice-based-learning architecture the paper adopts from Chen
et al. (NeurIPS 2019), §2.2:

* a **base head** makes the backbone prediction;
* per slice, an **indicator head** learns "am I in this slice?" — this is
  what lets a heuristic slice generalize to unseen examples;
* per slice, an **expert feature transform + expert head** adds the "slightly
  increased representation capacity";
* at inference there is still *one* prediction per task: expert features are
  recombined into the backbone representation by **membership-and-confidence
  weighted attention**, and a final head predicts from the residual sum.

The module is granularity-agnostic: it operates on ``(n_items, d)``
representations (callers flatten sequence reps to items).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Linear, Module
from repro.tensor import (
    Tensor,
    binary_cross_entropy_with_logits,
    cross_entropy,
    log_softmax,
    softmax,
    stack,
)


@dataclass
class SliceForward:
    """Everything a slice-aware head produces in one pass."""

    final_logits: Tensor  # (n, k) the single served prediction
    base_logits: Tensor  # (n, k)
    indicator_logits: Tensor | None  # (n, s)
    expert_logits: Tensor | None  # (n, s, k)
    attention: np.ndarray | None  # (n, s) detached weights, for monitoring


class SliceAwareHead(Module):
    """Task head with optional slice experts.

    With ``slice_names`` empty this degrades exactly to a plain linear head
    (the ablation baseline in ``benchmarks/bench_slice_ablation.py``).
    """

    def __init__(
        self,
        rep_dim: int,
        num_classes: int,
        slice_names: list[str],
        rng: np.random.Generator,
        expert_dim: int | None = None,
    ) -> None:
        super().__init__()
        self.rep_dim = rep_dim
        self.num_classes = num_classes
        self.slice_names = list(slice_names)
        # Experts ADD capacity on top of the backbone (that is the point of
        # slicing, §2.2), so their width must not shrink with a bottlenecked
        # backbone representation.
        self.expert_dim = expert_dim or max(2 * rep_dim, 16)

        self.base_head = Linear(rep_dim, num_classes, rng)
        self.indicator_heads = [
            Linear(rep_dim, 1, rng) for _ in self.slice_names
        ]
        self.expert_transforms = [
            Linear(rep_dim, self.expert_dim, rng, activation="relu")
            for _ in self.slice_names
        ]
        self.expert_heads = [
            Linear(self.expert_dim, num_classes, rng) for _ in self.slice_names
        ]
        self.reconstruct = (
            Linear(self.expert_dim, rep_dim, rng) if self.slice_names else None
        )
        # Without slices the base head *is* the final head; creating a
        # second head would leave dead parameters.
        self.final_head = (
            Linear(rep_dim, num_classes, rng) if self.slice_names else None
        )

    @property
    def num_slices(self) -> int:
        return len(self.slice_names)

    def forward(self, rep: Tensor) -> SliceForward:
        base_logits = self.base_head(rep)
        if not self.slice_names:
            return SliceForward(
                final_logits=base_logits,
                base_logits=base_logits,
                indicator_logits=None,
                expert_logits=None,
                attention=None,
            )

        indicator_cols = []
        expert_features = []
        expert_logit_list = []
        confidences = []
        for i in range(self.num_slices):
            ind = self.indicator_heads[i](rep)  # (n, 1)
            indicator_cols.append(ind)
            feat = self.expert_transforms[i](rep)  # (n, e)
            expert_features.append(feat)
            logits = self.expert_heads[i](feat)  # (n, k)
            expert_logit_list.append(logits)
            # Expert confidence: max log-probability (high when the expert
            # is decisive).  Detached — attention should not push experts
            # toward overconfidence.
            log_probs = log_softmax(logits, axis=-1)
            confidences.append(log_probs.data.max(axis=-1))

        indicator_logits = (
            stack([c.squeeze(1) for c in indicator_cols], axis=1)
            if self.num_slices > 1
            else indicator_cols[0]
        )
        if self.num_slices == 1:
            indicator_logits = indicator_cols[0].reshape(rep.shape[0], 1)

        # Attention over slices: membership likelihood + expert confidence.
        membership_score = indicator_logits.data  # (n, s), detached
        confidence_score = np.stack(confidences, axis=1)  # (n, s)
        raw = membership_score + confidence_score
        # Stable softmax over slices with an implicit "no slice" option of
        # score 0, so examples in no slice keep the backbone representation.
        padded = np.concatenate([np.zeros((rep.shape[0], 1)), raw], axis=1)
        shifted = padded - padded.max(axis=1, keepdims=True)
        weights = np.exp(shifted)
        weights = weights / weights.sum(axis=1, keepdims=True)
        attention = weights[:, 1:]  # (n, s)

        expert_stack = stack(expert_logit_list, axis=1)  # (n, s, k)
        combined = rep
        for i in range(self.num_slices):
            contribution = self.reconstruct(expert_features[i])
            combined = combined + contribution * Tensor(attention[:, i : i + 1])
        final_logits = self.final_head(combined)
        return SliceForward(
            final_logits=final_logits,
            base_logits=base_logits,
            indicator_logits=indicator_logits,
            expert_logits=expert_stack,
            attention=attention,
        )


def slice_loss(
    forward: SliceForward,
    target_probs: np.ndarray,
    sample_weights: np.ndarray,
    membership: np.ndarray | None,
    slice_weight: float = 0.5,
) -> Tensor:
    """Total loss for a slice-aware multiclass head.

    ``target_probs`` is ``(n, k)`` soft labels, ``sample_weights`` ``(n,)``,
    ``membership`` ``(n, s)`` heuristic slice indicators (None when the head
    has no slices).  The final-head loss always applies; indicator and
    expert losses are scaled by ``slice_weight``.
    """
    total = cross_entropy(forward.final_logits, target_probs, sample_weights)
    if membership is None or forward.indicator_logits is None:
        return total
    # With slices active, also supervise the backbone prediction directly so
    # the shared representation does not rely solely on expert routing.
    total = total + cross_entropy(forward.base_logits, target_probs, sample_weights)

    # Indicator heads learn heuristic membership.
    indicator_loss = binary_cross_entropy_with_logits(
        forward.indicator_logits, membership, sample_weights=None
    )
    total = total + indicator_loss * slice_weight

    # Expert heads train only on their slice members.
    n, s, k = forward.expert_logits.shape
    for i in range(s):
        member_weights = sample_weights * membership[:, i]
        if member_weights.sum() <= 0:
            continue
        expert_logits_i = forward.expert_logits[:, i, :]
        expert_loss = cross_entropy(expert_logits_i, target_probs, member_weights)
        total = total + expert_loss * slice_weight
    return total


def predicted_membership(forward: SliceForward) -> np.ndarray | None:
    """Learned membership probabilities (n, s), or None without slices."""
    if forward.indicator_logits is None:
        return None
    x = forward.indicator_logits.data
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
