"""Slicing: fine-grained subsets with extra model capacity (§2.2)."""

from repro.slicing.slice import SliceSet, SliceSpec, expand_membership_to_items
from repro.slicing.heads import (
    SliceAwareHead,
    SliceForward,
    predicted_membership,
    slice_loss,
)
from repro.slicing.metrics import (
    SliceReport,
    accuracy_and_f1,
    per_slice_reports,
    reports_to_columns,
)

__all__ = [
    "SliceSet",
    "SliceSpec",
    "expand_membership_to_items",
    "SliceAwareHead",
    "SliceForward",
    "predicted_membership",
    "slice_loss",
    "SliceReport",
    "accuracy_and_f1",
    "per_slice_reports",
    "reports_to_columns",
]
