"""Slice definitions and membership.

"An engineer defines a slice by tagging a subset of the data and indicating
that this tag is also a slice ... A slice also indicates to Overton that it
should increase its representation capacity (slightly) to learn a 'per
slice' representation for a task" (§2.2).

A slice is defined either by a tag already present on records (the
data-file path) or by a predicate (the programmatic path, which writes the
tag).  Membership is heuristic: the model additionally *learns* an
indicator so slices generalize to new examples (see
:mod:`repro.slicing.heads`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.data.record import Record
from repro.data.tags import slice_tag
from repro.errors import SliceError


@dataclass
class SliceSpec:
    """One slice: a name plus how membership is decided."""

    name: str
    predicate: Callable[[Record], bool] | None = None
    description: str = ""

    @property
    def tag(self) -> str:
        return slice_tag(self.name)

    def member(self, record: Record) -> bool:
        """Heuristic membership: tag match, or predicate if provided."""
        if record.has_tag(self.tag):
            return True
        if self.predicate is not None:
            return bool(self.predicate(record))
        return False

    def materialize(self, records: Sequence[Record]) -> int:
        """Write the slice tag onto matching records; returns the count."""
        count = 0
        for record in records:
            if self.member(record):
                record.add_tag(self.tag)
                count += 1
        return count


class SliceSet:
    """An ordered collection of slices for one application."""

    def __init__(self, slices: Sequence[SliceSpec] = ()) -> None:
        names = [s.name for s in slices]
        if len(set(names)) != len(names):
            raise SliceError(f"duplicate slice names: {names}")
        self.slices = list(slices)

    def __len__(self) -> int:
        return len(self.slices)

    def __iter__(self):
        return iter(self.slices)

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.slices]

    def add(self, spec: SliceSpec) -> None:
        if spec.name in self.names:
            raise SliceError(f"slice {spec.name!r} already defined")
        self.slices.append(spec)

    def get(self, name: str) -> SliceSpec:
        for s in self.slices:
            if s.name == name:
                return s
        raise SliceError(f"unknown slice {name!r}")

    def membership_matrix(self, records: Sequence[Record]) -> np.ndarray:
        """(n_records, n_slices) float membership indicators."""
        matrix = np.zeros((len(records), len(self.slices)))
        for j, spec in enumerate(self.slices):
            for i, record in enumerate(records):
                if spec.member(record):
                    matrix[i, j] = 1.0
        return matrix

    def materialize(self, records: Sequence[Record]) -> dict[str, int]:
        """Tag all records for all slices; returns per-slice counts."""
        return {s.name: s.materialize(records) for s in self.slices}

    @classmethod
    def from_tags(cls, records: Sequence[Record]) -> "SliceSet":
        """Discover slices from ``slice:`` tags already in the data."""
        from repro.data.tags import is_slice_tag, slice_name

        names: list[str] = []
        for record in records:
            for tag in record.tags:
                if is_slice_tag(tag) and slice_name(tag) not in names:
                    names.append(slice_name(tag))
        return cls([SliceSpec(name=n) for n in sorted(names)])


def expand_membership_to_items(
    membership: np.ndarray, item_index: np.ndarray
) -> np.ndarray:
    """Lift record-level membership to item granularity.

    Sequence tasks train on (record, position) items; a slice defined on
    records applies to every position of member records.  ``item_index`` is
    the ``(n_items, 2)`` map from :class:`repro.supervision.LabelMatrix`.
    """
    if membership.ndim != 2:
        raise SliceError(f"membership must be 2-D, got {membership.shape}")
    record_ids = item_index[:, 0]
    return membership[record_ids]
