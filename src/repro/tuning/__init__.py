"""Hyperparameter / coarse architecture search."""

from repro.tuning.search import (
    SearchResult,
    Trial,
    grid_search,
    random_search,
    successive_halving,
)

__all__ = [
    "SearchResult",
    "Trial",
    "grid_search",
    "random_search",
    "successive_halving",
]
