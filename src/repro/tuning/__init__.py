"""Hyperparameter / coarse architecture search.

Strategies accept a serial ``trial_fn`` or a
:class:`repro.exec.TrialExecutor` (``executor=...``) to fan trials out
across worker processes; see :mod:`repro.exec` and ``docs/tuning.md``.
"""

from repro.tuning.search import (
    SearchResult,
    Trial,
    grid_search,
    random_search,
    successive_halving,
)

__all__ = [
    "SearchResult",
    "Trial",
    "grid_search",
    "random_search",
    "successive_halving",
]
