"""Hyperparameter and coarse architecture search.

"Overton searches over relatively limited large blocks, e.g., should we use
an LSTM or CNN, not at a fine-grained level of connections" (§4).  The
controller evaluates concrete :class:`ModelConfig` candidates (from
``TuningSpec.expand()``) via a caller-supplied trial function and keeps a
full trial log.  Grid, random, and successive-halving strategies are
provided; the paper notes fancier NAS had diminishing returns.

Every strategy accepts either a plain ``trial_fn`` (the legacy serial
path, evaluated inline in candidate order) or an ``executor`` — a
:class:`repro.exec.TrialExecutor` that fans candidates out across worker
processes and gathers scores back in the same order, so the trial log,
tie-breaking, and the chosen best are identical between the two paths.
Successive halving parallelizes *within* each rung: a rung is a barrier
(survivors are chosen from complete rung scores), so the recorded rung
ordering is preserved no matter how many workers race inside it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.tuning_spec import ModelConfig, TrainerConfig, TuningSpec
from repro.errors import TuningError

if TYPE_CHECKING:  # repro.exec depends on this module; keep imports lazy
    from repro.exec.executor import TrialExecutor

TrialFn = Callable[[ModelConfig], float]


@dataclass
class Trial:
    """One evaluated candidate."""

    config: ModelConfig
    score: float
    rung: int = 0


@dataclass
class SearchResult:
    """Best candidate plus the full log."""

    best_config: ModelConfig
    best_score: float
    trials: list[Trial] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)


def grid_search(
    spec: TuningSpec,
    trial_fn: TrialFn | None = None,
    *,
    executor: "TrialExecutor | None" = None,
) -> SearchResult:
    """Evaluate every candidate in the spec's cross product."""
    candidates = spec.expand()
    return _evaluate_all(candidates, trial_fn, executor)


def random_search(
    spec: TuningSpec,
    trial_fn: TrialFn | None = None,
    num_trials: int = 8,
    seed: int = 0,
    *,
    executor: "TrialExecutor | None" = None,
) -> SearchResult:
    """Evaluate a random subset of the grid (Li & Talwalkar 2019 style)."""
    if num_trials <= 0:
        raise TuningError("num_trials must be positive")
    candidates = spec.expand()
    rng = np.random.default_rng(seed)
    if num_trials >= len(candidates):
        picked = candidates
    else:
        idx = rng.choice(len(candidates), size=num_trials, replace=False)
        picked = [candidates[i] for i in idx]
    return _evaluate_all(picked, trial_fn, executor)


def successive_halving(
    spec: TuningSpec,
    trial_fn_with_budget: Callable[[ModelConfig, int], float] | None = None,
    min_epochs: int = 2,
    max_epochs: int = 8,
    reduction: int = 2,
    seed: int = 0,
    *,
    executor: "TrialExecutor | None" = None,
) -> SearchResult:
    """Successive halving over training epochs.

    All candidates train for ``min_epochs``; the top ``1/reduction`` advance
    with doubled budget until ``max_epochs``.  ``trial_fn_with_budget``
    receives (config, epochs).  With an ``executor``, each rung's survivors
    are scored in parallel; rungs themselves stay strictly ordered because
    survivor selection needs the whole rung.
    """
    if reduction < 2:
        raise TuningError("reduction factor must be >= 2")
    if trial_fn_with_budget is None and executor is None:
        raise TuningError("provide trial_fn_with_budget or an executor")
    if "epochs" in spec.trainer_options:
        # Halving owns the epochs axis (every candidate's epochs is
        # rewritten to its rung budget); expanding it would only produce
        # duplicate candidates that waste trials and survivor slots.
        spec = TuningSpec(
            payload_options=spec.payload_options,
            trainer_options={
                k: v for k, v in spec.trainer_options.items() if k != "epochs"
            },
        )
    candidates = spec.expand()
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(candidates))
    survivors = [candidates[i] for i in order]
    trials: list[Trial] = []
    budget = min_epochs
    rung = 0
    scored: list[tuple[ModelConfig, float]] = []
    while survivors:
        rung_configs = [_with_epochs(config, budget) for config in survivors]
        if executor is not None:
            outcomes = executor.evaluate(rung_configs, budget=budget)
            scores = [outcome.score for outcome in outcomes]
        else:
            scores = [
                trial_fn_with_budget(config, budget) for config in rung_configs
            ]
        scored = []
        for config, score in zip(rung_configs, scores):
            trials.append(Trial(config=config, score=score, rung=rung))
            scored.append((config, score))
        scored.sort(key=lambda pair: pair[1], reverse=True)
        if budget >= max_epochs or len(scored) == 1:
            break
        keep = max(1, math.ceil(len(scored) / reduction))
        survivors = [config for config, _ in scored[:keep]]
        budget = min(budget * reduction, max_epochs)
        rung += 1
    best_config, best_score = scored[0]
    return SearchResult(best_config=best_config, best_score=best_score, trials=trials)


def _with_epochs(config: ModelConfig, epochs: int) -> ModelConfig:
    trainer = TrainerConfig(**{**config.trainer.to_dict(), "epochs": epochs})
    return ModelConfig(payloads=dict(config.payloads), trainer=trainer)


def _evaluate_all(
    candidates: Sequence[ModelConfig],
    trial_fn: TrialFn | None,
    executor: "TrialExecutor | None" = None,
) -> SearchResult:
    if not candidates:
        raise TuningError("no candidates to evaluate")
    if executor is not None:
        outcomes = executor.evaluate(candidates)
        trials = [Trial(config=o.config, score=o.score) for o in outcomes]
        best = trials[0]
        for trial in trials[1:]:
            if trial.score > best.score:
                best = trial
        return SearchResult(
            best_config=best.config, best_score=best.score, trials=trials
        )
    if trial_fn is None:
        raise TuningError("provide a trial function or an executor")
    trials = []
    best: Trial | None = None
    for config in candidates:
        score = trial_fn(config)
        trial = Trial(config=config, score=score)
        trials.append(trial)
        if best is None or score > best.score:
            best = trial
    assert best is not None
    return SearchResult(best_config=best.config, best_score=best.score, trials=trials)
