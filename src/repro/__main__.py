"""``python -m repro``: run the engineer-facing CLI (see :mod:`repro.cli`)."""

from repro.cli import main

raise SystemExit(main())
