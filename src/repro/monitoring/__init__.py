"""Monitoring: regression detection and text dashboards."""

from repro.monitoring.regression import Regression, RegressionReport, compare_reports
from repro.monitoring.drift import DriftReport, detect_drift, js_divergence
from repro.monitoring.dashboards import (
    format_table,
    render_autopilot,
    render_quality_report,
    render_regressions,
    render_source_accuracies,
    render_spans,
)

__all__ = [
    "Regression",
    "RegressionReport",
    "compare_reports",
    "format_table",
    "render_autopilot",
    "render_quality_report",
    "render_regressions",
    "render_source_accuracies",
    "render_spans",
    "DriftReport",
    "detect_drift",
    "js_divergence",
]
