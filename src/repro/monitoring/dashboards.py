"""Text dashboards: render reports as aligned tables for terminals/logs.

The paper's engineers consume fine-grained reports through downstream UIs;
the library equivalent is a plain-text renderer usable in CI logs and the
examples.
"""

from __future__ import annotations

from typing import Sequence

from repro.monitoring.regression import RegressionReport
from repro.training.reports import QualityReport


def format_table(columns: dict[str, list], max_rows: int | None = None) -> str:
    """Render a columnar dict as an aligned text table."""
    if not columns:
        return "(empty table)"
    headers = list(columns)
    lengths = {len(v) for v in columns.values()}
    if len(lengths) != 1:
        raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
    n = lengths.pop()
    rows = range(n if max_rows is None else min(n, max_rows))

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    cells = [[fmt(columns[h][i]) for h in headers] for i in rows]
    widths = [
        max(len(h), *(len(row[j]) for row in cells)) if cells else len(h)
        for j, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if max_rows is not None and n > max_rows:
        lines.append(f"... ({n - max_rows} more rows)")
    return "\n".join(lines)


def render_quality_report(report: QualityReport, max_rows: int | None = None) -> str:
    """Quality report as a text table."""
    return format_table(report.to_columns(), max_rows=max_rows)


def render_regressions(report: RegressionReport) -> str:
    """Regression report summary."""
    lines = []
    if report.regressions:
        lines.append(f"REGRESSIONS ({len(report.regressions)}):")
        for r in report.regressions:
            lines.append(
                f"  {r.tag} / {r.task} / {r.metric}: "
                f"{r.before:.4f} -> {r.after:.4f} ({r.delta:+.4f})"
            )
    else:
        lines.append("No regressions detected.")
    if report.improvements:
        lines.append(f"improvements: {len(report.improvements)}")
    return "\n".join(lines)


def render_autopilot(
    status: dict, entries: Sequence[dict] = (), max_entries: int = 8
) -> str:
    """The self-healing loop's dashboard panel.

    Operates on plain dicts (a :class:`repro.autopilot.Supervisor`'s
    ``status()`` and journal entries) so the monitoring layer stays free
    of autopilot imports.
    """
    mode = []
    if status.get("paused"):
        mode.append("PAUSED" + (f" ({status['pause_reason']})" if status.get("pause_reason") else ""))
    if status.get("dry_run"):
        mode.append("dry-run")
    lines = [
        "autopilot: "
        + f"state={status.get('state', '?')}"
        + (f"  [{' | '.join(mode)}]" if mode else ""),
        f"  model={status.get('model')}  "
        f"heals={status.get('heals_started', 0)}  "
        f"promotions={status.get('promotions', 0)}  "
        f"rejections={status.get('rejections', 0)}  "
        f"failures={status.get('failures', 0)}",
        f"  live_window={status.get('live_window', 0)}/"
        f"{status.get('min_live_window', '?')}  "
        f"cooldown={status.get('cooldown_remaining_s', 0.0):.1f}s  "
        f"journal={status.get('journal_entries', 0)} entries",
    ]
    if status.get("candidate_version"):
        lines.append(f"  shadowing candidate {status['candidate_version'][:12]}")
    recent = list(entries)[-max_entries:]
    if recent:
        lines.append("recent decisions:")
        for entry in recent:
            detail = entry.get("detail", {})
            trigger = detail.get("trigger") or {}
            summary = (
                detail.get("reason")
                or trigger.get("reason")
                or detail.get("version")
                or detail.get("error")
                or ""
            )
            lines.append(f"  #{entry.get('seq', '?')} {entry.get('kind')}: {summary}")
    return "\n".join(lines)


def render_spans(spans: Sequence, width: int = 40) -> str:
    """A flame-style text panel for one trace's spans.

    Accepts :class:`repro.obs.Span` objects or their ``to_dict()`` forms
    (so journal/JSONL data renders too).  Spans are laid out in start
    order, indented by parent depth, each with its duration and a bar
    showing where it sits inside the trace's total window.
    """
    items = []
    for span in spans:
        d = span if isinstance(span, dict) else span.to_dict()
        items.append(d)
    if not items:
        return "(no spans)"
    items.sort(key=lambda d: (d["start_s"], -(d["end_s"] - d["start_s"])))
    t0 = min(d["start_s"] for d in items)
    t1 = max(d["end_s"] for d in items)
    total = max(t1 - t0, 1e-12)
    by_id = {d["span_id"]: d for d in items}

    def depth(d: dict) -> int:
        level, seen = 0, set()
        parent = d.get("parent_id")
        while parent in by_id and parent not in seen:
            seen.add(parent)
            parent = by_id[parent].get("parent_id")
            level += 1
        return level

    trace_ids = {d["trace_id"] for d in items}
    header = (
        f"trace {next(iter(trace_ids))}" if len(trace_ids) == 1
        else f"{len(trace_ids)} traces"
    )
    lines = [f"{header}  ({total * 1000:.3f}ms, {len(items)} spans)"]
    name_width = max(
        len("  " * depth(d) + d["name"]) for d in items
    )
    for d in items:
        start = int((d["start_s"] - t0) / total * width)
        end = max(int((d["end_s"] - t0) / total * width), start + 1)
        bar = " " * start + "█" * (end - start)
        label = ("  " * depth(d) + d["name"]).ljust(name_width)
        duration_ms = (d["end_s"] - d["start_s"]) * 1000
        lines.append(f"  {label}  {duration_ms:9.3f}ms  |{bar.ljust(width)}|")
    return "\n".join(lines)


def render_source_accuracies(accuracies: dict[str, float]) -> str:
    """Learned source accuracies, best first — the weak-supervision view."""
    if not accuracies:
        return "(no sources)"
    items = sorted(accuracies.items(), key=lambda kv: -kv[1])
    return format_table(
        {
            "source": [k for k, _ in items],
            "learned_accuracy": [v for _, v in items],
        }
    )
