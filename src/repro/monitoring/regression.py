"""Quality-regression detection between model versions.

"We noticed quality regressions as deployment teams have an incomplete view
of the potential modeling tradeoffs" (§2.4).  Overton owns deployment, so
it can compare a candidate's fine-grained report against the incumbent's
before shipping and flag per-tag/per-task drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.training.reports import QualityReport


@dataclass
class Regression:
    """One detected quality drop."""

    tag: str
    task: str
    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    def to_dict(self) -> dict:
        return {
            "tag": self.tag,
            "task": self.task,
            "metric": self.metric,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
        }


@dataclass
class RegressionReport:
    """Per-(tag, task, metric) deltas between two quality reports.

    ``missing_after`` / ``missing_before`` list (tag, task) slices present
    in only one of the two reports — a freshly retrained model may gain or
    lose rare slices, and the comparison must record that rather than raise
    or silently block.  Missing slices never make the report blocking on
    their own; promotion gates decide how to treat lost coverage.
    """

    regressions: list[Regression] = field(default_factory=list)
    improvements: list[Regression] = field(default_factory=list)
    missing_after: list[tuple[str, str]] = field(default_factory=list)
    missing_before: list[tuple[str, str]] = field(default_factory=list)

    @property
    def blocking(self) -> bool:
        """True when any regression was found (deploy gate)."""
        return bool(self.regressions)

    def to_dict(self) -> dict:
        return {
            "regressions": [r.to_dict() for r in self.regressions],
            "improvements": [r.to_dict() for r in self.improvements],
            "missing_after": [list(pair) for pair in self.missing_after],
            "missing_before": [list(pair) for pair in self.missing_before],
            "blocking": self.blocking,
        }


def compare_reports(
    before: QualityReport,
    after: QualityReport,
    threshold: float = 0.01,
    min_examples: int = 5,
    metrics: tuple[str, ...] | None = None,
) -> RegressionReport:
    """Flag metric drops greater than ``threshold`` on shared (tag, task)s.

    Tags with fewer than ``min_examples`` evaluated examples are skipped —
    tiny slices produce noisy metrics that would block every deploy.
    ``metrics`` optionally restricts the gate to specific metric names
    (e.g. only accuracy), which teams use to keep noisy metrics advisory.

    Slices present in only one report are never compared (and never raise):
    they are collected into ``missing_after`` / ``missing_before`` so
    callers that care about lost coverage can gate on them explicitly.
    """
    report = RegressionReport()
    before_index = {(r.tag, r.task): r for r in before.rows}
    after_index = {(r.tag, r.task): r for r in after.rows}
    for key, row in after_index.items():
        if key not in before_index and row.n >= min_examples:
            report.missing_before.append(key)
    for row in before.rows:
        other = after_index.get((row.tag, row.task))
        if other is None:
            if row.n >= min_examples:
                report.missing_after.append((row.tag, row.task))
            continue
        if row.n < min_examples or other.n < min_examples:
            continue
        for metric, value in row.metrics.items():
            if metrics is not None and metric not in metrics:
                continue
            new_value = other.metrics.get(metric)
            if new_value is None:
                continue
            change = new_value - value
            entry = Regression(
                tag=row.tag,
                task=row.task,
                metric=metric,
                before=value,
                after=new_value,
            )
            if change < -threshold:
                report.regressions.append(entry)
            elif change > threshold:
                report.improvements.append(entry)
    return report
