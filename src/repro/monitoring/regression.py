"""Quality-regression detection between model versions.

"We noticed quality regressions as deployment teams have an incomplete view
of the potential modeling tradeoffs" (§2.4).  Overton owns deployment, so
it can compare a candidate's fine-grained report against the incumbent's
before shipping and flag per-tag/per-task drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.training.reports import QualityReport


@dataclass
class Regression:
    """One detected quality drop."""

    tag: str
    task: str
    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before


@dataclass
class RegressionReport:
    """Per-(tag, task, metric) deltas between two quality reports."""

    regressions: list[Regression] = field(default_factory=list)
    improvements: list[Regression] = field(default_factory=list)

    @property
    def blocking(self) -> bool:
        """True when any regression was found (deploy gate)."""
        return bool(self.regressions)


def compare_reports(
    before: QualityReport,
    after: QualityReport,
    threshold: float = 0.01,
    min_examples: int = 5,
    metrics: tuple[str, ...] | None = None,
) -> RegressionReport:
    """Flag metric drops greater than ``threshold`` on shared (tag, task)s.

    Tags with fewer than ``min_examples`` evaluated examples are skipped —
    tiny slices produce noisy metrics that would block every deploy.
    ``metrics`` optionally restricts the gate to specific metric names
    (e.g. only accuracy), which teams use to keep noisy metrics advisory.
    """
    report = RegressionReport()
    after_index = {(r.tag, r.task): r for r in after.rows}
    for row in before.rows:
        other = after_index.get((row.tag, row.task))
        if other is None or row.n < min_examples or other.n < min_examples:
            continue
        for metric, value in row.metrics.items():
            if metrics is not None and metric not in metrics:
                continue
            new_value = other.metrics.get(metric)
            if new_value is None:
                continue
            change = new_value - value
            entry = Regression(
                tag=row.tag,
                task=row.task,
                metric=metric,
                before=value,
                after=new_value,
            )
            if change < -threshold:
                report.regressions.append(entry)
            elif change > threshold:
                report.improvements.append(entry)
    return report
