"""Input-distribution drift detection.

The paper's opening problem: "a key task for supporting engineers is to
improve and maintain the quality in the face of changes to the input
distribution and new production features" (§1).  This module quantifies the
change between a reference window (what the deployed model trained on) and
a live window, over model-relevant views of the input: token distribution,
query length, and out-of-vocabulary rate.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.record import Record
from repro.data.vocab import Vocab


@dataclass(frozen=True)
class DriftReport:
    """Drift between a reference and a live window.

    The report carries the thresholds it was measured against
    (``js_threshold`` / ``oov_jump_threshold``) so policy code can configure
    them once, at detection time, and every downstream consumer of the
    report agrees on what "drifted" means.
    """

    token_js_divergence: float  # Jensen-Shannon divergence, in [0, ln 2]
    oov_rate_reference: float
    oov_rate_live: float
    mean_length_reference: float
    mean_length_live: float
    novel_token_fraction: float  # live tokens unseen in reference
    js_threshold: float = 0.1
    oov_jump_threshold: float = 0.05

    @property
    def oov_jump(self) -> float:
        """Live OOV rate minus reference OOV rate."""
        return self.oov_rate_live - self.oov_rate_reference

    def drifted(
        self,
        js_threshold: float | None = None,
        oov_threshold: float | None = None,
    ) -> bool:
        """Simple gate: distribution moved or OOV rate jumped.

        Explicit arguments override the thresholds stored on the report,
        preserving the older call-site-decides style.
        """
        js = self.js_threshold if js_threshold is None else js_threshold
        oov = self.oov_jump_threshold if oov_threshold is None else oov_threshold
        return self.token_js_divergence > js or self.oov_jump > oov

    def to_dict(self) -> dict:
        return {
            "token_js_divergence": self.token_js_divergence,
            "oov_rate_reference": self.oov_rate_reference,
            "oov_rate_live": self.oov_rate_live,
            "oov_jump": self.oov_jump,
            "mean_length_reference": self.mean_length_reference,
            "mean_length_live": self.mean_length_live,
            "novel_token_fraction": self.novel_token_fraction,
            "js_threshold": self.js_threshold,
            "oov_jump_threshold": self.oov_jump_threshold,
            "drifted": self.drifted(),
        }


def _token_counts(records: Sequence[Record], payload: str) -> Counter:
    counts: Counter = Counter()
    for record in records:
        counts.update(record.payloads.get(payload) or [])
    return counts


def js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence between two distributions."""
    p = p / max(p.sum(), 1e-12)
    q = q / max(q.sum(), 1e-12)
    m = 0.5 * (p + q)

    def kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float((a[mask] * np.log(a[mask] / b[mask])).sum())

    return 0.5 * kl(p, m) + 0.5 * kl(q, m)


def detect_drift(
    reference: Sequence[Record],
    live: Sequence[Record],
    vocab: Vocab,
    payload: str = "tokens",
    js_threshold: float = 0.1,
    oov_threshold: float = 0.05,
) -> DriftReport:
    """Compare a live window against the training-time reference.

    ``js_threshold`` / ``oov_threshold`` are recorded on the returned report
    and become the defaults for its :meth:`DriftReport.drifted` gate.
    """
    ref_counts = _token_counts(reference, payload)
    live_counts = _token_counts(live, payload)
    all_tokens = sorted(set(ref_counts) | set(live_counts))
    p = np.array([ref_counts.get(t, 0) for t in all_tokens], dtype=float)
    q = np.array([live_counts.get(t, 0) for t in all_tokens], dtype=float)
    divergence = js_divergence(p, q) if all_tokens else 0.0

    def oov_rate(counts: Counter) -> float:
        total = sum(counts.values())
        if total == 0:
            return 0.0
        unknown = sum(c for t, c in counts.items() if t not in vocab)
        return unknown / total

    def mean_length(records: Sequence[Record]) -> float:
        lengths = [len(r.payloads.get(payload) or []) for r in records]
        return float(np.mean(lengths)) if lengths else 0.0

    ref_total = sum(live_counts.values())
    novel = (
        sum(c for t, c in live_counts.items() if t not in ref_counts) / ref_total
        if ref_total
        else 0.0
    )
    return DriftReport(
        token_js_divergence=divergence,
        oov_rate_reference=oov_rate(ref_counts),
        oov_rate_live=oov_rate(live_counts),
        mean_length_reference=mean_length(reference),
        mean_length_live=mean_length(live),
        novel_token_fraction=novel,
        js_threshold=js_threshold,
        oov_jump_threshold=oov_threshold,
    )
