"""repro.faults: deterministic fault injection for robustness testing.

Broken operational configuration should be found by tooling, not in
production.  This package lets a soak or chaos test declare *exactly*
which infrastructure failures happen — replica forward exceptions,
injected latency, worker-process crashes, store IO errors — as a seeded,
JSON-round-trippable :class:`FaultPlan`, and replay them deterministically
through named :func:`fault_point` sites compiled into the serving, trial
execution, and deployment layers:

* ``"replica.serve"`` — fires per formed batch inside
  :meth:`repro.serve.Replica.serve`;
* ``"exec.trial"`` — fires per dispatched trial inside the executor's
  worker adapter;
* ``"store.fetch"`` — fires per artifact load inside
  :meth:`repro.deploy.ModelStore.fetch`.

While no plan is installed every ``hit()`` is a single attribute check —
the same off-by-default-cheap contract as ``repro.obs`` (gated by
``benchmarks/bench_faults_overhead.py``).  Install with :func:`install`
/ :func:`clear`, or scoped in tests with :func:`injected`; the live
:class:`FaultInjector` logs every firing decision (seeded, timestamp-free)
so a storm's outcome is a pure function of its plan.  See
``docs/robustness.md``.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultPoint,
    InjectedCrash,
    InjectedFault,
    active,
    clear,
    fault_point,
    injected,
    install,
)
from repro.faults.plan import KINDS, FaultPlan, FaultRule

__all__ = [
    "FaultPlan",
    "FaultRule",
    "KINDS",
    "FaultPoint",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "fault_point",
    "install",
    "clear",
    "active",
    "injected",
]
