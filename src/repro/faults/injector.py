"""The fault-point registry and the injector that arms it.

Call sites declare a named :class:`FaultPoint` once (module scope) and
``hit()`` it on the hot path.  While no plan is installed, ``hit()`` is a
single attribute check — the same off-by-default-cheap contract as
``repro.obs`` instruments — so production code carries its chaos hooks
for free.  :func:`install` arms the points a :class:`~repro.faults.plan.
FaultPlan` targets; every firing decision is drawn from a per-rule seeded
stream and appended to a decision log, so a storm replays byte-identically
given the same plan and the same per-point hit order.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.faults.plan import FaultPlan, FaultRule


class InjectedFault(Exception):
    """An injected infrastructure failure (deliberately *not* ReproError).

    Fault injection simulates the outside world breaking — a replica
    segfaulting, a network partition — so it must not be catchable as a
    deliberate library error; hardening code has to survive arbitrary
    exceptions, and tests that catch :class:`~repro.errors.ReproError`
    must not swallow it.
    """

    def __init__(self, message: str, point: str = "") -> None:
        super().__init__(message)
        self.point = point


class InjectedCrash(InjectedFault):
    """A simulated worker-process death mid-task (transient by nature)."""


class _RuleState:
    """One armed rule's mutable window counters and seeded stream."""

    __slots__ = ("rule", "rng", "hits", "fires")

    def __init__(self, rule: FaultRule, seed: int) -> None:
        self.rule = rule
        self.rng = random.Random(seed)
        self.hits = 0
        self.fires = 0


class FaultPoint:
    """One named injection site; ``hit()`` is a no-op branch when disarmed."""

    __slots__ = ("name", "armed", "_injector")

    def __init__(self, name: str) -> None:
        self.name = name
        self.armed = False
        self._injector: "FaultInjector | None" = None

    def hit(self, **labels) -> None:
        """Give any installed plan a chance to fire at this site.

        The disarmed path is one attribute check; the armed path consults
        the injector (seeded windows, label matching) and may sleep or
        raise on the caller's behalf.
        """
        if not self.armed:
            return
        injector = self._injector
        if injector is not None:
            injector._fire(self.name, labels)


class FaultInjector:
    """One installed plan's live state: rule windows and the decision log.

    The decision log records every firing as plain data (point, rule
    index, kind, the hit number it fired on) with no timestamps, so two
    runs of the same storm can be compared byte-for-byte.
    """

    def __init__(
        self, plan: FaultPlan, *, sleep: Callable[[float], None] = time.sleep
    ) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._log: list[dict] = []
        self._states: dict[str, list[_RuleState]] = {}
        for index, rule in enumerate(plan.rules):
            self._states.setdefault(rule.point, []).append(
                _RuleState(rule, _rule_seed(plan.seed, index, rule.point))
            )

    def decisions(self) -> list[dict]:
        """Every firing so far, in order, as timestamp-free plain dicts."""
        with self._lock:
            return [dict(entry) for entry in self._log]

    def fires(self, point: str | None = None) -> int:
        """Total firings, optionally restricted to one point."""
        with self._lock:
            return sum(
                1 for e in self._log if point is None or e["point"] == point
            )

    def _fire(self, point: str, labels: dict) -> None:
        """Decide and act for one hit; called from ``FaultPoint.hit``."""
        sleep_s = 0.0
        exc: Exception | None = None
        with self._lock:
            for state in self._states.get(point, ()):
                rule = state.rule
                if not rule.matches(labels):
                    continue
                state.hits += 1
                if state.hits <= rule.after:
                    continue
                if rule.max_fires is not None and state.fires >= rule.max_fires:
                    continue
                if rule.rate < 1.0 and state.rng.random() >= rule.rate:
                    continue
                state.fires += 1
                self._log.append(
                    {
                        "point": point,
                        "rule": self.plan.rules.index(rule),
                        "kind": rule.kind,
                        "hit": state.hits,
                        "fire": state.fires,
                    }
                )
                if rule.kind == "latency":
                    sleep_s += rule.latency_s
                elif exc is None:
                    message = f"{rule.message} [{point}]"
                    if rule.kind == "crash":
                        exc = InjectedCrash(message, point=point)
                    elif rule.kind == "io_error":
                        exc = OSError(message)
                    else:
                        exc = InjectedFault(message, point=point)
        # Act outside the lock: a sleeping or raising rule must not block
        # other points (or other threads hitting this one).
        if sleep_s > 0:
            self._sleep(sleep_s)
        if exc is not None:
            raise exc


def _rule_seed(plan_seed: int, index: int, point: str) -> int:
    """Stable per-rule stream seed: a hash of (plan seed, rule identity)."""
    digest = hashlib.sha256(f"{plan_seed}:{index}:{point}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


_POINTS: dict[str, FaultPoint] = {}
_POINTS_LOCK = threading.Lock()
_ACTIVE: FaultInjector | None = None


def fault_point(name: str) -> FaultPoint:
    """Get-or-create the named fault point (the ``registry.counter`` idiom).

    Call once at module or object scope and keep the reference; ``hit()``
    on the returned point is then a single branch while no plan targets it.
    """
    with _POINTS_LOCK:
        point = _POINTS.get(name)
        if point is None:
            point = _POINTS[name] = FaultPoint(name)
        return point


def install(
    plan: FaultPlan, *, sleep: Callable[[float], None] = time.sleep
) -> FaultInjector:
    """Arm ``plan``'s fault points; replaces any previously installed plan.

    ``sleep`` is injectable so latency rules can be tested without
    wall-clock waits.  Returns the live injector (decision log access).
    """
    global _ACTIVE
    injector = FaultInjector(plan, sleep=sleep)
    with _POINTS_LOCK:
        _ACTIVE = injector
        targeted = set(plan.points())
        for name in targeted:
            point = _POINTS.get(name)
            if point is None:
                point = _POINTS[name] = FaultPoint(name)
        for name, point in _POINTS.items():
            point._injector = injector if name in targeted else None
            point.armed = name in targeted
    return injector


def clear() -> None:
    """Disarm every fault point; hits go back to the one-branch no-op."""
    global _ACTIVE
    with _POINTS_LOCK:
        _ACTIVE = None
        for point in _POINTS.values():
            point.armed = False
            point._injector = None


def active() -> FaultInjector | None:
    """The currently installed injector, if any."""
    return _ACTIVE


@contextmanager
def injected(
    plan: FaultPlan, *, sleep: Callable[[float], None] = time.sleep
) -> Iterator[FaultInjector]:
    """Scoped :func:`install` for tests: arms on entry, clears on exit."""
    injector = install(plan, sleep=sleep)
    try:
        yield injector
    finally:
        clear()
