"""Declarative, seeded fault plans: what breaks, where, when, how often.

A :class:`FaultPlan` is the chaos-engineering analogue of a
:class:`~repro.autopilot.HealPolicy` or a
:class:`~repro.workloads.synth.WorkloadSpec`: plain frozen data that
round-trips through JSON, so a fault storm can be reviewed, versioned,
and replayed byte-identically.  Each :class:`FaultRule` targets one named
fault point (``"replica.serve"``, ``"exec.trial"``, ``"store.fetch"``)
and declares a fault kind, a deterministic arming window (``after`` /
``max_fires``), and an optional seeded firing probability (``rate``).

Plans do nothing on their own — :func:`repro.faults.install` arms the
named points, and instrumented call sites pay one boolean branch per hit
while no plan is installed (the ``repro.obs`` cost discipline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import FaultError

#: Fault kinds a rule may inject.
KINDS = ("error", "latency", "crash", "io_error")


@dataclass(frozen=True)
class FaultRule:
    """One fault declaration against one named fault point.

    ``kind`` selects the injected failure: ``"error"`` raises
    :class:`~repro.faults.InjectedFault` (an arbitrary infrastructure
    exception), ``"crash"`` raises :class:`~repro.faults.InjectedCrash`
    (models a worker process dying mid-task, transient by definition),
    ``"io_error"`` raises ``OSError`` (models storage-layer failures),
    and ``"latency"`` sleeps ``latency_s`` without failing.

    The firing window is deterministic: the first ``after`` matching hits
    pass untouched, then each hit fires with probability ``rate`` (drawn
    from the rule's own seeded stream, so the decision sequence is a pure
    function of plan seed + per-point hit order), and the rule disarms
    after ``max_fires`` firings.  ``match`` restricts the rule to hits
    whose labels carry the given values (e.g. ``{"tier": "small"}``).
    """

    point: str
    kind: str = "error"
    rate: float = 1.0
    after: int = 0
    max_fires: int | None = None
    latency_s: float = 0.0
    message: str = "injected fault"
    match: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.point or not isinstance(self.point, str):
            raise FaultError("a fault rule needs a non-empty point name")
        if self.kind not in KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"rate must be in [0, 1], got {self.rate}")
        if self.after < 0:
            raise FaultError(f"after must be >= 0, got {self.after}")
        if self.max_fires is not None and self.max_fires < 1:
            raise FaultError(f"max_fires must be >= 1, got {self.max_fires}")
        if self.latency_s < 0:
            raise FaultError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.kind == "latency" and self.latency_s == 0:
            raise FaultError("a latency rule needs latency_s > 0")

    def matches(self, labels: dict) -> bool:
        """Whether a hit carrying ``labels`` is eligible for this rule."""
        return all(str(labels.get(key)) == value for key, value in self.match)

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "rate": self.rate,
            "after": self.after,
            "max_fires": self.max_fires,
            "latency_s": self.latency_s,
            "message": self.message,
            "match": {key: value for key, value in self.match},
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "FaultRule":
        spec = dict(spec)
        match = spec.get("match") or {}
        if not isinstance(match, dict):
            raise FaultError("match must be a {label: value} object")
        spec["match"] = tuple(
            sorted((str(key), str(value)) for key, value in match.items())
        )
        try:
            return cls(**spec)
        except TypeError as exc:
            raise FaultError(f"bad fault rule {spec!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault rules — one whole storm, as data."""

    name: str = "chaos"
    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultError("a fault plan needs a name")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultError(f"seed must be an int, got {self.seed!r}")
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultError(f"rules must be FaultRule instances, got {rule!r}")

    def points(self) -> list[str]:
        """Distinct targeted fault-point names, in first-seen order."""
        seen: list[str] = []
        for rule in self.rules:
            if rule.point not in seen:
                seen.append(rule.point)
        return seen

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, spec: dict) -> "FaultPlan":
        spec = dict(spec)
        spec["rules"] = tuple(
            FaultRule.from_dict(rule) for rule in spec.get("rules", [])
        )
        try:
            return cls(**spec)
        except TypeError as exc:
            raise FaultError(f"bad fault plan: {exc}") from exc

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--fault-plan`` CLI path)."""
        try:
            spec = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultError(f"cannot read fault plan {path}: {exc}") from exc
        if not isinstance(spec, dict):
            raise FaultError("fault plan file must hold a JSON object")
        return cls.from_dict(spec)
