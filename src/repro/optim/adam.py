"""Adam and AdamW optimizers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer
from repro.tensor import SparseRowGrad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    With ``decoupled_weight_decay=True`` this is AdamW: decay is applied to
    the weights directly instead of the gradient.

    Sparse gradients (embedding rows) update the first/second-moment
    estimates row-wise — the moment decay is applied in place to the whole
    table (as Adam's math requires) but the gradient itself never
    materializes densely.  Coupled weight decay mixes ``p.data`` into the
    gradient, which is inherently dense, so that configuration falls back
    to :meth:`~repro.tensor.SparseRowGrad.to_dense`.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled_weight_decay: bool = False,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled_weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            m, v = self._realigned_state(i, p, self._m, self._v)
            grad = p.grad
            if isinstance(grad, SparseRowGrad):
                if self.weight_decay and not self.decoupled:
                    grad = grad.to_dense()
                else:
                    sparse = grad.coalesce()
                    m *= self.beta1
                    m[sparse.indices] += (1.0 - self.beta1) * sparse.values
                    v *= self.beta2
                    v[sparse.indices] += (1.0 - self.beta2) * sparse.values**2
                    update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
                    if self.weight_decay and self.decoupled:
                        update = update + self.weight_decay * p.data
                    p.data = p.data - self.lr * update
                    continue
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * p.data
            p.data = p.data - self.lr * update


def AdamW(
    params: list[Parameter],
    lr: float = 1e-3,
    betas: tuple[float, float] = (0.9, 0.999),
    eps: float = 1e-8,
    weight_decay: float = 0.01,
) -> Adam:
    """AdamW constructor: Adam with decoupled weight decay."""
    return Adam(
        params,
        lr=lr,
        betas=betas,
        eps=eps,
        weight_decay=weight_decay,
        decoupled_weight_decay=True,
    )
