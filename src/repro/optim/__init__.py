"""Optimizers and learning-rate schedules."""

from repro.optim.optimizer import Optimizer, clip_grad_norm, grad_norm
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.schedule import ConstantSchedule, Schedule, StepDecay, WarmupCosine

__all__ = [
    "Optimizer",
    "clip_grad_norm",
    "grad_norm",
    "SGD",
    "Adam",
    "AdamW",
    "Schedule",
    "ConstantSchedule",
    "StepDecay",
    "WarmupCosine",
]
