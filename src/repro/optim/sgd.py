"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer
from repro.tensor import SparseRowGrad


class SGD(Optimizer):
    """SGD with classical momentum and optional L2 weight decay.

    Sparse gradients (embedding rows) are applied row-wise: without
    momentum only the touched rows are updated; with momentum the velocity
    decay is in place and only the touched rows receive new gradient, so no
    dense gradient is ever materialized.  Weight decay mixes ``p.data`` into
    the gradient and is inherently dense, so it falls back to
    :meth:`~repro.tensor.SparseRowGrad.to_dense`.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            (v,) = self._realigned_state(i, p, self._velocity)
            grad = p.grad
            if isinstance(grad, SparseRowGrad):
                if self.weight_decay:
                    grad = grad.to_dense()
                elif self.momentum:
                    sparse = grad.coalesce()
                    v *= self.momentum
                    v[sparse.indices] += sparse.values
                    p.data -= self.lr * v
                    continue
                else:
                    sparse = grad.coalesce()
                    p.data[sparse.indices] -= self.lr * sparse.values
                    continue
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data = p.data - self.lr * update
