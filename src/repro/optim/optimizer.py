"""Optimizer base class and gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for training diagnostics).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
