"""Optimizer base class and gradient clipping.

Both are sparse-gradient aware: embedding lookups leave a
:class:`~repro.tensor.SparseRowGrad` on their table parameter, and the norm
/ scale / zeroing logic here treats it as the dense gradient it stands in
for — without ever materializing that dense array.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.tensor import SparseRowGrad


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def _realigned_state(self, i: int, p: Parameter, *stores: list) -> tuple:
        """Per-parameter state buffers, re-cast if the parameter was.

        ``Module.to_dtype`` can change a parameter's dtype after the
        optimizer allocated its moment/velocity buffers; a float64 buffer
        would then promote every update and silently revert the cast on
        the first ``step()``.  Each ``stores[k][i]`` is cast (in the
        store, so the fix sticks) to ``p``'s dtype when they disagree.
        """
        out = []
        for store in stores:
            buf = store[i]
            if buf.dtype != p.data.dtype:
                buf = store[i] = buf.astype(p.data.dtype)
            out.append(buf)
        return tuple(out)

    def zero_grad(self) -> None:
        """Clear gradients for the next step, keeping dense buffers parked.

        ``.grad`` reads ``None`` afterwards (``step()`` relies on ``None``
        to skip parameters whose loss terms were not computed), but each
        dense gradient's allocation is parked on its parameter so the
        following ``backward()`` writes into the same array instead of
        allocating a fresh one per step.  Sparse gradients are dropped
        (their shape changes with every batch's indices).
        """
        for p in self.params:
            p.zero_grad(set_to_none=False)


def grad_norm(params: list[Parameter]) -> float:
    """The global L2 norm of all current gradients, without modifying them.

    Sparse gradients are coalesced (in place, on the parameter) first so
    duplicate-row contributions are counted once, exactly as the
    equivalent dense gradient would be.  Parameters without a gradient
    are skipped.
    """
    total = 0.0
    for p in params:
        grad = p.grad
        if grad is None:
            continue
        if isinstance(grad, SparseRowGrad):
            p.grad = grad.coalesce()
            total += p.grad.norm_sq()
        else:
            total += float((grad**2).sum())
    return float(np.sqrt(total))


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for training diagnostics).
    Sparse gradients are coalesced first so duplicate-row contributions are
    counted once, exactly as the equivalent dense gradient would be.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = grad_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if isinstance(p.grad, SparseRowGrad):
                p.grad = p.grad * scale
            elif p.grad is not None:
                p.grad *= scale
    return norm
