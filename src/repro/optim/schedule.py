"""Learning-rate schedules.

A schedule wraps an optimizer and mutates its ``lr`` each time ``step()`` is
called; training loops call the schedule once per optimizer step.
"""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer


class Schedule:
    """Base schedule."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self._step = 0

    def step(self) -> None:
        self._step += 1
        self.optimizer.lr = self.lr_at(self._step)

    def lr_at(self, step: int) -> float:
        raise NotImplementedError


class ConstantSchedule(Schedule):
    """No change; exists so training code can always hold a schedule."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class StepDecay(Schedule):
    """Multiply lr by ``gamma`` every ``period`` steps."""

    def __init__(self, optimizer: Optimizer, period: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.period)


class WarmupCosine(Schedule):
    """Linear warmup then cosine decay to ``min_lr`` over ``total_steps``."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError(
                f"total_steps ({total_steps}) must exceed warmup_steps ({warmup_steps})"
            )
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if self.warmup_steps > 0 and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
