"""Tests for the search-space coverage report."""

from repro.core import TuningSpec
from repro.exec import TrialExecutor, coverage_report
from repro.tuning import Trial, grid_search, random_search
from repro.tuning.search import _evaluate_all


def spec() -> TuningSpec:
    return TuningSpec(
        payload_options={"tokens": {"encoder": ["bow", "cnn", "lstm"], "size": [8, 16]}},
        trainer_options={"lr": [0.01, 0.1]},
    )


def score(config) -> float:
    p = config.for_payload("tokens")
    bonus = {"bow": 0.0, "cnn": 0.5, "lstm": 1.0}[p.encoder]
    return bonus + p.size / 100.0 + config.trainer.lr


class TestFullCoverage:
    def test_grid_covers_everything(self):
        result = grid_search(spec(), score)
        report = coverage_report(spec(), result.trials)
        assert report.fraction_tried() == 1.0
        assert report.untried() == []
        assert report.total_candidates == 12
        assert report.evaluated_configs == 12
        assert report.total_trials == 12

    def test_best_per_block_matches_scores(self):
        result = grid_search(spec(), score)
        best = coverage_report(spec(), result.trials).best_per_block()
        assert best["tokens.encoder"] == "lstm"
        assert best["tokens.size"] == 16
        assert best["trainer.lr"] == 0.1

    def test_cell_counts(self):
        result = grid_search(spec(), score)
        report = coverage_report(spec(), result.trials)
        by_cell = {(o.block, o.value): o.trials for o in report.options}
        # Each encoder appears in 2 sizes x 2 lrs = 4 of the 12 candidates.
        assert by_cell[("tokens.encoder", "bow")] == 4
        assert by_cell[("tokens.size", 8)] == 6
        assert by_cell[("trainer.lr", 0.1)] == 6


class TestPartialCoverage:
    def test_random_subset_reports_untried_values(self):
        result = random_search(spec(), score, num_trials=2, seed=0)
        report = coverage_report(spec(), result.trials)
        assert report.evaluated_configs == 2
        assert report.fraction_tried() < 1.0
        assert len(report.untried()) >= 1
        tried_blocks = {o.block for o in report.options if o.trials}
        assert tried_blocks  # something was exercised

    def test_handmade_trials(self):
        candidates = spec().expand()
        trials = [Trial(config=candidates[0], score=0.25)]
        report = coverage_report(spec(), trials)
        assert report.total_trials == 1
        tried = [(o.block, o.value) for o in report.options if o.trials]
        p = candidates[0].for_payload("tokens")
        assert ("tokens.encoder", p.encoder) in tried
        assert ("tokens.size", p.size) in tried


class TestRendering:
    def test_render_mentions_blocks_and_summary(self):
        result = grid_search(spec(), score)
        text = coverage_report(spec(), result.trials).render()
        assert "tokens.encoder" in text
        assert "trainer.lr" in text
        assert "coverage: 100%" in text

    def test_render_lists_untried_cells(self):
        result = random_search(spec(), score, num_trials=2, seed=0)
        report = coverage_report(spec(), result.trials)
        text = report.render()
        assert "never tried:" in text

    def test_to_dict_round_trips_through_json(self):
        import json

        result = grid_search(spec(), score)
        payload = coverage_report(spec(), result.trials).to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_report_is_stamped_with_the_space_fingerprint(self):
        result = grid_search(spec(), score)
        report = coverage_report(spec(), result.trials)
        assert report.spec_fingerprint == spec().fingerprint()
        assert report.spec_fingerprint in report.render()


class TestHalvingCoverage:
    def test_rewritten_epochs_do_not_read_as_untried(self):
        from repro.tuning import successive_halving

        halving_spec = TuningSpec(
            payload_options={"tokens": {"encoder": ["bow", "lstm"]}},
            trainer_options={"epochs": [10]},  # halving rewrites this axis
        )
        result = successive_halving(
            halving_spec,
            lambda c, e: 1.0 if c.for_payload("tokens").encoder == "lstm" else 0.0,
            min_epochs=1,
            max_epochs=4,
        )
        report = coverage_report(halving_spec, result.trials)
        assert ("trainer.epochs", 10) not in [
            (o.block, o.value) for o in report.options
        ]
        assert report.untried() == []
        assert report.fraction_tried() == 1.0

    def test_single_rung_halving_also_excludes_epochs(self):
        from repro.tuning import successive_halving

        halving_spec = TuningSpec(
            payload_options={"tokens": {"encoder": ["bow"]}},  # one candidate
            trainer_options={"epochs": [10]},
        )
        result = successive_halving(
            halving_spec, lambda c, e: 1.0, min_epochs=2, max_epochs=8
        )
        assert all(t.rung == 0 for t in result.trials)  # ended inside rung 0
        report = coverage_report(halving_spec, result.trials)
        assert report.untried() == []


class TestWithExecutor:
    def test_coverage_from_parallel_trials(self):
        from tests.exec.test_executor import score_trial

        executor = TrialExecutor(score_trial, workers=2)
        result = _evaluate_all(spec().expand(), None, executor)
        report = coverage_report(spec(), result.trials)
        assert report.fraction_tried() == 1.0
