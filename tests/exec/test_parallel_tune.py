"""End-to-end executor tests against the real tuning path.

The contract under test: ``workers=1`` (no cache) is the exact legacy
serial loop; the executor path — any worker count, cached or not —
produces the same trials, the same scores, and the same best model,
because training is deterministic given (config, data).
"""

import numpy as np
import pytest

from repro.api import Application
from repro.core import TuningSpec
from repro.tuning import successive_halving

from tests.fixtures import mini_dataset


@pytest.fixture(scope="module")
def dataset():
    return mini_dataset(n=40, seed=0)


def small_spec() -> TuningSpec:
    return TuningSpec(
        payload_options={"tokens": {"encoder": ["bow", "cnn"]}},
        trainer_options={"epochs": [2]},
    )


def app_for(dataset) -> Application:
    return Application(dataset.schema, name="tune-test")


def search_signature(result):
    return (
        [round(t.score, 12) for t in result.trials],
        [t.config.to_json() for t in result.trials],
        result.best_config.to_json(),
        round(result.best_score, 12),
    )


class TestSerialParity:
    def test_workers_1_is_bit_identical_to_legacy(self, dataset, tmp_path):
        app = app_for(dataset)
        legacy = app.tune(dataset, small_spec())  # legacy serial path
        executor = app.tuning_executor(dataset, workers=1, cache_dir=tmp_path)
        routed = app.tune(dataset, small_spec(), executor=executor)
        assert search_signature(routed.search) == search_signature(legacy.search)
        # The re-trained winner is the same model, parameter for parameter.
        for ours, theirs in zip(
            routed.trained.model.parameters(), legacy.trained.model.parameters()
        ):
            assert np.array_equal(ours.data, theirs.data)

    def test_parallel_workers_match_serial_scores(self, dataset):
        app = app_for(dataset)
        legacy = app.tune(dataset, small_spec())
        parallel = app.tune(dataset, small_spec(), workers=2)
        assert search_signature(parallel.search) == search_signature(legacy.search)


class TestResumeFromCache:
    def test_second_run_is_all_hits(self, dataset, tmp_path):
        app = app_for(dataset)
        first = app.tuning_executor(dataset, workers=1, cache_dir=tmp_path)
        run_a = app.tune(dataset, small_spec(), executor=first)
        assert first.stats.cache_hits == 0
        assert first.stats.executed == run_a.search.num_trials

        second = app.tuning_executor(dataset, workers=1, cache_dir=tmp_path)
        run_b = app.tune(dataset, small_spec(), executor=second)
        assert second.stats.cache_hits == run_b.search.num_trials
        assert second.stats.executed == 0
        assert search_signature(run_b.search) == search_signature(run_a.search)

    def test_different_method_does_not_share_entries(self, dataset, tmp_path):
        """The supervision method changes trial outcomes, so it keys the cache."""
        app = app_for(dataset)
        first = app.tuning_executor(
            dataset, workers=1, cache_dir=tmp_path, method="label_model"
        )
        app.tune(dataset, small_spec(), executor=first, method="label_model")

        other = app.tuning_executor(
            dataset, workers=1, cache_dir=tmp_path, method="majority"
        )
        app.tune(dataset, small_spec(), executor=other, method="majority")
        assert other.stats.cache_hits == 0

    def test_inline_trials_leave_ambient_rng_untouched(self, dataset, tmp_path):
        """workers=1 trials run in-process and must not reseed np.random."""
        np.random.seed(12345)
        expected = np.random.RandomState(12345).random(4)  # what the stream holds
        app = app_for(dataset)
        executor = app.tuning_executor(dataset, workers=1, cache_dir=tmp_path)
        app.tune(dataset, small_spec(), executor=executor)
        assert np.allclose(np.random.random(4), expected)

    def test_different_dataset_does_not_share_entries(self, dataset, tmp_path):
        app = app_for(dataset)
        executor = app.tuning_executor(dataset, workers=1, cache_dir=tmp_path)
        app.tune(dataset, small_spec(), executor=executor)

        other = mini_dataset(n=44, seed=3)
        other_app = app_for(other)
        fresh = other_app.tuning_executor(other, workers=1, cache_dir=tmp_path)
        other_app.tune(other, small_spec(), executor=fresh)
        assert fresh.stats.cache_hits == 0


class TestHalvingUnderParallelism:
    def test_rung_ordering_matches_serial(self, dataset):
        app = app_for(dataset)
        serial = app.tune(dataset, small_spec(), strategy="halving")
        parallel = app.tune(dataset, small_spec(), strategy="halving", workers=2)
        assert [t.rung for t in parallel.search.trials] == [
            t.rung for t in serial.search.trials
        ]
        assert search_signature(parallel.search) == search_signature(serial.search)
        # Rungs are recorded in nondecreasing order: a rung is a barrier.
        rungs = [t.rung for t in parallel.search.trials]
        assert rungs == sorted(rungs)

    def test_rung_population_shrinks_by_reduction(self):
        spec = TuningSpec(
            payload_options={"tokens": {"encoder": ["bow", "lstm"], "size": [8, 16]}}
        )
        from tests.exec.test_executor import score_trial
        from repro.exec import TrialExecutor

        executor = TrialExecutor(score_trial, workers=2)
        result = successive_halving(
            spec, min_epochs=1, max_epochs=4, reduction=2, executor=executor
        )
        budgets = [t.config.trainer.epochs for t in result.trials]
        assert budgets.count(1) == 4
        assert budgets.count(2) == 2
        assert budgets.count(4) == 1
        assert result.best_config.for_payload("tokens").encoder == "lstm"


class TestHalvingBestModel:
    def test_serial_halving_trained_matches_best_config(self, dataset):
        """run.trained must be the recorded winner, not a luckier early rung."""
        app = app_for(dataset)
        run = app.tune(dataset, small_spec(), strategy="halving")
        refit = app.fit(dataset, run.search.best_config).trained
        for ours, theirs in zip(
            run.trained.model.parameters(), refit.model.parameters()
        ):
            assert np.array_equal(ours.data, theirs.data)
        assert run.trained.config == run.search.best_config


class TestSlicePredicates:
    def test_lambda_predicates_survive_the_fanout(self, dataset):
        """Unpicklable predicates are fine: membership ships as tags."""
        from repro.slicing import SliceSet, SliceSpec

        def build(ds):
            return Application(
                ds.schema,
                name="sliced",
                slices=SliceSet(
                    [
                        SliceSpec(
                            name="short",
                            predicate=lambda r: len(r.payloads.get("tokens", [])) <= 3,
                        )
                    ]
                ),
            )

        serial = build(dataset).tune(dataset, small_spec())
        parallel = build(dataset).tune(dataset, small_spec(), workers=2)
        assert search_signature(parallel.search) == search_signature(serial.search)


class TestParallelReport:
    def test_rows_match_serial(self, dataset):
        app = app_for(dataset)
        run = app.fit(dataset)
        serial = run.report(dataset)
        parallel = run.report(dataset, workers=2)
        assert [
            (r.tag, r.task, r.n, r.metrics) for r in serial.rows
        ] == [(r.tag, r.task, r.n, r.metrics) for r in parallel.rows]

    def test_tag_subset(self, dataset):
        app = app_for(dataset)
        run = app.fit(dataset)
        serial = run.report(dataset, tags=["dev", "test"])
        parallel = run.report(dataset, tags=["dev", "test"], workers=2)
        assert [r.tag for r in parallel.rows] == [r.tag for r in serial.rows]
        assert [r.metrics for r in parallel.rows] == [r.metrics for r in serial.rows]


class TestValidation:
    def test_workers_below_1_rejected(self, dataset):
        app = app_for(dataset)
        from repro.errors import TrainingError

        with pytest.raises(TrainingError):
            app.tune(dataset, small_spec(), workers=0)

    def test_unknown_strategy_rejected_on_executor_path(self, dataset):
        app = app_for(dataset)
        from repro.errors import TrainingError

        with pytest.raises(TrainingError):
            app.tune(dataset, small_spec(), strategy="annealing", workers=2)

    def test_explicit_executor_rejects_conflicting_workers(self, dataset, tmp_path):
        app = app_for(dataset)
        from repro.errors import TrainingError

        executor = app.tuning_executor(dataset, workers=1, cache_dir=tmp_path)
        with pytest.raises(TrainingError, match="not both"):
            app.tune(dataset, small_spec(), workers=2, executor=executor)
        with pytest.raises(TrainingError, match="not both"):
            app.tune(
                dataset, small_spec(), cache_dir=tmp_path, executor=executor
            )

    def test_explicit_executor_rejects_a_different_dataset(self, dataset, tmp_path):
        """Scores from one dataset must never describe a refit on another."""
        app = app_for(dataset)
        from repro.errors import TrainingError

        executor = app.tuning_executor(dataset, workers=1, cache_dir=tmp_path)
        other = mini_dataset(n=44, seed=3)
        with pytest.raises(TrainingError, match="different dataset"):
            app.tune(other, small_spec(), executor=executor)

    def test_explicit_executor_rejects_conflicting_method(self, dataset, tmp_path):
        """The refit must train under the same supervision the trials scored."""
        app = app_for(dataset)
        from repro.errors import TrainingError

        executor = app.tuning_executor(
            dataset, workers=1, cache_dir=tmp_path, method="label_model"
        )
        with pytest.raises(TrainingError, match="conflicts"):
            app.tune(dataset, small_spec(), method="majority", executor=executor)

    def test_explicit_executor_rejects_different_supervision_policy(
        self, dataset, tmp_path
    ):
        from repro.api import SupervisionPolicy
        from repro.errors import TrainingError

        builder = Application(dataset.schema, name="tune-test")
        executor = builder.tuning_executor(dataset, workers=1, cache_dir=tmp_path)
        other = Application(
            dataset.schema,
            name="tune-test",
            supervision=SupervisionPolicy(gold_source="expert"),
        )
        with pytest.raises(TrainingError, match="supervision policy"):
            other.tune(dataset, small_spec(), executor=executor)
