"""Tests for the parallel trial executor: ordering, seeds, failures."""

import time

import pytest

from repro.core import ModelConfig, PayloadConfig, TuningSpec
from repro.errors import ExecutionError, TuningError
from repro.exec import TrialExecutor, trial_seed
from repro.tuning import grid_search


def spec_4() -> TuningSpec:
    return TuningSpec(
        payload_options={"tokens": {"encoder": ["bow", "lstm"], "size": [8, 16]}}
    )


# Module-level so the pool can import them in worker processes.
def score_trial(context, config, seed, budget):
    """Deterministic: prefers lstm and larger size."""
    p = config.for_payload("tokens")
    return (1.0 if p.encoder == "lstm" else 0.0) + p.size / 100.0


def slow_first_trial(context, config, seed, budget):
    """First candidates sleep longest: finish order inverts dispatch order."""
    p = config.for_payload("tokens")
    time.sleep(0.05 if p.encoder == "bow" else 0.0)
    return score_trial(context, config, seed, budget)


def failing_trial(context, config, seed, budget):
    if config.for_payload("tokens").encoder == "lstm":
        raise ValueError("lstm exploded")
    return 0.5


def echo_seed(context, config, seed, budget):
    return float(seed)


def echo_task(context, payload):
    return payload * 2


def fail_on_odd(context, payload):
    if payload % 2:
        raise RuntimeError(f"odd payload {payload}")
    return payload


class TestOrdering:
    def test_results_in_dispatch_order_despite_finish_order(self):
        executor = TrialExecutor(slow_first_trial, workers=2)
        configs = spec_4().expand()
        outcomes = executor.evaluate(configs)
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.config for o in outcomes] == configs
        expected = [score_trial(None, c, 0, None) for c in configs]
        assert [o.score for o in outcomes] == expected

    def test_serial_and_parallel_agree(self):
        configs = spec_4().expand()
        serial = TrialExecutor(score_trial, workers=1).evaluate(configs)
        parallel = TrialExecutor(score_trial, workers=3).evaluate(configs)
        assert [o.score for o in serial] == [o.score for o in parallel]

    def test_grid_search_via_executor_matches_trial_fn(self):
        direct = grid_search(spec_4(), lambda c: score_trial(None, c, 0, None))
        pooled = grid_search(spec_4(), executor=TrialExecutor(score_trial, workers=2))
        assert [t.score for t in direct.trials] == [t.score for t in pooled.trials]
        assert direct.best_config == pooled.best_config


class TestSeeds:
    def test_trial_seed_is_stable_content_hash(self):
        configs = spec_4().expand()
        assert trial_seed(0, configs[0]) == trial_seed(0, configs[0])
        assert trial_seed(0, configs[0]) != trial_seed(0, configs[1])
        assert trial_seed(0, configs[0]) != trial_seed(1, configs[0])
        assert trial_seed(0, configs[0], budget=2) != trial_seed(
            0, configs[0], budget=4
        )

    def test_outcomes_carry_deterministic_seeds(self):
        configs = spec_4().expand()
        first = TrialExecutor(echo_seed, workers=1, base_seed=7).evaluate(configs)
        second = TrialExecutor(echo_seed, workers=2, base_seed=7).evaluate(configs)
        assert [o.seed for o in first] == [o.seed for o in second]
        # The worker really received the seed the outcome reports.
        assert [o.score for o in first] == [float(o.seed) for o in first]

    def test_same_config_always_gets_the_same_seed(self):
        """Seeds are content-derived, so cached scores match their seeds."""
        executor = TrialExecutor(echo_seed, workers=1)
        configs = spec_4().expand()[:2]
        first = executor.evaluate(configs)
        second = executor.evaluate(configs)
        assert [o.seed for o in first] == [o.seed for o in second]
        # Re-dispatching at a different position changes nothing either.
        shuffled = executor.evaluate(list(reversed(configs)))
        assert [o.seed for o in shuffled] == [o.seed for o in reversed(second)]


class TestFailures:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_failing_trial_surfaces_tuning_error_with_config(self, workers):
        executor = TrialExecutor(failing_trial, workers=workers)
        with pytest.raises(TuningError) as excinfo:
            grid_search(spec_4(), executor=executor)
        message = str(excinfo.value)
        assert "lstm exploded" in message
        assert '"lstm"' in message  # the failing config is named

    def test_run_tasks_reports_every_failure(self):
        executor = TrialExecutor(workers=2)
        with pytest.raises(ExecutionError) as excinfo:
            executor.run_tasks(fail_on_odd, [0, 1, 2, 3])
        assert [i for i, _ in excinfo.value.failures] == [1, 3]
        assert "odd payload 1" in excinfo.value.failures[0][1]


class TestExecutorBasics:
    def test_invalid_workers(self):
        with pytest.raises(TuningError):
            TrialExecutor(score_trial, workers=0)

    def test_evaluate_without_trial_fn(self):
        with pytest.raises(TuningError):
            TrialExecutor(workers=1).evaluate(spec_4().expand())

    def test_workers_1_supports_closures(self):
        calls = []

        def closure_trial(context, config, seed, budget):
            calls.append(config)
            return 1.0

        executor = TrialExecutor(closure_trial, workers=1)
        outcomes = executor.evaluate(spec_4().expand())
        assert len(calls) == 4
        assert all(o.score == 1.0 for o in outcomes)

    def test_run_tasks_generic_ordered(self):
        executor = TrialExecutor(workers=2)
        assert executor.run_tasks(echo_task, [3, 1, 4, 1, 5]) == [6, 2, 8, 2, 10]
        assert executor.run_tasks(echo_task, []) == []

    def test_stats_track_work(self):
        executor = TrialExecutor(score_trial, workers=1)
        executor.evaluate(spec_4().expand())
        assert executor.stats.dispatched == 4
        assert executor.stats.executed == 4
        assert executor.stats.cache_hits == 0

    def test_pool_is_reused_across_evaluate_calls(self):
        executor = TrialExecutor(score_trial, workers=2)
        configs = spec_4().expand()
        executor.evaluate(configs)
        first_pool = executor._pool
        assert first_pool is not None
        executor.evaluate(configs, budget=2)  # e.g. the next halving rung
        assert executor._pool is first_pool
        executor.close()
        assert executor._pool is None

    def test_close_is_idempotent_and_context_manager_closes(self):
        with TrialExecutor(score_trial, workers=2) as executor:
            executor.evaluate(spec_4().expand())
            assert executor._pool is not None
        assert executor._pool is None
        executor.close()  # no-op

    def test_empty_candidates_raise(self):
        from repro.tuning.search import _evaluate_all

        with pytest.raises(TuningError):
            _evaluate_all([], None, TrialExecutor(score_trial, workers=1))


class TestObservability:
    def test_counters_mirror_executor_stats(self, tmp_path):
        import repro.obs as obs
        from repro.exec import TrialCache

        configs = spec_4().expand()
        with obs.activated():
            registry = obs.get_registry()
            cache = TrialCache(tmp_path / "cache")
            executor = TrialExecutor(score_trial, workers=1, cache=cache)
            executor.evaluate(configs)
            assert registry.get("repro_trials_started_total").value() == 4.0
            assert registry.get("repro_trials_cached_total").value() == 0.0
            # A second pass answers everything from the cache.
            executor.evaluate(configs)
            assert registry.get("repro_trials_started_total").value() == 8.0
            assert registry.get("repro_trials_cached_total").value() == 4.0
            assert executor.stats.cache_hits == 4
            util = registry.get("repro_exec_worker_utilization").value()
            assert 0.0 <= util <= 1.0
            executor.close()

    def test_failed_trials_are_counted(self):
        import repro.obs as obs

        with obs.activated():
            executor = TrialExecutor(failing_trial, workers=1)
            with pytest.raises(TuningError):
                executor.evaluate(spec_4().expand())
            assert obs.get_registry().get(
                "repro_trials_failed_total"
            ).value() >= 1.0
            executor.close()

    def test_evaluate_is_traced(self):
        import repro.obs as obs

        with obs.activated():
            executor = TrialExecutor(score_trial, workers=1)
            executor.evaluate(spec_4().expand())
            (span,) = [
                s for s in obs.get_tracer().ring.spans()
                if s.name == "exec.evaluate"
            ]
            assert span.attrs == {"trials": 4, "misses": 4}
            executor.close()
