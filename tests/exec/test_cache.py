"""Tests for the disk-backed trial cache and its stable keys."""

import json

import pytest

from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.exec import TrialCache, TrialExecutor, trial_key


def config(encoder: str = "bow", size: int = 8) -> ModelConfig:
    return ModelConfig(payloads={"tokens": PayloadConfig(encoder=encoder, size=size)})


class TestTrialKey:
    def test_stable_across_processes_and_runs(self):
        # Pure content hash: same inputs, same key, every time.
        assert trial_key("ns", config()) == trial_key("ns", config())

    def test_sensitive_to_config(self):
        assert trial_key("ns", config("bow")) != trial_key("ns", config("cnn"))
        assert trial_key("ns", config(size=8)) != trial_key("ns", config(size=16))

    def test_sensitive_to_namespace_and_budget(self):
        assert trial_key("a", config()) != trial_key("b", config())
        assert trial_key("ns", config(), budget=2) != trial_key("ns", config(), budget=4)
        assert trial_key("ns", config(), budget=None) != trial_key("ns", config(), budget=2)

    def test_trainer_options_participate(self):
        small = ModelConfig(trainer=TrainerConfig(lr=0.01))
        large = ModelConfig(trainer=TrainerConfig(lr=0.1))
        assert trial_key("ns", small) != trial_key("ns", large)


class TestTrialCache:
    def test_round_trip(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        key = trial_key("ns", config())
        cache.put(key, 0.75, seed=42, duration_s=1.5)
        entry = cache.get(key)
        assert entry is not None
        assert entry.score == 0.75
        assert entry.seed == 42
        assert key in cache
        assert len(cache) == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        key = trial_key("ns", config())
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_entry_with_wrong_key_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        key = trial_key("ns", config())
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"key": "other", "score": 1.0})
        )
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = TrialCache(tmp_path)
        cache.put("k1", 1.0)
        cache.put("k2", 2.0)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCacheShortCircuit:
    def test_hit_skips_trial_fn_entirely(self, tmp_path):
        calls = []

        def counting_trial(context, cfg, seed, budget):
            calls.append(cfg)
            return cfg.for_payload("tokens").size / 10.0

        configs = [config(size=8), config(size=16)]
        cache = TrialCache(tmp_path)
        first = TrialExecutor(
            counting_trial, workers=1, cache=cache, namespace="ns"
        ).evaluate(configs)
        assert len(calls) == 2
        assert not any(o.cached for o in first)

        second_executor = TrialExecutor(
            counting_trial, workers=1, cache=cache, namespace="ns"
        )
        second = second_executor.evaluate(configs)
        assert len(calls) == 2  # trial_fn was never called again
        assert all(o.cached for o in second)
        assert [o.score for o in second] == [o.score for o in first]
        assert second_executor.stats.cache_hits == 2
        assert second_executor.stats.executed == 0

    def test_different_base_seed_does_not_share_entries(self, tmp_path):
        """A seed-sensitive trial's score must only serve its own seed."""

        def seeded_trial(context, cfg, seed, budget):
            return float(seed)

        configs = [config()]
        cache = TrialCache(tmp_path)
        first = TrialExecutor(
            seeded_trial, workers=1, cache=cache, namespace="ns", base_seed=0
        ).evaluate(configs)
        second_executor = TrialExecutor(
            seeded_trial, workers=1, cache=cache, namespace="ns", base_seed=1
        )
        second = second_executor.evaluate(configs)
        assert second_executor.stats.cache_hits == 0
        assert second[0].score == float(second[0].seed)
        assert first[0].seed != second[0].seed

    def test_different_namespace_misses(self, tmp_path):
        calls = []

        def counting_trial(context, cfg, seed, budget):
            calls.append(cfg)
            return 1.0

        configs = [config()]
        cache = TrialCache(tmp_path)
        TrialExecutor(counting_trial, workers=1, cache=cache, namespace="a").evaluate(
            configs
        )
        TrialExecutor(counting_trial, workers=1, cache=cache, namespace="b").evaluate(
            configs
        )
        assert len(calls) == 2

    @pytest.mark.parametrize("workers", [1, 2])
    def test_completed_trials_survive_a_partial_failure(self, tmp_path, workers):
        """One failing trial must not discard its siblings' cache entries."""
        from tests.exec.test_executor import failing_trial, spec_4
        from repro.errors import TuningError

        configs = spec_4().expand()  # bow/lstm x sizes; lstm trials raise
        cache = TrialCache(tmp_path)
        with pytest.raises(TuningError):
            TrialExecutor(
                failing_trial, workers=workers, cache=cache, namespace="ns"
            ).evaluate(configs)
        assert len(cache) == 2  # both bow trials were persisted

        calls = []

        def counting_trial(context, cfg, seed, budget):
            calls.append(cfg)
            return 0.5

        resumed = TrialExecutor(
            counting_trial, workers=1, cache=cache, namespace="ns"
        )
        outcomes = resumed.evaluate(configs)
        assert len(calls) == 2  # only the failed trials re-ran
        assert resumed.stats.cache_hits == 2
        assert [o.cached for o in outcomes] == [
            c.for_payload("tokens").encoder == "bow" for c in configs
        ]

    def test_budget_separates_entries(self, tmp_path):
        calls = []

        def counting_trial(context, cfg, seed, budget):
            calls.append(budget)
            return float(budget or 0)

        configs = [config()]
        cache = TrialCache(tmp_path)
        executor = TrialExecutor(
            counting_trial, workers=1, cache=cache, namespace="ns"
        )
        executor.evaluate(configs, budget=2)
        executor.evaluate(configs, budget=4)
        executor.evaluate(configs, budget=2)  # cached
        assert calls == [2, 4]
