"""Conformance suite: every registered workload honors the same contract.

The registry is only useful if "iterate every workload" is safe — any
entry, hand-built or synthetic, must materialize a schema-valid dataset
with usable supervision, an Application whose declarative spec
round-trips, non-empty slices, and deterministic rebuilds.  Each
registered name is a parametrized case, so registering a broken workload
fails here by construction.
"""

from __future__ import annotations

import pytest

from repro.api import Application
from repro.data import Dataset
from repro.workloads import (
    build_workload,
    get_workload,
    resolve_workload,
    workload_names,
)

SCALE = 120


@pytest.fixture(scope="module")
def built():
    return {name: build_workload(name, scale=SCALE) for name in workload_names()}


def test_registry_has_hand_and_synth_entries():
    names = workload_names()
    kinds = {get_workload(name).kind for name in names}
    assert kinds == {"hand", "synth"}
    assert "factoid" in names
    assert any(name.startswith("synth-") for name in names)
    # Hand-built entries sort first: the paper's workloads lead the list.
    hand = [n for n in names if get_workload(n).kind == "hand"]
    assert names[: len(hand)] == hand


@pytest.mark.parametrize("name", workload_names())
def test_workload_conforms(name, built):
    workload = built[name]
    dataset = workload.dataset
    assert workload.name == name
    assert len(dataset.records) == SCALE

    # Schema-valid records with all three splits present (the Dataset
    # constructor re-validates every record against the schema).
    Dataset(dataset.schema, dataset.records)
    table = dataset.tag_table()
    for split in ("train", "dev", "test"):
        assert table.count(split) > 0, (name, split)

    # Supervision beyond gold: a workload with no weak sources cannot
    # exercise the combination pipeline.
    stats = dataset.supervision_stats()
    assert stats, name
    weak_sources = {
        source
        for sources in stats.values()
        for source in sources
        if source != "gold"
    }
    assert weak_sources, (name, stats)
    # And gold labels exist for evaluation.
    assert any("gold" in sources for sources in stats.values()), (name, stats)

    # The Application round-trips through its declarative spec.
    app = workload.application
    rebuilt = Application.from_spec(app.to_spec())
    assert rebuilt.to_spec() == app.to_spec()
    assert rebuilt.name == name

    # Non-empty slices: every declared slice matches tagged records.
    assert len(app.slices) > 0, name
    counts = app.slices.materialize(dataset.records)
    for spec in app.slices:
        assert counts[spec.name] > 0, (name, counts)

    # The stored spec is JSON-able provenance for reproducing the build.
    assert isinstance(workload.spec, dict) and workload.spec, name


@pytest.mark.parametrize("name", workload_names())
def test_workload_builds_deterministically(name):
    first = build_workload(name, scale=60)
    second = build_workload(name, scale=60)
    assert [r.to_dict() for r in first.dataset.records] == [
        r.to_dict() for r in second.dataset.records
    ]
    assert first.spec == second.spec


def test_resolve_workload_accepts_spec_files(tmp_path):
    from repro.workloads.synth import preset

    spec = preset("synth-medium").scaled(40)
    path = tmp_path / "spec.json"
    spec.save(path)
    from_file = resolve_workload(str(path), scale=40)
    by_name = resolve_workload("synth-medium", scale=40)
    assert [r.to_dict() for r in from_file.dataset.records] == [
        r.to_dict() for r in by_name.dataset.records
    ]


def test_resolve_workload_rejects_unknown_names():
    with pytest.raises(KeyError):
        resolve_workload("no-such-workload")
