"""Tests for the gazetteer and factoid generator."""

import numpy as np
import pytest

from repro.workloads import (
    FactoidGenerator,
    GAZETTEER,
    HARD_DISAMBIGUATION_SLICE,
    INTENT_CATEGORY,
    NUTRITION_SLICE,
    WorkloadConfig,
    by_surface,
    compatible,
    factoid_schema,
    generate_dataset,
    is_ambiguous,
    surfaces_for_intent,
)
from repro.data.tags import slice_tag


class TestGazetteer:
    def test_surfaces_sorted_by_popularity(self):
        readings = by_surface("washington")
        assert len(readings) == 3
        assert readings[0].popularity == max(e.popularity for e in readings)

    def test_ambiguity(self):
        assert is_ambiguous("washington")
        assert not is_ambiguous("france")

    def test_every_intent_has_surfaces(self):
        for intent in INTENT_CATEGORY:
            assert surfaces_for_intent(intent), intent

    def test_compatible(self):
        person = by_surface("obama")[0]
        assert compatible(person, "age")
        assert not compatible(person, "capital")

    def test_gazetteer_ids_unique(self):
        ids = [e.id for e in GAZETTEER]
        assert len(set(ids)) == len(ids)


class TestFactoidGenerator:
    def test_records_validate_against_schema(self):
        ds = generate_dataset(n=50, seed=0)  # Dataset() validates on build
        assert len(ds) == 50

    def test_deterministic_for_seed(self):
        a = generate_dataset(n=20, seed=7)
        b = generate_dataset(n=20, seed=7)
        assert [r.to_dict() for r in a] == [r.to_dict() for r in b]

    def test_splits_assigned(self):
        ds = generate_dataset(n=300, seed=1)
        table = ds.tag_table()
        assert table.count("train") > table.count("dev") > 0
        assert table.count("test") > 0
        total = table.count("train") + table.count("dev") + table.count("test")
        assert total == 300

    def test_gold_intent_arg_is_compatible(self):
        ds = generate_dataset(n=100, seed=2)
        for r in ds.records:
            intent = r.label_from("Intent", "gold")
            arg = r.label_from("IntentArg", "gold")
            member = r.payloads["entities"][arg]
            entity = next(e for e in GAZETTEER if e.id == member["id"])
            assert compatible(entity, intent)

    def test_hard_slice_tagged_correctly(self):
        ds = generate_dataset(n=400, seed=3)
        tag = slice_tag(HARD_DISAMBIGUATION_SLICE)
        hard = ds.with_tag(tag)
        assert len(hard) > 0
        for r in hard.records:
            arg = r.label_from("IntentArg", "gold")
            members = r.payloads["entities"]
            popularity = []
            for m in members:
                entity = next(e for e in GAZETTEER if e.id == m["id"])
                popularity.append(entity.popularity)
            assert int(np.argmax(popularity)) != arg

    def test_nutrition_slice_rare(self):
        ds = generate_dataset(n=1000, seed=4, nutrition_rate=0.03)
        count = ds.tag_table().count(slice_tag(NUTRITION_SLICE))
        assert 5 <= count <= 70

    def test_hard_fraction_forcing(self):
        ds = FactoidGenerator(
            WorkloadConfig(n=200, seed=5, hard_fraction=0.9)
        ).generate()
        tag = slice_tag(HARD_DISAMBIGUATION_SLICE)
        assert ds.tag_table().count(tag) > 50

    def test_entity_spans_point_at_surface(self):
        ds = generate_dataset(n=50, seed=6)
        for r in ds.records:
            tokens = r.payloads["tokens"]
            for member in r.payloads["entities"]:
                start, end = member["range"]
                surface_token = tokens[start]
                entity = next(e for e in GAZETTEER if e.id == member["id"])
                assert entity.surface == surface_token

    def test_pos_alignment(self):
        ds = generate_dataset(n=50, seed=7)
        for r in ds.records:
            assert len(r.label_from("POS", "gold")) == len(r.payloads["tokens"])

    def test_intent_skew(self):
        skewed = FactoidGenerator(
            WorkloadConfig(n=600, seed=8, intent_skew=5.0)
        ).generate()
        intents = [r.label_from("Intent", "gold") for r in skewed.records]
        height_age = sum(1 for i in intents if i in ("height", "age"))
        assert height_age / len(intents) > 0.5
