"""Unit tests for the parametric synth workload package.

The property suite (``tests/property/test_synth_properties.py``) carries
the expensive claims — cross-process determinism, streaming memory,
monotone difficulty.  This file covers the cheap, exact surfaces: spec
validation and serialization, world/sampling seed separation, drift
phases, the generated records' shape, the live labeler's coverage, and
the closed-form difficulty model.
"""

from __future__ import annotations

import json

import pytest

from repro.data.record import Record
from repro.errors import SchemaError
from repro.workloads.synth import (
    HARD_SLICE,
    RARE_SLICE,
    SOURCE_FAMILIES,
    SYNTH_PRESETS,
    DriftPhase,
    SynthGenerator,
    WorkloadSpec,
    build_schema,
    live_labeler,
    predicted_components,
    predicted_difficulty,
    preset,
)

# ----------------------------------------------------------------------
# WorkloadSpec
# ----------------------------------------------------------------------


def test_spec_json_round_trip(tmp_path):
    spec = WorkloadSpec(
        name="rt",
        n=50,
        seed=9,
        drift=(DriftPhase(0.0), DriftPhase(0.4, oov_rate=0.3, length_delta=1)),
    )
    path = tmp_path / "spec.json"
    spec.save(path)
    loaded = WorkloadSpec.from_file(path)
    assert loaded == spec
    assert loaded.to_json() == spec.to_json()
    # The JSON is canonical: keys sorted, so diffs between specs are real.
    assert json.loads(spec.to_json()) == spec.to_dict()


def test_spec_rejects_unknown_keys_and_bad_knobs():
    with pytest.raises(SchemaError):
        WorkloadSpec.from_dict({"no_such_knob": 1})
    with pytest.raises(SchemaError):
        WorkloadSpec(label_noise=1.5)
    with pytest.raises(SchemaError):
        WorkloadSpec(min_length=8, max_length=4)
    with pytest.raises(SchemaError):
        WorkloadSpec(sources=("weak_a", "mystery"))
    with pytest.raises(SchemaError):
        WorkloadSpec(drift=(DriftPhase(0.5), DriftPhase(0.2)))
    with pytest.raises(SchemaError):
        DriftPhase(start=0.0, oov_rate=2.0)


def test_scaled_and_reseeded_pin_the_world():
    spec = WorkloadSpec(n=100, seed=5)
    assert spec.scaled(400).n == 400
    assert spec.scaled(400).seed == 5
    reseeded = spec.reseeded(6)
    assert reseeded.seed == 6
    # Reseeding changes sampling, never the world.
    assert reseeded.resolved_world_seed() == 5
    assert reseeded.reseeded(7).resolved_world_seed() == 5
    assert spec.resolved_world_seed() == 5


def test_reseeding_changes_records_but_not_meaning():
    spec = WorkloadSpec(n=40, seed=5, drift=())
    original = SynthGenerator(spec)
    reseeded = SynthGenerator(spec.reseeded(6))
    assert original.record(0, 40).to_dict() != reseeded.record(0, 40).to_dict()
    # Same world: every token keeps its role under the new seed.
    for record in reseeded.iter_records(10):
        roles = record.tasks["POS"]["gold"]
        expected = [original.world.role_of(t) for t in record.payloads["tokens"]]
        assert list(roles) == expected


def test_fingerprint_tracks_every_knob():
    base = WorkloadSpec(n=50)
    assert base.fingerprint() == WorkloadSpec(n=50).fingerprint()
    assert base.fingerprint() != base.replace(label_noise=0.2).fingerprint()
    assert base.fingerprint() != base.scaled(51).fingerprint()


def test_phase_at_walks_the_schedule():
    spec = WorkloadSpec(
        drift=(DriftPhase(0.0), DriftPhase(0.5, oov_rate=0.4))
    )
    assert spec.phase_at(0.1).oov_rate == 0.0
    assert spec.phase_at(0.8).oov_rate == 0.4
    assert spec.without_drift().drift == ()
    assert WorkloadSpec().phase_at(0.5) is None


# ----------------------------------------------------------------------
# Generator output shape
# ----------------------------------------------------------------------


def test_generated_records_conform_to_schema_and_slices():
    spec = WorkloadSpec(n=80, seed=2, slice_rarity=0.1, ambiguity=0.8)
    generator = SynthGenerator(spec)
    dataset = generator.dataset()
    assert len(dataset.records) == 80
    tags = {t for r in dataset.records for t in r.tags}
    assert {"train", "dev", "test"} <= tags
    assert f"slice:{RARE_SLICE}" in tags
    assert f"slice:{HARD_SLICE}" in tags
    schema = build_schema(spec)
    assert {t.name for t in schema.tasks} == {
        "POS",
        "EntityType",
        "Intent",
        "IntentArg",
    }


def test_source_families_are_independent_substreams():
    """Dropping one weak-source family must not perturb the others."""
    full = SynthGenerator(WorkloadSpec(n=30, seed=4))
    trimmed = SynthGenerator(
        WorkloadSpec(n=30, seed=4, sources=tuple(s for s in SOURCE_FAMILIES if s != "crowd"))
    )
    for index in range(30):
        a = full.record(index, 30).to_dict()
        b = trimmed.record(index, 30).to_dict()
        for task in a["tasks"]:
            for source, label in b["tasks"][task].items():
                assert a["tasks"][task][source] == label, (index, task, source)


def test_payload_matches_record():
    generator = SynthGenerator(WorkloadSpec(n=20, seed=1))
    record = generator.record(3, 20)
    payload = generator.payload(3, 20)
    assert payload["tokens"] == record.payloads["tokens"]
    assert payload["entities"] == record.payloads["entities"]
    assert set(payload) == {"tokens", "entities"}


def test_write_jsonl_streams_the_dataset(tmp_path):
    spec = WorkloadSpec(n=25, seed=8)
    generator = SynthGenerator(spec)
    path = tmp_path / "data.jsonl"
    written = generator.write_jsonl(path, spec.n)
    assert written == 25
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 25
    assert json.loads(lines[0]) == generator.record(0, 25).to_dict()


# ----------------------------------------------------------------------
# Live labeler coverage
# ----------------------------------------------------------------------


def test_live_labeler_reuses_generated_source_names():
    spec = WorkloadSpec(n=40, seed=6, keyword_dropout=0.0)
    generator = SynthGenerator(spec)
    labeler = live_labeler(generator)
    records = [
        Record.from_dict({"payloads": generator.payload(i, 40), "tasks": {}})
        for i in range(10)
    ]
    labeler(records)
    seen = {
        (task, source)
        for record in records
        for task, sources in (
            (name, record.sources_for(name)) for name in record.tasks
        )
        for source in sources
    }
    # Every label rides an existing generated family, never a new name.
    assert {("Intent", "lf_keyword"), ("POS", "lf_tagger")} <= seen
    families = {source for _, source in seen}
    assert families <= set(SOURCE_FAMILIES), families


def test_live_labeler_covers_novel_drift_tokens():
    spec = preset("synth-drift-storm").scaled(100)
    generator = SynthGenerator(spec)
    labeler = live_labeler(spec)
    # The tail of the stream sits in the storm phase: novel vocabulary.
    record = Record.from_dict(
        {"payloads": generator.payload(90, 100), "tasks": {}}
    )
    labeler([record])
    roles = record.tasks["POS"]["lf_tagger"]
    assert len(roles) == len(record.payloads["tokens"])


# ----------------------------------------------------------------------
# Difficulty model + presets
# ----------------------------------------------------------------------


def test_predicted_difficulty_is_monotone_in_each_knob():
    base = WorkloadSpec(n=200)
    for knob, harder in (
        ("label_noise", 0.5),
        ("conflict_rate", 0.6),
        ("ambiguity", 0.9),
        ("keyword_dropout", 0.5),
        ("slice_skew", 3.0),
    ):
        easy = predicted_difficulty(base.replace(**{knob: 0.0}))
        hard = predicted_difficulty(base.replace(**{knob: harder}))
        assert hard > easy, knob
    components = predicted_components(base)
    assert 0.0 < sum(components.values()) < 1.0


def test_presets_order_by_predicted_difficulty():
    assert set(SYNTH_PRESETS) == {
        "synth-easy",
        "synth-medium",
        "synth-hard",
        "synth-drift-storm",
        "synth-drift-calm",
    }
    assert (
        predicted_difficulty(preset("synth-easy"))
        < predicted_difficulty(preset("synth-medium"))
        < predicted_difficulty(preset("synth-hard"))
    )
    with pytest.raises(KeyError):
        preset("synth-imaginary")
    # Drift presets differ only in their schedule: same world, same base.
    storm, calm = preset("synth-drift-storm"), preset("synth-drift-calm")
    assert storm.without_drift() == calm.without_drift().replace(name=storm.name)
