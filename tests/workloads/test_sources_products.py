"""Tests for synthetic weak sources, pretrained embeddings, and products."""

import numpy as np
import pytest

from repro.data.tags import slice_tag
from repro.supervision import build_label_matrix, LabelModel
from repro.workloads import (
    HARD_DISAMBIGUATION_SLICE,
    INTENT_CLASSES,
    PRODUCTS,
    apply_noisy_source,
    apply_standard_weak_supervision,
    build_pretrained_product,
    build_product,
    generate_dataset,
    keyword_intent_source,
    popularity_intent_arg_source,
    ppmi_svd_embeddings,
    product_by_name,
)


class TestNoisySources:
    def test_configured_accuracy_realized(self):
        ds = generate_dataset(n=600, seed=0)
        rng = np.random.default_rng(1)
        apply_noisy_source(
            ds.records, "Intent", "s80", 0.8, 1.0, INTENT_CLASSES, rng
        )
        correct = sum(
            1
            for r in ds.records
            if r.label_from("Intent", "s80") == r.label_from("Intent", "gold")
        )
        assert abs(correct / len(ds) - 0.8) < 0.05

    def test_coverage_respected(self):
        ds = generate_dataset(n=600, seed=1)
        rng = np.random.default_rng(2)
        apply_noisy_source(
            ds.records, "Intent", "half", 0.9, 0.5, INTENT_CLASSES, rng
        )
        covered = sum(1 for r in ds.records if r.label_from("Intent", "half"))
        assert abs(covered / len(ds) - 0.5) < 0.06

    def test_sequence_task_corruption(self):
        from repro.workloads import POS_CLASSES

        ds = generate_dataset(n=100, seed=2)
        rng = np.random.default_rng(3)
        apply_noisy_source(ds.records, "POS", "tagger", 0.7, 1.0, POS_CLASSES, rng)
        total, correct = 0, 0
        for r in ds.records:
            gold = r.label_from("POS", "gold")
            noisy = r.label_from("POS", "tagger")
            for g, n in zip(gold, noisy):
                total += 1
                correct += int(g == n)
        assert abs(correct / total - 0.7) < 0.05

    def test_label_model_recovers_source_accuracies(self):
        """End-to-end: synthetic sources -> label matrix -> EM estimates."""
        ds = generate_dataset(n=800, seed=3)
        rng = np.random.default_rng(4)
        for name, acc in (("good", 0.9), ("ok", 0.75), ("bad", 0.6)):
            apply_noisy_source(
                ds.records, "Intent", name, acc, 1.0, INTENT_CLASSES, rng
            )
        matrix = build_label_matrix(
            ds.records, ds.schema, "Intent", sources=["good", "ok", "bad"]
        )
        result = LabelModel().fit(matrix)
        assert abs(result.accuracy_of("good") - 0.9) < 0.06
        assert abs(result.accuracy_of("ok") - 0.75) < 0.06
        assert abs(result.accuracy_of("bad") - 0.6) < 0.06


class TestSystematicSources:
    def test_keyword_source_high_precision(self):
        ds = generate_dataset(n=300, seed=4)
        spec = keyword_intent_source(ds.records)
        labeled = [r for r in ds.records if r.label_from("Intent", spec.source.name)]
        assert len(labeled) > 200
        correct = sum(
            1
            for r in labeled
            if r.label_from("Intent", spec.source.name) == r.label_from("Intent", "gold")
        )
        assert correct / len(labeled) > 0.95

    def test_popularity_source_fails_on_hard_slice(self):
        ds = generate_dataset(n=600, seed=5)
        spec = popularity_intent_arg_source(ds.records)
        tag = slice_tag(HARD_DISAMBIGUATION_SLICE)
        hard = ds.with_tag(tag)
        assert len(hard) > 0
        hard_correct = sum(
            1
            for r in hard.records
            if r.label_from("IntentArg", spec.source.name)
            == r.label_from("IntentArg", "gold")
        )
        assert hard_correct == 0  # systematically wrong on the hard slice
        easy = [r for r in ds.records if not r.has_tag(tag)]
        easy_correct = sum(
            1
            for r in easy
            if r.label_from("IntentArg", spec.source.name)
            == r.label_from("IntentArg", "gold")
        )
        assert easy_correct / len(easy) > 0.95

    def test_standard_bundle_covers_all_tasks(self):
        ds = generate_dataset(n=100, seed=6)
        specs = apply_standard_weak_supervision(ds.records, seed=0)
        tasks = {s.task for s in specs}
        assert tasks == {"Intent", "POS", "EntityType", "IntentArg"}
        # Records validate after labeling.
        for r in ds.records[:10]:
            r.validate(ds.schema)


class TestPretrained:
    def test_ppmi_embeddings_capture_shared_contexts(self):
        # Distributional similarity: words appearing in the same contexts
        # ('a' and 'b' both follow 'x') get similar vectors; words from
        # disjoint contexts do not.
        corpus = (
            [["x", "a"], ["x", "b"]] * 5 + [["y", "c"], ["y", "d"]] * 5
        )
        vectors = ppmi_svd_embeddings(corpus, dim=4)

        def cos(x, y):
            return float(x @ y / (np.linalg.norm(x) * np.linalg.norm(y) + 1e-9))

        assert cos(vectors["a"], vectors["b"]) > cos(vectors["a"], vectors["c"]) + 0.3

    def test_build_product(self):
        product = build_pretrained_product(dim=8, corpus_queries=300)
        assert product.dim == 8
        assert "washington" in product.vectors or "paris" in product.vectors
        # Vectors are unit-normalized (or zero).
        for vec in list(product.vectors.values())[:5]:
            assert np.linalg.norm(vec) < 1.01

    def test_empty_corpus(self):
        assert ppmi_svd_embeddings([], dim=4) == {}


class TestProducts:
    def test_four_products_defined(self):
        assert len(PRODUCTS) == 4
        assert [p.resourcing for p in PRODUCTS] == ["High", "Medium", "Medium", "Low"]

    def test_product_by_name(self):
        assert product_by_name("assistant-qa").resourcing == "High"
        with pytest.raises(KeyError):
            product_by_name("ghost")

    def test_build_product_weak_fraction_band(self):
        # High-resource product: most labels weak but crowd share visible.
        built = build_product(product_by_name("assistant-qa"), seed=0)
        frac = built.weak_supervision_fraction()
        assert 0.6 < frac < 1.0

    def test_low_resource_has_more_weak_share(self):
        high = build_product(product_by_name("assistant-qa"), seed=0)
        low = build_product(product_by_name("locale-expansion"), seed=0)
        assert low.weak_supervision_fraction() > high.weak_supervision_fraction()

    def test_registry_includes_gold(self):
        built = build_product(product_by_name("locale-expansion"), seed=1)
        assert "gold" in built.registry()
