"""Cross-dtype regression: float32 inference tracks float64 within tolerance.

Pins the contract the serving-precision trade rests on (and the satellite
requirements of the dtype-policy PR):

* ``no_grad()`` inference from a float32-compiled model matches the
  float64 twin within 1e-4 — and running it never mutates the caller's
  dtype policy;
* the compiled dtype round-trips through artifacts (config + metadata +
  restored model), and a float32 *training* run keeps every parameter and
  gradient in float32;
* float32 models run end to end through ``Trainer.fit`` with finite
  losses.
"""

import numpy as np

from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.data import EncodedDataset
from repro.deploy import ModelArtifact
from repro.model.multitask import MultitaskModel
from repro.tensor import default_dtype, no_grad
from repro.training import Trainer

from tests.fixtures import mini_dataset
from tests.training.test_fastpath_parity import build, gold_targets_for_training

F32 = np.dtype("float32")
F64 = np.dtype("float64")


def build_pair(encoder="lstm", n=40):
    """The same (schema, vocabs, seed) compiled in float64 and float32."""
    models = {}
    for dtype in ("float64", "float32"):
        dataset, schema, vocabs, config, model = build(encoder=encoder, n=n, dtype=dtype)
        models[dtype] = model
    return dataset, schema, vocabs, models


class TestInferenceDivergence:
    def test_no_grad_float32_matches_float64_within_tolerance(self):
        dataset, schema, vocabs, models = build_pair()
        encoded = EncodedDataset(dataset.records, schema, vocabs)
        batch = encoded.batch(np.arange(len(dataset.records)))
        outputs = {}
        for dtype, model in models.items():
            model.eval()
            with no_grad():
                outputs[dtype] = model.forward(batch)
        for name in outputs["float64"]:
            p64 = np.asarray(outputs["float64"][name].probs, dtype=F64)
            p32 = np.asarray(outputs["float32"][name].probs, dtype=F64)
            assert outputs["float32"][name].probs.dtype == F32, name
            np.testing.assert_allclose(p64, p32, atol=1e-4, rtol=0, err_msg=name)

    def test_inference_never_mutates_the_policy(self):
        dataset, schema, vocabs, models = build_pair(encoder="bow")
        encoded = EncodedDataset(dataset.records, schema, vocabs)
        batch = encoded.batch(np.arange(8))
        assert default_dtype() == F64
        models["float32"].predict(batch)
        assert default_dtype() == F64
        models["float32"].forward(batch)
        assert default_dtype() == F64


class TestDtypeRoundTrip:
    def test_artifact_preserves_compiled_dtype(self, tmp_path):
        dataset, schema, vocabs, config, model = build(dtype="float32")
        artifact = ModelArtifact.from_model(model, vocabs)
        assert artifact.config.dtype == "float32"
        assert artifact.metadata["dtype"] == "float32"
        path = artifact.save(tmp_path / "artifact")
        restored = ModelArtifact.load(path).build_model()
        assert restored.dtype == F32
        for _, p in restored.named_parameters():
            assert p.data.dtype == F32

    def test_float64_artifact_loads_into_float32_model(self, tmp_path):
        dataset, schema, vocabs, config, model64 = build(dtype="float64")
        state = model64.state_dict()
        _, _, _, _, model32 = build(dtype="float32")
        model32.load_state_dict(state)
        for name, p in model32.named_parameters():
            assert p.data.dtype == F32, name
            np.testing.assert_allclose(p.data, state[name].astype(F32))

    def test_to_dtype_moves_params_and_policy(self):
        dataset, schema, vocabs, config, model = build(dtype="float64")
        model.to_dtype("float32")
        assert model.dtype == F32
        assert all(p.data.dtype == F32 for p in model.parameters())
        encoded = EncodedDataset(dataset.records, schema, vocabs)
        out = model.predict(encoded.batch(np.arange(8)))
        for name in out:
            assert out[name].probs.dtype == F32

    def test_cast_model_builds_self_consistent_artifact(self, tmp_path):
        """An artifact from a cast model recompiles in the dtype it serves."""
        dataset, schema, vocabs, config, model = build(dtype="float64")
        model.to_dtype("float32")
        assert model.config.dtype == "float32"
        artifact = ModelArtifact.from_model(model, vocabs)
        assert artifact.config.dtype == "float32"
        restored = ModelArtifact.load(artifact.save(tmp_path / "cast")).build_model()
        assert restored.dtype == F32


class TestFloat32Training:
    def test_fit_keeps_float32_params_and_grads(self):
        dataset = mini_dataset(n=30)
        vocabs = dataset.build_vocabs()
        config = ModelConfig(
            payloads={
                "tokens": PayloadConfig(encoder="lstm", size=12),
                "query": PayloadConfig(size=12),
                "entities": PayloadConfig(size=12),
            },
            trainer=TrainerConfig(epochs=2, batch_size=16, lr=0.05),
            dtype="float32",
        )
        model = MultitaskModel(dataset.schema, config, vocabs, seed=7)
        targets = gold_targets_for_training(dataset, dataset.schema)
        trainer = Trainer(model, config.trainer)
        history = trainer.fit(dataset.records, vocabs, targets)
        assert all(np.isfinite(e.train_loss) for e in history.epochs)
        for name, p in model.named_parameters():
            assert p.data.dtype == F32, name
        # And the trainer never leaked the model's policy into this thread.
        assert default_dtype() == F64

    def test_optimizer_moments_realign_after_cast(self):
        """Casting a model with a live optimizer must not revert on step()."""
        from repro.nn import Linear
        from repro.optim import SGD, Adam
        from repro.tensor import Tensor

        for make in (lambda ps: Adam(ps, lr=0.01), lambda ps: SGD(ps, lr=0.01, momentum=0.9)):
            layer = Linear(4, 3, np.random.default_rng(0))
            optimizer = make(layer.parameters())  # moments born float64
            layer.to_dtype("float32")
            out = layer(Tensor(np.ones((2, 4), dtype=F32)))
            out.sum().backward()
            optimizer.step()
            for p in layer.parameters():
                assert p.data.dtype == F32

    def test_trainer_encodes_batches_in_the_model_dtype(self):
        """The batch cache is born float32 for a float32 model, not recast."""
        from repro.tensor import dtype_policy

        dataset = mini_dataset(n=20)
        vocabs = dataset.build_vocabs()
        with dtype_policy("float32"):
            encoded = EncodedDataset(dataset.records, dataset.schema, vocabs)
        batch = encoded.batch(np.arange(4))
        tokens = batch.payloads["tokens"]
        assert tokens.mask.dtype == F32
        assert tokens.ids.dtype == np.dtype("int64")  # ids stay integer
        # The fingerprint pins the encoding dtype, so a float64-built cache
        # reads as stale for a float32 consumer.
        with dtype_policy("float32"):
            assert encoded.is_current(dataset.schema, vocabs)
        assert not encoded.is_current(dataset.schema, vocabs)
