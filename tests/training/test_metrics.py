"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.training import (
    accuracy,
    confusion_matrix,
    macro_f1,
    micro_f1_multilabel,
    per_class_prf,
)


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_masked(self):
        acc = accuracy(
            np.array([0, 1]), np.array([0, 0]), valid=np.array([True, False])
        )
        assert acc == 1.0

    def test_empty_mask(self):
        assert accuracy(np.array([1]), np.array([1]), valid=np.array([False])) == 0.0

    def test_2d_inputs_flattened(self):
        preds = np.array([[0, 1], [1, 1]])
        gold = np.array([[0, 1], [0, 1]])
        assert accuracy(preds, gold) == pytest.approx(0.75)

    def test_shape_mismatch(self):
        with pytest.raises(TrainingError):
            accuracy(np.zeros(2), np.zeros(3))


class TestPRF:
    def test_perfect(self):
        prfs = per_class_prf(np.array([0, 1]), np.array([0, 1]), num_classes=2)
        assert prfs[0].f1 == 1.0
        assert prfs[1].precision == 1.0

    def test_absent_class_zero(self):
        prfs = per_class_prf(np.array([0, 0]), np.array([0, 0]), num_classes=3)
        assert prfs[2].f1 == 0.0

    def test_known_values(self):
        # class 0: tp=1 fp=1 fn=1 -> p=0.5 r=0.5 f1=0.5
        preds = np.array([0, 0, 1])
        gold = np.array([0, 1, 0])
        prfs = per_class_prf(preds, gold, num_classes=2)
        assert prfs[0].precision == 0.5
        assert prfs[0].recall == 0.5
        assert prfs[0].f1 == 0.5


class TestMacroF1:
    def test_only_present_classes_count(self):
        # Class 2 never appears in gold; macro-F1 averages over classes 0,1.
        preds = np.array([0, 1])
        gold = np.array([0, 1])
        assert macro_f1(preds, gold, num_classes=3) == 1.0

    def test_empty(self):
        assert macro_f1(np.zeros(0), np.zeros(0), num_classes=2) == 0.0

    def test_valid_mask(self):
        preds = np.array([0, 1])
        gold = np.array([0, 0])
        assert macro_f1(preds, gold, 2, valid=np.array([True, False])) == 1.0


class TestMicroF1Multilabel:
    def test_perfect(self):
        bits = np.array([[1, 0], [0, 1]])
        assert micro_f1_multilabel(bits, bits) == 1.0

    def test_all_wrong(self):
        pred = np.array([[1, 0]])
        gold = np.array([[0, 1]])
        assert micro_f1_multilabel(pred, gold) == 0.0

    def test_partial(self):
        pred = np.array([[1, 1, 0]])
        gold = np.array([[1, 0, 1]])
        # tp=1 fp=1 fn=1 -> f1 = 0.5
        assert micro_f1_multilabel(pred, gold) == 0.5

    def test_sequence_mask(self):
        pred = np.array([[[1, 0], [0, 0]]])
        gold = np.array([[[1, 0], [1, 1]]])
        valid = np.array([[True, False]])
        assert micro_f1_multilabel(pred, gold, valid) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(TrainingError):
            micro_f1_multilabel(np.zeros((1, 2)), np.zeros((1, 3)))


class TestConfusionMatrix:
    def test_counts(self):
        preds = np.array([0, 1, 1, 0])
        gold = np.array([0, 1, 0, 1])
        matrix = confusion_matrix(preds, gold, num_classes=2)
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 1]])

    def test_masked(self):
        matrix = confusion_matrix(
            np.array([0, 1]), np.array([0, 1]), 2, valid=np.array([True, False])
        )
        assert matrix.sum() == 1
