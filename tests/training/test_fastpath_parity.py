"""Fast-path parity: every hot-path optimization is a pure elision.

The PR's fast paths — tape-free inference, encoded-batch caching, sparse
embedding gradients, vectorized span weights and recurrent masks — must be
numerically invisible: same seeds, same scores, same weights as the legacy
code paths.  This suite pins that contract (the ``workers=1`` parity
pattern from ``tests/exec``, applied to the compute stack).

The forward-parity, training-parity, and gradcheck suites run under **both
dtype policies** (``ModelConfig.dtype`` float64 and float32): each fast
path must be an elision *within* its precision, whatever the precision.
"""

import numpy as np
import pytest

import repro.nn.embedding as embedding_module
from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.data import EncodedDataset
from repro.model.multitask import MultitaskModel
from repro.nn import GRU, LSTM, Embedding, Linear, Module
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, cross_entropy, dtype_policy, no_grad
from repro.training import Trainer, evaluate
from tests.fixtures import mini_dataset
from tests.helpers import check_grad


def build(encoder="bow", n=40, seed=0, epochs=3, dtype="float64"):
    dataset = mini_dataset(n=n, seed=seed)
    schema = dataset.schema
    vocabs = dataset.build_vocabs()
    config = ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder=encoder, size=12),
            "query": PayloadConfig(size=12),
            "entities": PayloadConfig(size=12),
        },
        trainer=TrainerConfig(epochs=epochs, batch_size=16, lr=0.05),
        dtype=dtype,
    )
    model = MultitaskModel(schema, config, vocabs, seed=7)
    return dataset, schema, vocabs, config, model


@pytest.fixture(params=["float64", "float32"])
def dtype(request):
    """Run the suite under both dtype policies."""
    return request.param


def gold_targets_for_training(dataset, schema):
    """Hard gold labels as probabilistic targets (enough for parity runs)."""
    from repro.data.batching import extract_targets
    from repro.model.task_heads import TaskTargets

    records = dataset.records
    targets = {}
    for task in schema.tasks:
        gold = extract_targets(records, schema, task.name, "gold")
        labels, valid = gold["labels"], np.asarray(gold["valid"], dtype=float)
        if task.type == "multiclass":
            probs = np.zeros(labels.shape + (task.num_classes,))
            np.put_along_axis(
                probs, np.maximum(labels, 0)[..., None], 1.0, axis=-1
            )
            targets[task.name] = TaskTargets(probs=probs, weights=valid)
        elif task.type == "bitvector":
            targets[task.name] = TaskTargets(probs=labels, weights=valid)
        else:  # select
            k = schema.payload(task.payload).max_members
            probs = np.zeros((len(records), k))
            np.put_along_axis(probs, np.maximum(labels, 0)[:, None], 1.0, axis=1)
            targets[task.name] = TaskTargets(probs=probs, weights=valid)
    return targets


class TestNoGradForwardParity:
    @pytest.mark.parametrize("encoder", ["bow", "lstm", "gru", "bilstm", "cnn"])
    def test_predictions_identical(self, encoder, dtype):
        dataset, schema, vocabs, _, model = build(encoder=encoder, dtype=dtype)
        model.eval()
        encoded = EncodedDataset(dataset.records, schema, vocabs)
        batch = encoded.batch(np.arange(len(dataset.records)))
        taped = model.forward(batch)
        with no_grad():
            free = model.forward(batch)
        for name in taped:
            np.testing.assert_array_equal(taped[name].probs, free[name].probs)
            np.testing.assert_array_equal(
                taped[name].predictions, free[name].predictions
            )


class TestEncodedTrainingParity:
    @pytest.mark.parametrize("encoder", ["bow", "lstm"])
    def test_fit_bit_identical_with_and_without_cache(self, encoder, dtype):
        results = {}
        for cached in (False, True):
            dataset, schema, vocabs, config, model = build(encoder=encoder, dtype=dtype)
            trainer = Trainer(model, config.trainer)
            train = dataset.split("train")
            dev = dataset.split("dev")
            targets = gold_targets_for_training(train, schema)
            history = trainer.fit(
                train.records,
                vocabs,
                targets,
                dev_records=dev.records,
                cache_batches=cached,
            )
            results[cached] = (
                [e.train_loss for e in history.epochs],
                [e.dev_score for e in history.epochs],
                model.state_dict(),
            )
        losses_a, scores_a, state_a = results[False]
        losses_b, scores_b, state_b = results[True]
        assert losses_a == losses_b
        assert scores_a == scores_b
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name])

    def test_evaluate_with_encoded_matches_fresh(self):
        dataset, schema, vocabs, _, model = build()
        model.eval()
        records = dataset.split("dev").records
        encoded = EncodedDataset(records, schema, vocabs)
        fresh = evaluate(model, records, schema, vocabs, "gold")
        cached = evaluate(model, records, schema, vocabs, "gold", encoded=encoded)
        assert {t: e.metrics for t, e in fresh.items()} == {
            t: e.metrics for t, e in cached.items()
        }


class _TinyClassifier(Module):
    """Embedding -> mean pool -> linear: the minimal large-vocab trainer."""

    def __init__(self, vocab: int, dim: int, classes: int, rng) -> None:
        super().__init__()
        self.emb = Embedding(vocab, dim, rng, padding_idx=0)
        self.out = Linear(dim, classes, rng)

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.out(self.emb(ids).mean(axis=1))


class TestSparseTrainingParity:
    def test_sparse_and_dense_training_identical(self, monkeypatch):
        """Train twice on a large-vocab table: adaptive-sparse vs forced-dense."""
        from repro.tensor.ops import Tensor as OpsTensor

        def dense_gather(table, indices):
            idx = np.asarray(indices, dtype=np.int64)
            data = table.data[idx]

            def grad_fn(g):
                grad = np.zeros_like(table.data)
                np.add.at(grad, idx.reshape(-1), g.reshape(-1, table.shape[1]))
                return grad

            return OpsTensor._make(data, [(table, grad_fn)], "gather_rows")

        vocab, dim, classes, batch, length = 3000, 8, 4, 16, 6
        rng = np.random.default_rng(11)
        ids = rng.integers(1, vocab, size=(10, batch, length))
        labels = rng.integers(0, classes, size=(10, batch))

        states = {}
        for mode in ("sparse", "dense"):
            if mode == "dense":
                monkeypatch.setattr(embedding_module, "gather_rows", dense_gather)
            model = _TinyClassifier(vocab, dim, classes, np.random.default_rng(5))
            optimizer = Adam(model.parameters(), lr=0.01)
            for step in range(10):
                logits = model(ids[step])
                loss = cross_entropy(logits, labels[step])
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(model.parameters(), 1.0)
                optimizer.step()
            states[mode] = model.state_dict()
            monkeypatch.undo()

        for name in states["sparse"]:
            np.testing.assert_allclose(
                states["sparse"][name],
                states["dense"][name],
                rtol=1e-12,
                atol=1e-15,
                err_msg=name,
            )


class TestVectorizedGradchecks:
    """Gradcheck still green through the vectorized forward paths.

    Runs under both dtype policies: the layer is *built* under the policy
    (float32 parameters) and :func:`tests.helpers.check_grad` evaluates,
    differentiates, and compares in that precision.
    """

    def test_set_encoder_span_weights(self, dtype):
        from repro.core import PayloadSpec
        from repro.data import PayloadInputs
        from repro.model import EmbeddingRegistry
        from repro.model.payload_encoders import SetPayloadEncoder

        spec = PayloadSpec(name="entities", type="set", range="tokens", max_members=3)
        with dtype_policy(dtype):
            enc = SetPayloadEncoder(
                spec,
                PayloadConfig(size=6),
                range_size=6,
                vocab_size=10,
                rng=np.random.default_rng(4),
                registry=EmbeddingRegistry(),
            )
        enc.eval()
        inputs = PayloadInputs(
            member_ids=np.array([[2, 3, 0]]),
            # A multi-position span, an empty span, and a masked member.
            spans=np.array([[[0, 3], [2, 2], [0, 1]]]),
            member_mask=np.array([[1.0, 1.0, 0.0]]),
        )
        x = np.random.default_rng(6).normal(size=(1, 4, 6))
        check_grad(lambda t: enc(inputs, t).sum(), x, dtype=dtype)

    @pytest.mark.parametrize("cls", [LSTM, GRU])
    def test_recurrent_masked_gradcheck(self, cls, dtype):
        rng = np.random.default_rng(9)
        with dtype_policy(dtype):
            layer = cls(3, 4, rng)
        mask = np.array([[1.0, 1.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]])
        x = rng.normal(size=(2, 4, 3))
        check_grad(lambda t: layer(t, mask).sum(), x, atol=1e-4, rtol=1e-3, dtype=dtype)
