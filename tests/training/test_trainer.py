"""Tests for the trainer: learning, early stopping, and reports."""

import numpy as np
import pytest

from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.errors import TrainingError
from repro.model import TaskTargets, compile_from_dataset
from repro.supervision import combine_supervision
from repro.training import (
    Trainer,
    evaluate,
    mean_primary,
    quality_report,
)

from tests.fixtures import mini_dataset


def small_config(epochs=6, **kwargs) -> ModelConfig:
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder="bow", size=16),
            "query": PayloadConfig(size=16),
            "entities": PayloadConfig(size=16),
        },
        trainer=TrainerConfig(epochs=epochs, batch_size=16, lr=0.05, **kwargs),
    )


def build_targets(ds, records):
    targets = {}
    for task in ("Intent", "POS", "EntityType", "IntentArg"):
        combined = combine_supervision(
            records, ds.schema, task, exclude_sources=["gold"]
        ) if task == "Intent" else combine_supervision(records, ds.schema, task)
        targets[task] = TaskTargets(probs=combined.probs, weights=combined.weights)
    return targets


class TestTrainerLearning:
    def test_learns_intent_from_weak_labels(self):
        ds = mini_dataset(n=80, seed=0)
        train = ds.split("train")
        test = ds.split("test")
        model, vocabs = compile_from_dataset(ds, small_config())
        trainer = Trainer(model, model.config.trainer)
        history = trainer.fit(train.records, vocabs, build_targets(ds, train.records))
        assert len(history.epochs) == 6
        # Loss decreases.
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
        evals = evaluate(model, test.records, ds.schema, vocabs, "gold")
        assert evals["Intent"].metrics["accuracy"] > 0.8
        assert evals["IntentArg"].metrics["accuracy"] == 1.0  # single candidate

    def test_dev_tracking_and_best_restore(self):
        ds = mini_dataset(n=60, seed=1)
        train, dev = ds.split("train"), ds.split("dev")
        model, vocabs = compile_from_dataset(ds, small_config(epochs=4))
        trainer = Trainer(model, model.config.trainer)
        history = trainer.fit(
            train.records, vocabs, build_targets(ds, train.records), dev.records
        )
        assert history.best_epoch >= 0
        assert history.best_dev_score > 0
        assert all(e.dev_score is not None for e in history.epochs)

    def test_early_stopping(self):
        ds = mini_dataset(n=40, seed=2)
        train, dev = ds.split("train"), ds.split("dev")
        model, vocabs = compile_from_dataset(ds, small_config(epochs=50, patience=2))
        trainer = Trainer(model, model.config.trainer)
        history = trainer.fit(
            train.records, vocabs, build_targets(ds, train.records), dev.records
        )
        assert history.stopped_early
        assert len(history.epochs) < 50

    def test_callback_invoked(self):
        ds = mini_dataset(n=30, seed=3)
        train = ds.split("train")
        model, vocabs = compile_from_dataset(ds, small_config(epochs=2))
        trainer = Trainer(model, model.config.trainer)
        seen = []
        trainer.fit(
            train.records,
            vocabs,
            build_targets(ds, train.records),
            callback=lambda stats: seen.append(stats.epoch),
        )
        assert seen == [0, 1]

    def test_empty_dataset_rejected(self):
        ds = mini_dataset(n=20, seed=4)
        model, vocabs = compile_from_dataset(ds, small_config())
        trainer = Trainer(model, model.config.trainer)
        with pytest.raises(TrainingError):
            trainer.fit([], vocabs, {})

    def test_misaligned_targets_rejected(self):
        ds = mini_dataset(n=20, seed=5)
        train = ds.split("train")
        model, vocabs = compile_from_dataset(ds, small_config())
        trainer = Trainer(model, model.config.trainer)
        bad = build_targets(ds, train.records)
        bad["Intent"] = TaskTargets(
            probs=bad["Intent"].probs[:2], weights=bad["Intent"].weights[:2]
        )
        with pytest.raises(TrainingError, match="rows"):
            trainer.fit(train.records, vocabs, bad)

    def test_unknown_optimizer(self):
        ds = mini_dataset(n=20, seed=6)
        model, _ = compile_from_dataset(ds, small_config())
        with pytest.raises(TrainingError):
            Trainer(model, TrainerConfig(optimizer="lbfgs"))

    @pytest.mark.parametrize("optimizer", ["adam", "adamw", "sgd"])
    def test_all_optimizers_run(self, optimizer):
        ds = mini_dataset(n=20, seed=7)
        train = ds.split("train")
        config = small_config(epochs=1)
        model, vocabs = compile_from_dataset(ds, config)
        trainer = Trainer(model, TrainerConfig(optimizer=optimizer, epochs=1, lr=0.01))
        history = trainer.fit(train.records, vocabs, build_targets(ds, train.records))
        assert np.isfinite(history.final_loss)


class TestEvaluation:
    def test_mean_primary(self):
        ds = mini_dataset(n=30, seed=8)
        model, vocabs = compile_from_dataset(ds, small_config())
        evals = evaluate(model, ds.records, ds.schema, vocabs, "gold")
        score = mean_primary(evals)
        assert 0.0 <= score <= 1.0
        assert mean_primary({}) == 0.0

    def test_empty_records(self):
        ds = mini_dataset(n=10, seed=9)
        model, vocabs = compile_from_dataset(ds, small_config())
        evals = evaluate(model, [], ds.schema, vocabs, "gold")
        assert all(e.n == 0 for e in evals.values())

    def test_all_tasks_covered(self):
        ds = mini_dataset(n=20, seed=10)
        model, vocabs = compile_from_dataset(ds, small_config())
        evals = evaluate(model, ds.records, ds.schema, vocabs, "gold")
        assert set(evals) == {"POS", "EntityType", "Intent", "IntentArg"}
        assert "f1" in evals["POS"].metrics
        assert "exact_match" in evals["EntityType"].metrics


class TestQualityReport:
    def test_per_tag_rows(self):
        ds = mini_dataset(n=30, seed=11)
        model, vocabs = compile_from_dataset(ds, small_config())
        report = quality_report(model, ds.records, ds.schema, vocabs, "gold")
        tags = {r.tag for r in report.rows}
        assert {"overall", "train", "dev", "test"} <= tags

    def test_metric_lookup_and_columns(self):
        ds = mini_dataset(n=30, seed=12)
        model, vocabs = compile_from_dataset(ds, small_config())
        report = quality_report(
            model, ds.records, ds.schema, vocabs, "gold", tags=["train"]
        )
        value = report.metric("train", "Intent", "accuracy")
        assert 0.0 <= value <= 1.0
        assert np.isnan(report.metric("ghost", "Intent", "accuracy"))
        cols = report.to_columns()
        assert len(cols["tag"]) == len(report.rows)

    def test_empty_tag_rows_zero_n(self):
        ds = mini_dataset(n=10, seed=13)
        model, vocabs = compile_from_dataset(ds, small_config())
        report = quality_report(
            model, ds.records, ds.schema, vocabs, "gold",
            tags=["nonexistent"], include_overall=False,
        )
        assert all(r.n == 0 for r in report.rows)

    def test_for_tag_for_task(self):
        ds = mini_dataset(n=20, seed=14)
        model, vocabs = compile_from_dataset(ds, small_config())
        report = quality_report(model, ds.records, ds.schema, vocabs, "gold", tags=["train"])
        assert len(report.for_tag("train")) == 4  # one per task
        assert {r.tag for r in report.for_task("Intent")} == {"overall", "train"}


class TestConfusionForTag:
    def test_matrix_counts_and_render(self):
        from repro.training import confusion_for_tag, render_confusion

        ds = mini_dataset(n=40, seed=20)
        model, vocabs = compile_from_dataset(ds, small_config())
        matrix = confusion_for_tag(
            model, ds.records, ds.schema, vocabs, "Intent", tag="test"
        )
        k = ds.schema.task("Intent").num_classes
        assert matrix.shape == (k, k)
        assert matrix.sum() == len(ds.split("test"))
        text = render_confusion(matrix, ds.schema.task("Intent").classes)
        assert "height" in text

    def test_empty_tag(self):
        from repro.training import confusion_for_tag

        ds = mini_dataset(n=10, seed=21)
        model, vocabs = compile_from_dataset(ds, small_config())
        matrix = confusion_for_tag(
            model, ds.records, ds.schema, vocabs, "Intent", tag="ghost"
        )
        assert matrix.sum() == 0

    def test_rejects_non_multiclass(self):
        import pytest as _pytest

        from repro.training import confusion_for_tag

        ds = mini_dataset(n=10, seed=22)
        model, vocabs = compile_from_dataset(ds, small_config())
        with _pytest.raises(ValueError):
            confusion_for_tag(model, ds.records, ds.schema, vocabs, "EntityType")


class TestNaNGuard:
    def test_nonfinite_loss_raises_helpful_error(self):
        ds = mini_dataset(n=20, seed=30)
        train = ds.split("train")
        model, vocabs = compile_from_dataset(ds, small_config())
        # Poison one weight so the forward pass produces NaN.
        model.encoders["tokens"].embedding.weight.data[2] = np.nan
        trainer = Trainer(model, TrainerConfig(epochs=1, lr=0.05))
        with pytest.raises(TrainingError, match="non-finite"):
            trainer.fit(train.records, vocabs, build_targets(ds, train.records))


class TestTrainerHooks:
    def _fit(self, hooks, epochs=2):
        ds = mini_dataset(n=40, seed=0)
        train = ds.split("train")
        model, vocabs = compile_from_dataset(ds, small_config(epochs=epochs))
        trainer = Trainer(model, model.config.trainer)
        return trainer.fit(
            train.records, vocabs, build_targets(ds, train.records), hooks=hooks
        )

    def test_hooks_see_every_epoch_with_measurements(self):
        calls = []

        class Recorder:
            def on_epoch(self, stats, *, duration_s, grad_norm):
                calls.append((stats.epoch, duration_s, grad_norm))

        history = self._fit(Recorder(), epochs=3)
        assert [c[0] for c in calls] == [0, 1, 2]
        assert all(duration > 0 for _, duration, _ in calls)
        # clip_norm defaults off, so hooks trigger explicit norm measurement.
        assert all(norm is not None and norm >= 0 for *_, norm in calls)
        assert len(history.epochs) == 3

    def test_metrics_hooks_feed_the_registry(self):
        import repro.obs as obs
        from repro.training import MetricsTrainerHooks

        with obs.activated():
            self._fit(MetricsTrainerHooks(model="unit-test"), epochs=2)
            registry = obs.get_registry()
            assert registry.get("repro_train_epochs_total").value(
                model="unit-test"
            ) == 2.0
            epoch_s = registry.get("repro_train_epoch_seconds").value(
                model="unit-test"
            )
            assert epoch_s["count"] == 2 and epoch_s["sum"] > 0
            assert registry.get("repro_train_loss").value(model="unit-test") > 0
            assert (
                registry.get("repro_train_grad_norm").value(model="unit-test")
                >= 0
            )

    def test_epochs_are_traced_when_enabled(self):
        import repro.obs as obs

        with obs.activated():
            self._fit(None, epochs=2)
            epochs = [
                s for s in obs.get_tracer().ring.spans()
                if s.name == "train.epoch"
            ]
            assert [s.attrs["epoch"] for s in epochs] == [0, 1]

    def test_no_hooks_means_no_metrics(self):
        import repro.obs as obs

        with obs.activated():
            self._fit(None, epochs=1)
            counter = obs.get_registry().get("repro_train_epochs_total")
            assert counter is None or counter.samples() == []
