"""Tier-1 wiring for the serving pickle lint (tools/check_pickle_hotpath.py).

Process-parallel serving only wins if batches cross the process boundary
as shared-memory views, never as per-request pickles; this test keeps
``src/repro/serve`` free of direct pickle/marshal usage and pins the
lint's own detection logic with known-bad snippets.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_pickle_hotpath import DEFAULT_TARGET, check_tree, violations_in


def test_serve_tree_has_no_pickle_usage():
    assert check_tree(DEFAULT_TARGET) == []


def test_lint_catches_pickle_import(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import pickle\n\ndef ship(m):\n    return pickle.dumps(m)\n")
    found = violations_in(bad)
    assert len(found) == 2  # the import and the dumps call
    assert "shared memory" in found[0]


def test_lint_catches_from_import(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("from pickle import dumps\n")
    found = violations_in(bad)
    assert len(found) == 1 and "import from 'pickle'" in found[0]


def test_unrelated_attribute_access_is_clean(tmp_path):
    ok = tmp_path / "ok.py"
    ok.write_text(
        "import json\n\ndef ship(m):\n    return json.dumps(m)\n"
    )
    assert violations_in(ok) == []
