"""Tests for learned augmentation policy search."""

import pytest

from repro.data import Dataset
from repro.errors import SupervisionError
from repro.supervision import (
    apply_selected_policies,
    search_augmentation_policies,
    synonym_swap,
    token_dropout,
)

from tests.fixtures import mini_dataset


def scoring_stub(scores):
    """A train_and_score stub replaying canned scores per call."""
    calls = iter(scores)

    def fn(dataset):
        return next(calls)

    return fn


class TestPolicySearch:
    def test_selects_only_helpful_policies(self):
        ds = mini_dataset(n=30, seed=0)
        policies = [token_dropout(rate=0.2), synonym_swap({"tall": ["high"]})]
        # baseline 0.7; dropout helps (0.8), synonym hurts (0.6).
        result = search_augmentation_policies(
            ds, policies, scoring_stub([0.7, 0.8, 0.6])
        )
        assert result.baseline_score == 0.7
        assert [p.name for p, _ in result.selected] == ["token_dropout"]
        assert result.best_gain == pytest.approx(0.1)

    def test_copies_options_expand_trials(self):
        ds = mini_dataset(n=30, seed=1)
        result = search_augmentation_policies(
            ds,
            [token_dropout(rate=0.2)],
            scoring_stub([0.5, 0.6, 0.7]),
            copies_options=(1, 2),
        )
        assert len(result.trials) == 2
        # Best setting (copies=2) is selected.
        assert result.selected[0][1] == 2

    def test_min_gain_threshold(self):
        ds = mini_dataset(n=30, seed=2)
        result = search_augmentation_policies(
            ds,
            [token_dropout(rate=0.2)],
            scoring_stub([0.70, 0.705]),
            min_gain=0.01,
        )
        assert result.selected == []

    def test_requires_policies(self):
        ds = mini_dataset(n=10, seed=3)
        with pytest.raises(SupervisionError):
            search_augmentation_policies(ds, [], lambda d: 0.0)

    def test_trials_record_added_counts(self):
        ds = mini_dataset(n=30, seed=4)
        result = search_augmentation_policies(
            ds, [token_dropout(rate=0.3)], scoring_stub([0.5, 0.9])
        )
        assert result.trials[0].records_added > 0

    def test_apply_selected_policies_grows_dataset(self):
        ds = mini_dataset(n=30, seed=5)
        result = search_augmentation_policies(
            ds, [token_dropout(rate=0.3)], scoring_stub([0.5, 0.9])
        )
        augmented = apply_selected_policies(ds, result)
        assert isinstance(augmented, Dataset)
        assert len(augmented) > len(ds)

    def test_apply_with_nothing_selected_is_identity(self):
        ds = mini_dataset(n=20, seed=6)
        result = search_augmentation_policies(
            ds, [token_dropout(rate=0.3)], scoring_stub([0.9, 0.1])
        )
        augmented = apply_selected_policies(ds, result)
        assert len(augmented) == len(ds)

    def test_end_to_end_with_real_training(self):
        """Smoke: the search composes with the real Overton training path."""
        from repro.core import ModelConfig, PayloadConfig, TrainerConfig
        from repro.core.overton import Overton
        from repro.training import mean_primary

        ds = mini_dataset(n=60, seed=7)
        overton = Overton(ds.schema)
        config = ModelConfig(
            payloads={
                "tokens": PayloadConfig(encoder="bow", size=8),
                "query": PayloadConfig(size=8),
                "entities": PayloadConfig(size=8),
            },
            trainer=TrainerConfig(epochs=2, batch_size=16, lr=0.05),
        )

        def train_and_score(dataset):
            trained = overton.train(dataset, config)
            return mean_primary(overton.evaluate(trained, dataset, tag="dev"))

        result = search_augmentation_policies(
            ds, [token_dropout(rate=0.2)], train_and_score
        )
        assert len(result.trials) == 1
        assert 0.0 <= result.trials[0].dev_score <= 1.0
