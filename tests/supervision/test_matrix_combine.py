"""Tests for label-matrix construction and end-to-end combination."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.errors import SupervisionError
from repro.supervision import (
    ABSTAIN,
    build_bitvector_matrices,
    build_label_matrix,
    class_weights_from_probs,
    combine_supervision,
    effective_counts,
)

from tests.fixtures import factoid_schema, sample_record


def dataset(n=4) -> Dataset:
    return Dataset(factoid_schema(), [sample_record() for _ in range(n)])


class TestBuildLabelMatrix:
    def test_singleton_multiclass(self):
        ds = dataset(3)
        matrix = build_label_matrix(ds.records, ds.schema, "Intent")
        assert matrix.votes.shape == (3, 3)  # crowd, weak1, weak2
        assert matrix.sources == ["crowd", "weak1", "weak2"]
        assert matrix.cardinality == 5
        # weak2 votes 'age' (class 1)
        j = matrix.sources.index("weak2")
        assert (matrix.votes[:, j] == 1).all()

    def test_sequence_multiclass_items_per_token(self):
        ds = dataset(2)
        matrix = build_label_matrix(ds.records, ds.schema, "POS")
        assert matrix.n_items == 16  # 8 tokens x 2 records
        assert matrix.item_index[0].tolist() == [0, 0]
        assert matrix.item_index[-1].tolist() == [1, 7]

    def test_select_matrix(self):
        ds = dataset(2)
        matrix = build_label_matrix(ds.records, ds.schema, "IntentArg")
        assert matrix.cardinality == 4  # max_members
        np.testing.assert_array_equal(matrix.item_cardinality, [2, 2])

    def test_exclude_sources(self):
        ds = dataset(1)
        matrix = build_label_matrix(
            ds.records, ds.schema, "Intent", exclude_sources=["crowd"]
        )
        assert matrix.sources == ["weak1", "weak2"]

    def test_no_sources_raises(self):
        ds = dataset(1)
        with pytest.raises(SupervisionError):
            build_label_matrix(
                ds.records,
                ds.schema,
                "Intent",
                exclude_sources=["crowd", "weak1", "weak2"],
            )

    def test_bitvector_requires_dedicated_builder(self):
        ds = dataset(1)
        with pytest.raises(SupervisionError):
            build_label_matrix(ds.records, ds.schema, "EntityType")

    def test_coverage_overlap_conflict(self):
        ds = dataset(2)
        matrix = build_label_matrix(ds.records, ds.schema, "Intent")
        np.testing.assert_allclose(matrix.coverage(), [1.0, 1.0, 1.0])
        assert matrix.overlap() == 1.0
        assert matrix.conflict() == 1.0  # weak2 disagrees on every record

    def test_empty_records(self):
        ds = dataset(1)
        matrix = build_label_matrix(ds.records[:0], ds.schema, "Intent", sources=["crowd"])
        assert matrix.n_items == 0
        assert matrix.coverage().tolist() == [0.0]
        assert matrix.overlap() == 0.0
        assert matrix.conflict() == 0.0


class TestBitvectorMatrices:
    def test_per_class_binary(self):
        ds = dataset(1)
        matrices = build_bitvector_matrices(ds.records, ds.schema, "EntityType")
        assert set(matrices) == set(ds.schema.task("EntityType").classes)
        loc = matrices["location"]
        assert loc.cardinality == 2
        # Token 7 ('us') is location+country; others 0 except title at 4.
        row_for_7 = 7
        assert loc.votes[row_for_7, 0] == 1
        assert matrices["country"].votes[row_for_7, 0] == 1
        assert matrices["person"].votes[row_for_7, 0] == 0

    def test_wrong_task_type(self):
        ds = dataset(1)
        with pytest.raises(SupervisionError):
            build_bitvector_matrices(ds.records, ds.schema, "Intent")


class TestCombineSupervision:
    def test_singleton_shapes(self):
        ds = dataset(4)
        combined = combine_supervision(ds.records, ds.schema, "Intent")
        assert combined.probs.shape == (4, 5)
        assert combined.weights.shape == (4,)
        assert combined.labeled_fraction == 1.0
        np.testing.assert_allclose(combined.probs.sum(axis=1), np.ones(4))

    def test_sequence_shapes(self):
        ds = dataset(3)
        combined = combine_supervision(ds.records, ds.schema, "POS")
        assert combined.probs.shape == (3, 12, 8)
        assert combined.weights.shape == (3, 12)
        # Padding positions carry zero weight.
        assert combined.weights[:, 8:].sum() == 0.0

    def test_select_shapes(self):
        ds = dataset(2)
        combined = combine_supervision(ds.records, ds.schema, "IntentArg")
        assert combined.probs.shape == (2, 4)
        # Invalid candidates get ~zero mass.
        assert combined.probs[:, 2:].sum() == pytest.approx(0.0, abs=1e-9)

    def test_bitvector_shapes(self):
        ds = dataset(2)
        combined = combine_supervision(ds.records, ds.schema, "EntityType")
        assert combined.probs.shape == (2, 12, 5)
        assert combined.weights.shape == (2, 12)
        et = ds.schema.task("EntityType")
        assert combined.probs[0, 7, et.class_index("location")] > 0.5

    def test_majority_method(self):
        ds = dataset(2)
        combined = combine_supervision(ds.records, ds.schema, "Intent", method="majority")
        assert combined.method == "majority"
        # 2 of 3 sources vote height -> majority height.
        height = ds.schema.task("Intent").class_index("height")
        assert combined.probs[:, height].min() > 0.5

    def test_unknown_method(self):
        ds = dataset(1)
        with pytest.raises(SupervisionError):
            combine_supervision(ds.records, ds.schema, "Intent", method="median")

    def test_source_accuracies_reported(self):
        ds = dataset(4)
        combined = combine_supervision(ds.records, ds.schema, "Intent")
        assert set(combined.source_accuracies) == {"crowd", "weak1", "weak2"}


class TestRebalancing:
    def test_rare_class_upweighted(self):
        probs = np.zeros((100, 2))
        probs[:95, 0] = 1.0
        probs[95:, 1] = 1.0
        weights = class_weights_from_probs(probs)
        assert weights[1] > weights[0]
        assert weights.mean() == pytest.approx(1.0)

    def test_max_ratio_cap(self):
        probs = np.zeros((1000, 2))
        probs[:999, 0] = 1.0
        probs[999:, 1] = 1.0
        weights = class_weights_from_probs(probs, max_ratio=5.0)
        assert weights.max() / weights.min() <= 5.0 + 1e-9

    def test_item_weights_respected(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        # Downweight the first item -> class 1 looks more common.
        weights = class_weights_from_probs(probs, item_weights=np.array([0.1, 1.0]))
        assert weights[0] > weights[1]

    def test_empty(self):
        np.testing.assert_allclose(class_weights_from_probs(np.zeros((0, 3))), np.ones(3))

    def test_requires_2d(self):
        with pytest.raises(SupervisionError):
            class_weights_from_probs(np.zeros(3))

    def test_effective_counts(self):
        probs = np.array([[0.5, 0.5], [1.0, 0.0]])
        np.testing.assert_allclose(effective_counts(probs), [1.5, 0.5])
