"""Tests for augmentation policies and synthetic-data templates."""

import numpy as np
import pytest

from repro.errors import SupervisionError
from repro.supervision import (
    AUGMENT_TAG,
    Augmenter,
    SYNTHETIC_TAG,
    Template,
    TemplateGenerator,
    synonym_swap,
    token_dropout,
)

from tests.fixtures import factoid_schema, sample_record


class TestTokenDropout:
    def test_produces_shorter_aligned_record(self):
        policy = token_dropout(rate=0.4)
        rng = np.random.default_rng(0)
        # Retry until a drop happens (policy may return None).
        new = None
        while new is None:
            new = policy.apply(sample_record(), rng)
        tokens = new.payloads["tokens"]
        assert len(tokens) < 8
        pos = new.label_from("POS", "augment:token_dropout")
        assert len(pos) == len(tokens)

    def test_lineage_and_tag(self):
        policy = token_dropout(rate=0.4)
        rng = np.random.default_rng(1)
        new = None
        while new is None:
            new = policy.apply(sample_record(), rng)
        assert new.has_tag(AUGMENT_TAG)
        assert all(
            source == "augment:token_dropout"
            for sources in new.tasks.values()
            for source in sources
        )

    def test_result_validates(self):
        policy = token_dropout(rate=0.3)
        rng = np.random.default_rng(2)
        schema = factoid_schema()
        produced = 0
        for _ in range(20):
            new = policy.apply(sample_record(), rng)
            if new is not None:
                new.validate(schema)
                produced += 1
        assert produced > 0

    def test_invalid_rate(self):
        with pytest.raises(SupervisionError):
            token_dropout(rate=0.0)

    def test_short_record_skipped(self):
        policy = token_dropout(rate=0.5)
        record = sample_record()
        record.payloads["tokens"] = ["hi", "there"]
        record.tasks = {}
        record.payloads["entities"] = []
        assert policy.apply(record, np.random.default_rng(0)) is None


class TestSynonymSwap:
    def test_swaps_known_token(self):
        policy = synonym_swap({"tall": ["high"]})
        new = policy.apply(sample_record(), np.random.default_rng(0))
        assert new.payloads["tokens"][1] == "high"

    def test_no_synonym_returns_none(self):
        policy = synonym_swap({"zzz": ["yyy"]})
        assert policy.apply(sample_record(), np.random.default_rng(0)) is None

    def test_original_untouched(self):
        policy = synonym_swap({"tall": ["high"]})
        record = sample_record()
        policy.apply(record, np.random.default_rng(0))
        assert record.payloads["tokens"][1] == "tall"


class TestAugmenter:
    def test_multiplies_data(self):
        augmenter = Augmenter([synonym_swap({"tall": ["high", "big"]})], seed=0)
        out = augmenter.augment([sample_record()] * 3, copies=2)
        assert len(out) == 6

    def test_sources_listed(self):
        augmenter = Augmenter([token_dropout()])
        (source,) = augmenter.sources()
        assert source.kind == "augmentation"


class TestTemplates:
    def make_generator(self, **kwargs):
        template = Template(
            pattern=["how", "many", "calories", "in", "{food}"],
            slots={"food": ["pizza", "a large apple"]},
            labels={"Intent": "nutrition"},
            sequence_labels={"POS": ["ADV", "ADJ", "NOUN", "ADP", None]},
            slot_sequence_labels={"POS": {"food": "NOUN"}},
        )
        return TemplateGenerator([template], slice_name="nutrition", **kwargs)

    def test_generates_labeled_records(self):
        records = self.make_generator(seed=0).generate(10)
        assert len(records) == 10
        for r in records:
            assert r.label_from("Intent", "synthetic") == "nutrition"
            assert r.has_tag(SYNTHETIC_TAG)
            assert r.has_tag("train")
            assert r.has_tag("slice:nutrition")

    def test_slot_fill_aligns_sequence_labels(self):
        records = self.make_generator(seed=1).generate(20)
        multi = [r for r in records if len(r.payloads["tokens"]) == 7]
        assert multi  # 'a large apple' fills 3 tokens
        r = multi[0]
        pos = r.label_from("POS", "synthetic")
        assert len(pos) == 7
        assert pos[4:] == ["NOUN", "NOUN", "NOUN"]

    def test_empty_templates_rejected(self):
        with pytest.raises(SupervisionError):
            TemplateGenerator([])

    def test_missing_slot_options(self):
        template = Template(pattern=["{ghost}"], slots={})
        gen = TemplateGenerator([template])
        with pytest.raises(SupervisionError):
            gen.generate(1)
