"""Tests for majority vote and the generative label model.

The central correctness property: with conditionally independent synthetic
sources of *known* accuracy, the EM label model must (a) recover those
accuracies and (b) produce better labels than majority vote.
"""

import numpy as np
import pytest

from repro.errors import SupervisionError
from repro.supervision import (
    ABSTAIN,
    LabelMatrix,
    LabelModel,
    majority_vote,
    model_confidence,
    vote_confidence,
)


def synthetic_votes(
    n: int,
    accuracies: list[float],
    coverages: list[float],
    k: int = 3,
    seed: int = 0,
) -> tuple[LabelMatrix, np.ndarray]:
    """Generate votes from sources with known accuracy/coverage."""
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, k, size=n)
    m = len(accuracies)
    votes = np.full((n, m), ABSTAIN, dtype=np.int64)
    for j, (acc, cov) in enumerate(zip(accuracies, coverages)):
        labeled = rng.random(n) < cov
        correct = rng.random(n) < acc
        wrong = (truth + 1 + rng.integers(0, k - 1, size=n)) % k
        votes[labeled & correct, j] = truth[labeled & correct]
        votes[labeled & ~correct, j] = wrong[labeled & ~correct]
    matrix = LabelMatrix(
        votes=votes,
        sources=[f"s{j}" for j in range(m)],
        cardinality=k,
        item_index=np.stack([np.arange(n), np.full(n, -1)], axis=1),
    )
    return matrix, truth


class TestMajorityVote:
    def test_unanimous(self):
        matrix = LabelMatrix(
            votes=np.array([[1, 1], [0, 0]]),
            sources=["a", "b"],
            cardinality=3,
            item_index=np.array([[0, -1], [1, -1]]),
        )
        probs = majority_vote(matrix)
        np.testing.assert_allclose(probs[0], [0, 1, 0])
        np.testing.assert_allclose(probs[1], [1, 0, 0])

    def test_tie_split(self):
        matrix = LabelMatrix(
            votes=np.array([[0, 1]]),
            sources=["a", "b"],
            cardinality=2,
            item_index=np.array([[0, -1]]),
        )
        np.testing.assert_allclose(majority_vote(matrix)[0], [0.5, 0.5])

    def test_no_votes_uniform(self):
        matrix = LabelMatrix(
            votes=np.array([[ABSTAIN, ABSTAIN]]),
            sources=["a", "b"],
            cardinality=4,
            item_index=np.array([[0, -1]]),
        )
        np.testing.assert_allclose(majority_vote(matrix)[0], [0.25] * 4)

    def test_select_restricted_to_candidates(self):
        matrix = LabelMatrix(
            votes=np.array([[ABSTAIN, ABSTAIN]]),
            sources=["a", "b"],
            cardinality=4,
            item_index=np.array([[0, -1]]),
            item_cardinality=np.array([2]),
        )
        probs = majority_vote(matrix)
        np.testing.assert_allclose(probs[0], [0.5, 0.5, 0.0, 0.0])

    def test_vote_confidence(self):
        matrix = LabelMatrix(
            votes=np.array([[0, 1], [ABSTAIN, ABSTAIN], [0, ABSTAIN]]),
            sources=["a", "b"],
            cardinality=2,
            item_index=np.stack([np.arange(3), np.full(3, -1)], axis=1),
        )
        np.testing.assert_allclose(vote_confidence(matrix), [1.0, 0.0, 0.5])


class TestLabelModel:
    def test_recovers_known_accuracies(self):
        accuracies = [0.9, 0.75, 0.6, 0.55]
        matrix, _ = synthetic_votes(
            n=4000, accuracies=accuracies, coverages=[0.9] * 4, seed=1
        )
        result = LabelModel().fit(matrix)
        np.testing.assert_allclose(result.accuracies, accuracies, atol=0.05)

    def test_beats_majority_vote(self):
        # One excellent source + three mediocre ones: majority vote gets
        # dragged down; the label model should weight the good source.
        accuracies = [0.95, 0.6, 0.6, 0.58]
        matrix, truth = synthetic_votes(
            n=3000, accuracies=accuracies, coverages=[1.0] * 4, seed=2
        )
        mv_acc = (majority_vote(matrix).argmax(axis=1) == truth).mean()
        lm_acc = (LabelModel().fit(matrix).probs.argmax(axis=1) == truth).mean()
        assert lm_acc > mv_acc + 0.02

    def test_partial_coverage(self):
        matrix, truth = synthetic_votes(
            n=3000,
            accuracies=[0.9, 0.7, 0.65],
            coverages=[0.5, 0.8, 0.3],
            seed=3,
        )
        result = LabelModel().fit(matrix)
        voted = (matrix.votes != ABSTAIN).any(axis=1)
        acc = (result.probs.argmax(axis=1) == truth)[voted].mean()
        assert acc > 0.75

    def test_skewed_prior_recovered(self):
        rng = np.random.default_rng(4)
        n, k = 4000, 2
        truth = (rng.random(n) < 0.2).astype(np.int64)  # 20% positive
        votes = np.full((n, 3), ABSTAIN, dtype=np.int64)
        for j, acc in enumerate([0.85, 0.8, 0.75]):
            correct = rng.random(n) < acc
            votes[:, j] = np.where(correct, truth, 1 - truth)
        matrix = LabelMatrix(
            votes=votes,
            sources=["a", "b", "c"],
            cardinality=k,
            item_index=np.stack([np.arange(n), np.full(n, -1)], axis=1),
        )
        result = LabelModel().fit(matrix)
        assert abs(result.prior[1] - 0.2) < 0.05

    def test_empty_matrix(self):
        matrix = LabelMatrix(
            votes=np.zeros((0, 2), dtype=np.int64),
            sources=["a", "b"],
            cardinality=3,
            item_index=np.zeros((0, 2), dtype=np.int64),
        )
        result = LabelModel().fit(matrix)
        assert result.probs.shape == (0, 3)

    def test_cardinality_must_be_at_least_two(self):
        matrix = LabelMatrix(
            votes=np.zeros((2, 1), dtype=np.int64),
            sources=["a"],
            cardinality=1,
            item_index=np.zeros((2, 2), dtype=np.int64),
        )
        with pytest.raises(SupervisionError):
            LabelModel().fit(matrix)

    def test_invalid_iterations(self):
        with pytest.raises(SupervisionError):
            LabelModel(max_iterations=0)

    def test_source_never_voting_gets_default_accuracy(self):
        votes = np.array([[0, ABSTAIN], [1, ABSTAIN], [0, ABSTAIN]])
        matrix = LabelMatrix(
            votes=votes,
            sources=["a", "silent"],
            cardinality=2,
            item_index=np.stack([np.arange(3), np.full(3, -1)], axis=1),
        )
        result = LabelModel().fit(matrix)
        assert result.accuracy_of("silent") == pytest.approx(0.5)

    def test_select_valid_mask_respected(self):
        votes = np.array([[3, ABSTAIN]])  # votes for candidate 3
        matrix = LabelMatrix(
            votes=votes,
            sources=["a", "b"],
            cardinality=5,
            item_index=np.array([[0, -1]]),
            item_cardinality=np.array([2]),  # only candidates 0,1 valid
        )
        result = LabelModel().fit(matrix)
        assert result.probs[0, 2:].sum() == pytest.approx(0.0)
        assert result.probs[0, :2].sum() == pytest.approx(1.0)

    def test_accuracy_of_unknown_source(self):
        matrix, _ = synthetic_votes(10, [0.8], [1.0])
        result = LabelModel().fit(matrix)
        with pytest.raises(ValueError):
            result.accuracy_of("nope")

    def test_log_likelihood_increases(self):
        matrix, _ = synthetic_votes(
            n=500, accuracies=[0.9, 0.7], coverages=[1.0, 1.0], seed=5
        )
        short = LabelModel(max_iterations=1).fit(matrix)
        long = LabelModel(max_iterations=50).fit(matrix)
        assert long.log_likelihood >= short.log_likelihood - 1e-9


class TestModelConfidence:
    def test_uniform_is_zero(self):
        from repro.supervision.label_model import LabelModelResult

        result = LabelModelResult(
            probs=np.array([[0.25, 0.25, 0.25, 0.25]]),
            accuracies=np.zeros(1),
            prior=np.full(4, 0.25),
            sources=["a"],
            iterations=1,
            log_likelihood=0.0,
        )
        np.testing.assert_allclose(model_confidence(result), [0.0])

    def test_certain_is_one(self):
        from repro.supervision.label_model import LabelModelResult

        result = LabelModelResult(
            probs=np.array([[1.0, 0.0]]),
            accuracies=np.zeros(1),
            prior=np.full(2, 0.5),
            sources=["a"],
            iterations=1,
            log_likelihood=0.0,
        )
        np.testing.assert_allclose(model_confidence(result), [1.0])

    def test_empty(self):
        from repro.supervision.label_model import LabelModelResult

        result = LabelModelResult(
            probs=np.zeros((0, 2)),
            accuracies=np.zeros(1),
            prior=np.full(2, 0.5),
            sources=["a"],
            iterations=0,
            log_likelihood=0.0,
        )
        assert model_confidence(result).shape == (0,)
