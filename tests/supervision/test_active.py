"""Tests for annotation targeting."""

import pytest

from repro.errors import SupervisionError
from repro.supervision import build_annotation_batch, simulate_annotation

from tests.fixtures import mini_dataset, factoid_schema, sample_record


class TestBuildAnnotationBatch:
    def test_conflicted_records_rank_first(self):
        ds = mini_dataset(n=40, seed=0, weak_noise=0.3)
        batch = build_annotation_batch(ds.records, ds.schema, "Intent")
        assert len(batch.candidates) == 40
        top = batch.top(5)
        bottom = batch.candidates[-5:]
        assert sum(c.conflict for c in top) >= sum(c.conflict for c in bottom)

    def test_priority_slice_boosted(self):
        ds = mini_dataset(n=20, seed=1)
        ds.records[3].add_tag("slice:vip")
        batch = build_annotation_batch(
            ds.records, ds.schema, "Intent", priority_slices=["vip"], slice_boost=10.0
        )
        assert batch.candidates[0].record_index == 3
        assert batch.candidates[0].in_priority_slice

    def test_uncovered_records_scored_high(self):
        ds = mini_dataset(n=10, seed=2)
        # Strip all weak supervision from one record.
        bare = ds.records[4]
        bare.tasks["Intent"] = {"gold": bare.label_from("Intent", "gold")}
        batch = build_annotation_batch(ds.records, ds.schema, "Intent")
        by_index = {c.record_index: c for c in batch.candidates}
        assert by_index[4].n_sources == 0
        assert by_index[4].score >= max(
            c.score for c in batch.candidates if c.record_index != 4
        ) - 1.0  # near the top

    def test_empty_records_rejected(self):
        ds = mini_dataset(n=5, seed=3)
        with pytest.raises(SupervisionError):
            build_annotation_batch([], ds.schema, "Intent")

    def test_bitvector_rejected(self):
        ds = mini_dataset(n=5, seed=4)
        with pytest.raises(SupervisionError):
            build_annotation_batch(ds.records, ds.schema, "EntityType")

    def test_columns_export(self):
        ds = mini_dataset(n=6, seed=5)
        batch = build_annotation_batch(ds.records, ds.schema, "Intent")
        cols = batch.to_columns()
        assert len(cols["record"]) == 6
        assert set(cols) == {
            "record", "score", "conflict", "confidence", "n_sources", "priority_slice",
        }

    def test_record_indices_top_n(self):
        ds = mini_dataset(n=10, seed=6)
        batch = build_annotation_batch(ds.records, ds.schema, "Intent")
        assert len(batch.record_indices(3)) == 3
        assert len(batch.record_indices()) == 10


class TestSimulateAnnotation:
    def test_writes_labels_with_lineage(self):
        ds = mini_dataset(n=20, seed=7)
        batch = build_annotation_batch(ds.records, ds.schema, "Intent")
        n = simulate_annotation(ds.records, batch, n=5, source_name="round1")
        assert n == 5
        labeled = [r for r in ds.records if r.label_from("Intent", "round1")]
        assert len(labeled) == 5

    def test_annotation_improves_combined_labels(self):
        """The full §2.3 loop: target conflicts -> annotate -> better labels."""
        import numpy as np
        from repro.data import extract_targets
        from repro.supervision import combine_supervision

        ds = mini_dataset(n=120, seed=8, weak_noise=0.35)
        gold = extract_targets(ds.records, ds.schema, "Intent", "gold")

        def label_accuracy():
            combined = combine_supervision(
                ds.records, ds.schema, "Intent", exclude_sources=["gold"]
            )
            return float((combined.probs.argmax(axis=1) == gold["labels"]).mean())

        before = label_accuracy()
        batch = build_annotation_batch(ds.records, ds.schema, "Intent")
        simulate_annotation(ds.records, batch, n=50, source_name="crowd_round")
        after = label_accuracy()
        assert after > before
