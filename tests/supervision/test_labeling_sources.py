"""Tests for label sources, registries, and labeling functions."""

import pytest

from repro.errors import SupervisionError
from repro.supervision import (
    LabelSource,
    LFApplier,
    SourceRegistry,
    labeling_function,
)

from tests.fixtures import factoid_schema, sample_record


class TestLabelSource:
    def test_unknown_kind(self):
        with pytest.raises(SupervisionError):
            LabelSource(name="x", kind="oracle")

    def test_is_weak(self):
        assert LabelSource(name="h", kind="heuristic").is_weak
        assert LabelSource(name="a", kind="augmentation").is_weak
        assert not LabelSource(name="c", kind="human").is_weak


class TestSourceRegistry:
    def test_register_and_get(self):
        reg = SourceRegistry([LabelSource(name="crowd", kind="human")])
        assert reg.get("crowd").kind == "human"
        assert "crowd" in reg
        assert len(reg) == 1
        assert reg.names() == ["crowd"]

    def test_duplicate_rejected(self):
        reg = SourceRegistry([LabelSource(name="x")])
        with pytest.raises(SupervisionError):
            reg.register(LabelSource(name="x"))

    def test_unregistered_defaults_to_heuristic(self):
        reg = SourceRegistry()
        assert reg.get("mystery").is_weak

    def test_weak_fraction(self):
        reg = SourceRegistry(
            [
                LabelSource(name="crowd", kind="human"),
                LabelSource(name="lf1", kind="heuristic"),
            ]
        )
        # 20 human + 80 weak labels -> 80% weak (the Fig. 3 statistic).
        assert reg.weak_fraction({"crowd": 20, "lf1": 80}) == pytest.approx(0.8)

    def test_weak_fraction_empty(self):
        assert SourceRegistry().weak_fraction({}) == 0.0


class TestLabelingFunctions:
    def test_decorator_builds_lf(self):
        @labeling_function(task="Intent", kind="heuristic")
        def lf_tall(record):
            """Height queries mention tall."""
            return "height" if "tall" in record.payloads["tokens"] else None

        assert lf_tall.name == "lf_tall"
        assert lf_tall.task == "Intent"
        assert lf_tall.source.kind == "heuristic"
        assert "tall" in lf_tall.source.description

    def test_applier_writes_with_lineage(self):
        @labeling_function(task="Intent")
        def lf_tall(record):
            return "height" if "tall" in record.payloads["tokens"] else None

        record = sample_record()
        report = LFApplier([lf_tall]).apply([record])
        assert record.label_from("Intent", "lf_tall") == "height"
        assert report.labels_written["lf_tall"] == 1
        assert report.coverage("lf_tall") == 1.0

    def test_abstain_writes_nothing(self):
        @labeling_function(task="Intent")
        def lf_never(record):
            return None

        record = sample_record()
        report = LFApplier([lf_never]).apply([record])
        assert record.label_from("Intent", "lf_never") is None
        assert report.coverage("lf_never") == 0.0

    def test_erroring_lf_counts_not_crashes(self):
        @labeling_function(task="Intent")
        def lf_broken(record):
            raise KeyError("missing field")

        report = LFApplier([lf_broken]).apply([sample_record()])
        assert report.errors["lf_broken"] == 1

    def test_strict_mode_raises(self):
        @labeling_function(task="Intent")
        def lf_broken(record):
            raise KeyError("missing field")

        with pytest.raises(KeyError):
            LFApplier([lf_broken]).apply([sample_record()], strict=True)

    def test_duplicate_names_rejected(self):
        @labeling_function(task="Intent", name="same")
        def lf_a(record):
            return None

        @labeling_function(task="Intent", name="same")
        def lf_b(record):
            return None

        with pytest.raises(SupervisionError):
            LFApplier([lf_a, lf_b])

    def test_labels_validate_against_schema(self):
        @labeling_function(task="Intent")
        def lf_tall(record):
            return "height" if "tall" in record.payloads["tokens"] else None

        record = sample_record()
        LFApplier([lf_tall]).apply([record])
        record.validate(factoid_schema())

    def test_empty_report(self):
        @labeling_function(task="Intent")
        def lf(record):
            return None

        report = LFApplier([lf]).apply([])
        assert report.coverage("lf") == 0.0
