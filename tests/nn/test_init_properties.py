"""Tests for initializers and encoder mask-invariance properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import init
from repro.nn import CNNEncoder, LSTM, MultiHeadAttention, GRU
from repro.tensor import Tensor


class TestInitializers:
    def test_xavier_bounds(self):
        w = init.xavier_uniform((100, 50), np.random.default_rng(0))
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit

    def test_kaiming_bounds(self):
        w = init.kaiming_uniform((100, 50), np.random.default_rng(0))
        limit = np.sqrt(6.0 / 100)
        assert np.abs(w).max() <= limit

    def test_orthogonal_square(self):
        q = init.orthogonal((16, 16), np.random.default_rng(0))
        np.testing.assert_allclose(q @ q.T, np.eye(16), atol=1e-10)

    def test_orthogonal_requires_2d(self):
        with pytest.raises(ValueError):
            init.orthogonal((4,), np.random.default_rng(0))

    def test_normal_std(self):
        w = init.normal((10000,), np.random.default_rng(0), std=0.02)
        assert abs(w.std() - 0.02) < 0.002

    def test_conv_fans(self):
        fan_in, fan_out = init._fans((8, 4, 3))
        assert fan_in == 4 * 3
        assert fan_out == 8 * 3

    def test_zeros(self):
        assert init.zeros((2, 2)).sum() == 0.0


class TestMaskInvariance:
    """Changing values at masked positions must not change unmasked outputs
    — the invariant that makes padding safe in every encoder."""

    def setup_inputs(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 5, 4))
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 0]], dtype=float)
        x_perturbed = x.copy()
        x_perturbed[mask == 0] += 100.0
        return x, x_perturbed, mask

    def test_lstm_mask_invariance(self):
        lstm = LSTM(4, 6, np.random.default_rng(1))
        x, xp, mask = self.setup_inputs()
        a = lstm(Tensor(x), mask).data
        b = lstm(Tensor(xp), mask).data
        # Valid positions are identical regardless of padded content.
        np.testing.assert_allclose(a[0, :3], b[0, :3], atol=1e-10)
        np.testing.assert_allclose(a[1, :4], b[1, :4], atol=1e-10)

    def test_gru_mask_invariance(self):
        gru = GRU(4, 6, np.random.default_rng(2))
        x, xp, mask = self.setup_inputs()
        a = gru(Tensor(x), mask).data
        b = gru(Tensor(xp), mask).data
        np.testing.assert_allclose(a[0, :3], b[0, :3], atol=1e-10)

    def test_cnn_mask_invariance(self):
        cnn = CNNEncoder(4, 6, np.random.default_rng(3), num_layers=1)
        x, xp, mask = self.setup_inputs()
        a = cnn(Tensor(x), mask).data
        b = cnn(Tensor(xp), mask).data
        np.testing.assert_allclose(a[0, :3], b[0, :3], atol=1e-10)

    def test_attention_mask_invariance(self):
        att = MultiHeadAttention(4, 2, np.random.default_rng(4))
        x, xp, mask = self.setup_inputs()
        a = att(Tensor(x), mask=mask).data
        b = att(Tensor(xp), mask=mask).data
        # Queries at masked positions still attend; compare only the
        # attended *keys* effect on valid query positions.
        np.testing.assert_allclose(a[0, :3], b[0, :3], atol=1e-8)


class TestEncoderDeterminism:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_weights(self, seed):
        a = LSTM(3, 4, np.random.default_rng(seed))
        b = LSTM(3, 4, np.random.default_rng(seed))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)
