"""Tests for Module/Parameter discovery, modes, and state dicts."""

import numpy as np
import pytest

from repro.errors import DeploymentError
from repro.nn import Dropout, Linear, Module, ModuleDict, Parameter, Sequential
from repro.tensor import Tensor


def make_rng():
    return np.random.default_rng(0)


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = Linear(2, 3, make_rng())
        self.extra = Parameter(np.zeros(4))
        self.in_list = [Linear(2, 2, make_rng()), Parameter(np.ones(1))]
        self.in_dict = {"a": Linear(3, 3, make_rng())}

    def forward(self, x):
        return self.inner(x)


class TestParameterDiscovery:
    def test_named_parameters_nested(self):
        names = {name for name, _ in Nested().named_parameters()}
        assert "inner.weight" in names
        assert "inner.bias" in names
        assert "extra" in names
        assert "in_list.0.weight" in names
        assert "in_list.1" in names
        assert "in_dict.a.weight" in names

    def test_num_parameters(self):
        m = Linear(2, 3, make_rng())
        assert m.num_parameters() == 2 * 3 + 3

    def test_private_attrs_skipped(self):
        m = Nested()
        m._hidden = Parameter(np.zeros(9))
        assert all(name != "_hidden" for name, _ in m.named_parameters())

    def test_zero_grad_clears_all(self):
        m = Linear(2, 2, make_rng())
        out = m(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None


class TestModes:
    def test_train_eval_recursive(self):
        seq = Sequential(Linear(2, 2, make_rng()), Dropout(0.5))
        seq.eval()
        assert not seq.layers[1].training
        seq.train()
        assert seq.layers[1].training

    def test_mode_reaches_dict_members(self):
        md = ModuleDict({"d": Dropout(0.5)})
        md.eval()
        assert not md["d"].training


class TestStateDict:
    def test_roundtrip(self):
        m1 = Linear(3, 2, make_rng())
        m2 = Linear(3, 2, np.random.default_rng(99))
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m1.weight.data, m2.weight.data)

    def test_state_dict_is_a_copy(self):
        m = Linear(2, 2, make_rng())
        state = m.state_dict()
        state["weight"][:] = 0.0
        assert m.weight.data.any()

    def test_missing_key_rejected(self):
        m = Linear(2, 2, make_rng())
        state = m.state_dict()
        del state["bias"]
        with pytest.raises(DeploymentError):
            m.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        m = Linear(2, 2, make_rng())
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(DeploymentError):
            m.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        m = Linear(2, 2, make_rng())
        state = m.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(DeploymentError):
            m.load_state_dict(state)


class TestContainers:
    def test_sequential_applies_in_order(self):
        rng = make_rng()
        seq = Sequential(Linear(2, 3, rng), Linear(3, 1, rng))
        out = seq(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)

    def test_module_dict_access(self):
        md = ModuleDict({"x": Linear(1, 1, make_rng())})
        assert "x" in md
        md["y"] = Linear(1, 1, make_rng())
        assert set(md.keys()) == {"x", "y"}
        assert len(list(md.values())) == 2
        assert len(list(md.items())) == 2

    def test_module_dict_forward_raises(self):
        with pytest.raises(NotImplementedError):
            ModuleDict()(1)

    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
