"""Tests for concrete layers: shapes, masking semantics, gradient flow."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    AttentionPooling,
    BiLSTM,
    CNNEncoder,
    Conv1d,
    Dropout,
    Embedding,
    GRU,
    LayerNorm,
    Linear,
    LSTM,
    MaxPooling,
    MeanPooling,
    MLP,
    MultiHeadAttention,
    TransformerEncoder,
    make_pooling,
)
from repro.tensor import Tensor


def rng():
    return np.random.default_rng(7)


class TestLinear:
    def test_shape(self):
        layer = Linear(4, 3, rng())
        assert layer(Tensor(np.ones((2, 4)))).shape == (2, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, rng(), bias=False)
        assert layer.bias is None
        zero_out = layer(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(zero_out.data, np.zeros((1, 3)))

    def test_activations(self):
        for act in ("relu", "tanh", "sigmoid"):
            layer = Linear(2, 2, rng(), activation=act)
            out = layer(Tensor(np.ones((1, 2))))
            assert out.shape == (1, 2)

    def test_relu_activation_nonnegative(self):
        layer = Linear(8, 8, rng(), activation="relu")
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 8))))
        assert (out.data >= 0).all()

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            Linear(2, 2, rng(), activation="gelu")

    def test_gradient_reaches_weight(self):
        layer = Linear(3, 2, rng())
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_mlp_shape(self):
        mlp = MLP(4, [8, 8], 2, rng())
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng())
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_rejected(self):
        emb = Embedding(5, 2, rng())
        with pytest.raises(ShapeError):
            emb(np.array([5]))
        with pytest.raises(ShapeError):
            emb(np.array([-1]))

    def test_pretrained_used(self):
        table = np.arange(8.0).reshape(4, 2)
        emb = Embedding(4, 2, pretrained=table)
        np.testing.assert_allclose(emb(np.array([3])).data, [[6.0, 7.0]])

    def test_pretrained_shape_checked(self):
        with pytest.raises(ShapeError):
            Embedding(4, 2, pretrained=np.zeros((3, 2)))

    def test_pretrained_copied(self):
        table = np.ones((2, 2))
        emb = Embedding(2, 2, pretrained=table)
        table[:] = 0.0
        assert emb.weight.data.sum() == 4.0

    def test_frozen_has_no_grad_path(self):
        emb = Embedding(4, 2, rng(), trainable=False)
        out = emb(np.array([0, 1]))
        assert not out.requires_grad

    def test_trainable_grad_flows(self):
        emb = Embedding(4, 2, rng())
        emb(np.array([0, 0, 1])).sum().backward()
        assert emb.weight.grad is not None
        # Row 0 looked up twice -> gradient doubled.
        np.testing.assert_allclose(emb.weight.grad[0], 2 * np.ones(2))

    def test_padding_idx_zeroed(self):
        emb = Embedding(4, 3, rng(), padding_idx=0)
        np.testing.assert_allclose(emb(np.array([0])).data, np.zeros((1, 3)))
        emb.weight.data[0] = 1.0
        emb.apply_padding_mask()
        np.testing.assert_allclose(emb.weight.data[0], np.zeros(3))

    def test_requires_rng_without_pretrained(self):
        with pytest.raises(ValueError):
            Embedding(4, 2)


class TestRecurrent:
    def test_lstm_shape(self):
        lstm = LSTM(3, 5, rng())
        out = lstm(Tensor(np.random.default_rng(1).normal(size=(2, 4, 3))))
        assert out.shape == (2, 4, 5)

    def test_lstm_mask_freezes_state(self):
        lstm = LSTM(2, 3, rng())
        x = Tensor(np.random.default_rng(2).normal(size=(1, 4, 2)))
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        out = lstm(x, mask)
        # After the mask ends, the hidden state must stop changing.
        np.testing.assert_allclose(out.data[0, 1], out.data[0, 2])
        np.testing.assert_allclose(out.data[0, 2], out.data[0, 3])

    def test_lstm_gradient_flows_through_time(self):
        lstm = LSTM(2, 3, rng())
        x = Tensor(np.random.default_rng(3).normal(size=(1, 5, 2)), requires_grad=True)
        lstm(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad[0, 0]).sum() > 0  # first step influences output

    def test_gru_shape(self):
        gru = GRU(3, 5, rng())
        out = gru(Tensor(np.random.default_rng(4).normal(size=(2, 4, 3))))
        assert out.shape == (2, 4, 5)

    def test_gru_mask_freezes_state(self):
        gru = GRU(2, 3, rng())
        x = Tensor(np.random.default_rng(5).normal(size=(1, 3, 2)))
        mask = np.array([[1.0, 0.0, 0.0]])
        out = gru(x, mask)
        np.testing.assert_allclose(out.data[0, 0], out.data[0, 1])

    def test_bilstm_shape_and_parity(self):
        bi = BiLSTM(3, 6, rng())
        out = bi(Tensor(np.random.default_rng(6).normal(size=(2, 4, 3))))
        assert out.shape == (2, 4, 6)

    def test_bilstm_odd_hidden_rejected(self):
        with pytest.raises(ValueError):
            BiLSTM(3, 5, rng())

    def test_bilstm_backward_sees_future(self):
        # Perturbing the last timestep must change the first output position
        # (through the backward direction).
        bi = BiLSTM(2, 4, rng())
        x = np.random.default_rng(7).normal(size=(1, 4, 2))
        out1 = bi(Tensor(x)).data[0, 0].copy()
        x2 = x.copy()
        x2[0, -1] += 1.0
        out2 = bi(Tensor(x2)).data[0, 0]
        assert np.abs(out1 - out2).sum() > 1e-8


class TestConv:
    def test_conv_shape(self):
        conv = Conv1d(3, 5, 3, rng())
        out = conv(Tensor(np.random.default_rng(8).normal(size=(2, 6, 3))))
        assert out.shape == (2, 6, 5)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv1d(3, 5, 4, rng())

    def test_encoder_stack(self):
        enc = CNNEncoder(3, 8, rng(), num_layers=2)
        out = enc(Tensor(np.random.default_rng(9).normal(size=(2, 5, 3))))
        assert out.shape == (2, 5, 8)

    def test_translation_locality(self):
        # A kernel of size 3 means output at position t only depends on
        # positions t-1..t+1.
        conv = Conv1d(2, 2, 3, rng())
        x = np.random.default_rng(10).normal(size=(1, 6, 2))
        base = conv(Tensor(x)).data[0, 0].copy()
        x2 = x.copy()
        x2[0, 4] += 10.0  # far from position 0
        perturbed = conv(Tensor(x2)).data[0, 0]
        np.testing.assert_allclose(base, perturbed)

    def test_mask_zeroes_padding_influence(self):
        conv = Conv1d(2, 2, 3, rng())
        x = np.random.default_rng(11).normal(size=(1, 4, 2))
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        out1 = conv(Tensor(x), mask).data[0, 0].copy()
        x2 = x.copy()
        x2[0, 2] += 5.0  # masked position adjacent to pos 1 but not pos 0... use pos 0 check
        out2 = conv(Tensor(x2), mask).data[0, 0]
        np.testing.assert_allclose(out1, out2)


class TestAttention:
    def test_self_attention_shape(self):
        att = MultiHeadAttention(8, 2, rng())
        out = att(Tensor(np.random.default_rng(12).normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_cross_attention_shape(self):
        att = MultiHeadAttention(8, 2, rng())
        q = Tensor(np.random.default_rng(13).normal(size=(2, 3, 8)))
        k = Tensor(np.random.default_rng(14).normal(size=(2, 7, 8)))
        assert att(q, k).shape == (2, 3, 8)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ShapeError):
            MultiHeadAttention(7, 2, rng())

    def test_mask_excludes_positions(self):
        att = MultiHeadAttention(4, 1, rng())
        k = np.random.default_rng(15).normal(size=(1, 4, 4))
        q = Tensor(np.random.default_rng(16).normal(size=(1, 1, 4)))
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        out1 = att(q, Tensor(k), mask).data.copy()
        k2 = k.copy()
        k2[0, 3] += 100.0  # masked key changes nothing
        out2 = att(q, Tensor(k2), mask).data
        np.testing.assert_allclose(out1, out2)

    def test_attention_pooling_shape(self):
        pool = AttentionPooling(8, 2, rng())
        out = pool(Tensor(np.random.default_rng(17).normal(size=(3, 5, 8))))
        assert out.shape == (3, 8)

    def test_transformer_encoder_shape(self):
        enc = TransformerEncoder(3, 8, rng(), num_layers=2, num_heads=2)
        out = enc(Tensor(np.random.default_rng(18).normal(size=(2, 4, 3))))
        assert out.shape == (2, 4, 8)

    def test_gradients_flow(self):
        enc = TransformerEncoder(3, 8, rng(), num_layers=1, num_heads=2)
        enc(Tensor(np.random.default_rng(19).normal(size=(1, 3, 3)))).sum().backward()
        grads = [p.grad is not None for p in enc.parameters()]
        assert all(grads)


class TestNormalizationDropout:
    def test_layernorm_zero_mean_unit_var(self):
        ln = LayerNorm(16)
        out = ln(Tensor(np.random.default_rng(20).normal(size=(4, 16)) * 5 + 3))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-8)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_layernorm_grad(self):
        ln = LayerNorm(4)
        x = Tensor(np.random.default_rng(21).normal(size=(2, 4)), requires_grad=True)
        ln(x).sum().backward()
        assert x.grad is not None

    def test_dropout_off_in_eval(self):
        d = Dropout(0.9)
        d.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(d(x).data, x.data)

    def test_dropout_active_in_train(self):
        d = Dropout(0.5, seed=1)
        out = d(Tensor(np.ones((100, 100))))
        assert (out.data == 0).any()
        # Inverted scaling preserves expectation.
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_rate_validated(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestPooling:
    def test_mean_pooling_masked(self):
        pool = MeanPooling()
        x = Tensor(np.array([[[2.0], [4.0], [100.0]]]))
        mask = np.array([[1.0, 1.0, 0.0]])
        np.testing.assert_allclose(pool(x, mask).data, [[3.0]])

    def test_mean_pooling_unmasked(self):
        pool = MeanPooling()
        x = Tensor(np.array([[[2.0], [4.0]]]))
        np.testing.assert_allclose(pool(x).data, [[3.0]])

    def test_mean_pooling_empty_mask_safe(self):
        pool = MeanPooling()
        out = pool(Tensor(np.ones((1, 3, 2))), np.zeros((1, 3)))
        np.testing.assert_allclose(out.data, np.zeros((1, 2)))

    def test_max_pooling_masked(self):
        pool = MaxPooling()
        x = Tensor(np.array([[[1.0], [5.0], [99.0]]]))
        mask = np.array([[1.0, 1.0, 0.0]])
        np.testing.assert_allclose(pool(x, mask).data, [[5.0]])

    def test_make_pooling_factory(self):
        assert isinstance(make_pooling("mean", 8, rng()), MeanPooling)
        assert isinstance(make_pooling("max", 8, rng()), MaxPooling)
        assert isinstance(make_pooling("attention", 8, rng()), AttentionPooling)
        with pytest.raises(ValueError):
            make_pooling("sum", 8, rng())

    def test_make_pooling_attention_odd_dim(self):
        pool = make_pooling("attention", 7, rng())
        out = pool(Tensor(np.random.default_rng(22).normal(size=(2, 3, 7))))
        assert out.shape == (2, 7)
