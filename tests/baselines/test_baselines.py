"""Tests for the heuristic pipeline and single-task baselines."""

import pytest

from repro.baselines import (
    HeuristicPipeline,
    evaluate_pipeline,
    single_task_schema,
    train_single_task_system,
)
from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.data.tags import slice_tag
from repro.workloads import (
    HARD_DISAMBIGUATION_SLICE,
    apply_standard_weak_supervision,
    generate_dataset,
)

from tests.fixtures import factoid_schema as small_schema


class TestHeuristicPipeline:
    def test_reasonable_aggregate_quality(self):
        ds = generate_dataset(n=300, seed=0)
        metrics = evaluate_pipeline(HeuristicPipeline(), ds.records)
        # Heuristics are decent in aggregate...
        assert metrics["Intent"] > 0.7
        assert metrics["POS"] > 0.7
        assert metrics["IntentArg"] > 0.6

    def test_fails_on_hard_slice(self):
        ds = generate_dataset(n=600, seed=1)
        hard = ds.with_tag(slice_tag(HARD_DISAMBIGUATION_SLICE))
        overall = evaluate_pipeline(HeuristicPipeline(), ds.records)
        on_hard = evaluate_pipeline(HeuristicPipeline(), hard.records)
        # ...but collapse on the rare disambiguation slice (the paper's
        # motivating failure mode).
        assert on_hard["IntentArg"] < overall["IntentArg"] - 0.2

    def test_degradation_reduces_quality(self):
        ds = generate_dataset(n=300, seed=2)
        clean = evaluate_pipeline(HeuristicPipeline(degradation=0.0), ds.records)
        degraded = evaluate_pipeline(
            HeuristicPipeline(degradation=0.3, seed=1), ds.records
        )
        assert degraded["Intent"] < clean["Intent"]

    def test_error_compounding(self):
        """Pipeline IntentArg errors include cases where typing was right
        but the intent stage failed — the compounding the paper describes."""
        ds = generate_dataset(n=400, seed=3)
        pipeline = HeuristicPipeline(degradation=0.2, seed=5)
        compounded = 0
        for r in ds.records:
            pred = pipeline.predict(r)
            if (
                pred.intent != r.label_from("Intent", "gold")
                and pred.intent_arg != r.label_from("IntentArg", "gold")
            ):
                compounded += 1
        assert compounded > 0

    def test_empty_record(self):
        from repro.data import Record

        pred = HeuristicPipeline().predict(Record(payloads={"tokens": []}))
        assert pred.intent_arg is None


class TestSingleTaskSchema:
    def test_keeps_needed_payloads_only(self):
        schema = small_schema()
        reduced = single_task_schema(schema, "Intent")
        assert reduced.task_names == ["Intent"]
        assert set(reduced.payload_names) == {"tokens", "query"}

    def test_set_task_keeps_range(self):
        schema = small_schema()
        reduced = single_task_schema(schema, "IntentArg")
        assert set(reduced.payload_names) == {"tokens", "entities"}


class TestSingleTaskSystem:
    def test_trains_and_evaluates(self):
        ds = generate_dataset(n=150, seed=4)
        apply_standard_weak_supervision(ds.records, seed=0)
        config = ModelConfig(
            payloads={
                "tokens": PayloadConfig(encoder="bow", size=8),
                "query": PayloadConfig(size=8),
                "entities": PayloadConfig(size=8),
            },
            trainer=TrainerConfig(epochs=2, batch_size=32, lr=0.05),
        )
        system = train_single_task_system(ds, config)
        assert set(system.models) == {"POS", "EntityType", "Intent", "IntentArg"}
        evals = system.evaluate(ds.split("test").records)
        assert 0.0 <= evals["Intent"].metrics["accuracy"] <= 1.0

    def test_requires_train_tag(self):
        from repro.errors import TrainingError

        ds = generate_dataset(n=20, seed=5)
        for r in ds.records:
            r.tags = ["test"]
        with pytest.raises(TrainingError):
            train_single_task_system(ds)
