"""Unit tests for repro.obs.trace: spans, rings, sampling, fan-out."""

from __future__ import annotations

import threading

import pytest

import repro.obs as obs
from repro.obs.trace import (
    NOOP_SPAN,
    JsonlSpanExporter,
    Span,
    SpanContext,
    SpanRing,
    Tracer,
    _new_id,
)


class FakeClock:
    """A deterministic clock that advances one tick per call."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture
def tracer():
    t = Tracer(clock=FakeClock(), capacity=64)
    t.enabled = True
    return t


# ----------------------------------------------------------------------
# Span & SpanContext
# ----------------------------------------------------------------------
def test_span_duration_and_dict():
    span = Span("t1", "s1", None, "work", 1.0, 3.5, {"tier": "large"})
    assert span.duration_s == 2.5
    d = span.to_dict()
    assert d["trace_id"] == "t1" and d["parent_id"] is None
    assert d["duration_s"] == 2.5 and d["attrs"] == {"tier": "large"}
    assert "links" not in d  # only present when the span fanned out


def test_span_links_serialized_and_resolved():
    span = Span(
        "t1", "s1", "p1", "batch", 0.0, 1.0,
        links=(("t2", "s2", "p2"),),
    )
    assert span.to_dict()["links"] == [["t2", "s2", "p2"]]
    # in_trace: primary identity, linked identity, absent trace.
    assert span.in_trace("t1") is span
    view = span.in_trace("t2")
    assert (view.trace_id, view.span_id, view.parent_id) == ("t2", "s2", "p2")
    assert view.name == "batch" and view.duration_s == 1.0
    assert span.in_trace("t9") is None


def test_new_ids_are_unique():
    ids = {_new_id() for _ in range(1000)}
    assert len(ids) == 1000


def test_span_context_repr_roundtrip():
    ctx = SpanContext("abc", "def")
    assert "abc" in repr(ctx) and "def" in repr(ctx)


# ----------------------------------------------------------------------
# SpanRing
# ----------------------------------------------------------------------
def test_ring_bounded_and_ordered():
    ring = SpanRing(capacity=3)
    for i in range(5):
        ring.export(Span(f"t{i}", "s", None, "op", float(i), float(i)))
    assert len(ring) == 3
    assert [s.trace_id for s in ring.spans()] == ["t2", "t3", "t4"]
    ring.clear()
    assert len(ring) == 0 and ring.trace_ids() == []


def test_ring_rejects_bad_capacity():
    with pytest.raises(ValueError):
        SpanRing(capacity=0)


def test_ring_trace_resolves_links_and_sorts():
    ring = SpanRing()
    ring.export(Span("t1", "child", "root", "late", 5.0, 6.0))
    ring.export(
        Span("tX", "shared", "pX", "batch", 1.0, 2.0,
             links=(("t1", "shared", "root"),))
    )
    ring.export(Span("t1", "root", None, "enqueue", 0.0, 7.0))
    spans = ring.trace("t1")
    assert [s.name for s in spans] == ["enqueue", "batch", "late"]
    batch = spans[1]
    assert batch.trace_id == "t1" and batch.parent_id == "root"
    assert set(ring.trace_ids()) == {"t1", "tX"}


# ----------------------------------------------------------------------
# Disabled tracer / no-op span
# ----------------------------------------------------------------------
def test_disabled_tracer_hands_out_the_shared_noop():
    t = Tracer()
    assert not t.enabled
    span = t.span("anything", tier="large")
    assert span is NOOP_SPAN
    with span as s:
        s.set(ignored=True)
        assert s.context is None and s.trace_id is None
    assert len(t.ring) == 0
    assert t.record("x", 0.0, 1.0, ctx=SpanContext("a", "b")) is None
    assert t.span_fanout("x", [SpanContext("a", "b")]) is NOOP_SPAN


# ----------------------------------------------------------------------
# Parent resolution
# ----------------------------------------------------------------------
def test_nested_spans_share_a_trace(tracer):
    with tracer.span("outer") as outer:
        assert tracer.current_trace_id() == outer.trace_id
        with tracer.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
    spans = tracer.ring.trace(outer.trace_id)
    assert [s.name for s in spans] == ["outer", "inner"]
    inner_span = spans[1]
    assert inner_span.parent_id == outer.context.span_id
    assert spans[0].parent_id is None
    assert tracer.current() is None  # stack fully unwound


def test_explicit_ctx_wins_over_stack(tracer):
    foreign = SpanContext("foreign-trace", "foreign-span")
    with tracer.span("outer"):
        with tracer.span("adopted", ctx=foreign) as child:
            assert child.trace_id == "foreign-trace"
    adopted = tracer.ring.trace("foreign-trace")[0]
    assert adopted.parent_id == "foreign-span"


def test_root_forces_a_fresh_trace(tracer):
    with tracer.span("outer") as outer:
        with tracer.span("tick", root=True) as fresh:
            assert fresh.trace_id != outer.trace_id
            assert fresh.context.span_id != outer.context.span_id


def test_child_only_without_parent_is_noop(tracer):
    assert tracer.span("encode", child_only=True) is NOOP_SPAN
    with tracer.span("parent") as parent:
        with tracer.span("encode", child_only=True) as child:
            assert child.trace_id == parent.trace_id
    assert len(tracer.ring) == 2


def test_exception_lands_in_attrs(tracer):
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("bad batch")
    span = tracer.ring.spans()[-1]
    assert span.attrs["error"] == "RuntimeError: bad batch"


def test_set_attaches_attrs_while_open(tracer):
    with tracer.span("op", tier="large") as span:
        span.set(batch_size=32)
    exported = tracer.ring.spans()[-1]
    assert exported.attrs == {"tier": "large", "batch_size": 32}


def test_injected_clock_times_spans(tracer):
    with tracer.span("timed"):
        pass
    span = tracer.ring.spans()[-1]
    assert span.end_s - span.start_s == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
def test_head_sampling_thins_new_traces(tracer):
    tracer.sample_every = 4
    kept = 0
    for _ in range(16):
        with tracer.span("request", root=True) as span:
            if span is not NOOP_SPAN:
                kept += 1
    assert kept == 4
    assert len(tracer.ring.trace_ids()) == 4


def test_children_follow_the_root_sampling_fate(tracer):
    tracer.sample_every = 2
    for _ in range(4):
        with tracer.span("request", root=True):
            # A sampled-out root leaves the stack empty, so the
            # child-only sub-operation is a no-op too.
            with tracer.span("encode", child_only=True):
                pass
    names = [s.name for s in tracer.ring.spans()]
    assert names.count("request") == 2 and names.count("encode") == 2


def test_explicit_ctx_bypasses_sampling(tracer):
    tracer.sample_every = 1000
    ctx = SpanContext("kept-trace", "kept-span")
    with tracer.span("continuation", ctx=ctx):
        pass
    assert tracer.ring.trace("kept-trace")


# ----------------------------------------------------------------------
# Fan-out
# ----------------------------------------------------------------------
def test_fanout_exports_once_with_links(tracer):
    with tracer.span("a") as a:
        ctx_a = a.context
    with tracer.span("b") as b:
        ctx_b = b.context
    with tracer.span_fanout("batch", [ctx_a, None, ctx_b], size=2):
        pass
    # One physical span, complete views in both traces.
    batch_spans = [s for s in tracer.ring.spans() if s.name == "batch"]
    assert len(batch_spans) == 1
    assert len(batch_spans[0].links) == 1
    for ctx in (ctx_a, ctx_b):
        (view,) = [
            s for s in tracer.ring.trace(ctx.trace_id) if s.name == "batch"
        ]
        assert view.parent_id == ctx.span_id
        assert view.attrs == {"size": 2}


def test_fanout_with_no_live_parent_is_noop(tracer):
    assert tracer.span_fanout("batch", [None, None]) is NOOP_SPAN
    assert tracer.span_fanout("batch", []) is NOOP_SPAN
    assert len(tracer.ring) == 0


def test_child_of_fanned_out_parent_fans_out_too(tracer):
    with tracer.span("a") as a:
        ctx_a = a.context
    with tracer.span("b") as b:
        ctx_b = b.context
    with tracer.span_fanout("batch", [ctx_a, ctx_b]):
        with tracer.span("replica.serve"):
            pass
    for ctx in (ctx_a, ctx_b):
        names = [s.name for s in tracer.ring.trace(ctx.trace_id)]
        assert "replica.serve" in names


# ----------------------------------------------------------------------
# record() — pre-timed spans (queue waits)
# ----------------------------------------------------------------------
def test_record_exports_a_finished_span(tracer):
    with tracer.span("root") as root:
        ctx = root.context
    span = tracer.record("queue.wait", 10.0, 12.0, ctx=ctx, tier="small")
    assert span.duration_s == 2.0 and span.parent_id == ctx.span_id
    assert span.attrs == {"tier": "small"}
    assert tracer.record("queue.wait", 0.0, 1.0, ctx=None) is None


# ----------------------------------------------------------------------
# Cross-thread propagation
# ----------------------------------------------------------------------
def test_context_crosses_threads(tracer):
    with tracer.span("submit") as root:
        ctx = root.context
    done = threading.Event()

    def worker() -> None:
        with tracer.span("serve", ctx=ctx):
            pass
        done.set()

    threading.Thread(target=worker).start()
    assert done.wait(timeout=5)
    names = [s.name for s in tracer.ring.trace(ctx.trace_id)]
    assert names == ["submit", "serve"]


def test_stacks_are_thread_local(tracer):
    seen: dict[str, str | None] = {}

    def worker() -> None:
        seen["other"] = tracer.current_trace_id()

    with tracer.span("main-only"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
        seen["main"] = tracer.current_trace_id()
    assert seen["other"] is None
    assert seen["main"] is not None


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_jsonl_exporter_roundtrip(tmp_path, tracer):
    path = tmp_path / "spans" / "trace.jsonl"
    exporter = JsonlSpanExporter(path)
    tracer.add_exporter(exporter)
    with tracer.span("persisted", tier="large"):
        pass
    tracer.remove_exporter(exporter)
    with tracer.span("not-persisted"):
        pass
    rows = JsonlSpanExporter.read(path)
    assert len(rows) == 1
    assert rows[0]["name"] == "persisted"
    assert rows[0]["attrs"] == {"tier": "large"}
    assert rows[0]["duration_s"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Module-level conveniences against the global tracer
# ----------------------------------------------------------------------
def test_traced_decorator_is_late_binding():
    calls = []

    @obs.traced("custom.name", kind="test")
    def work(x):
        calls.append(obs.current_trace_id())
        return x + 1

    assert work(1) == 2  # tracing off: no span, still runs
    assert calls == [None]
    with obs.activated():
        assert work(2) == 3
        span = obs.get_tracer().ring.spans()[-1]
        assert span.name == "custom.name" and span.attrs == {"kind": "test"}
        assert calls[-1] == span.trace_id


def test_traced_default_label_is_qualname():
    @obs.traced()
    def some_function():
        return None

    with obs.activated():
        some_function()
        assert "some_function" in obs.get_tracer().ring.spans()[-1].name


def test_module_level_span_uses_global_tracer():
    with obs.activated():
        with obs.span("global.op") as span:
            assert obs.current_trace_id() == span.trace_id
        assert obs.get_tracer().ring.trace(span.trace_id)


# ----------------------------------------------------------------------
# The global switch
# ----------------------------------------------------------------------
def test_enable_disable_flip_both_pillars():
    tracer, registry = obs.get_tracer(), obs.get_registry()
    assert not obs.is_active()
    obs.enable(sample_every=8)
    try:
        assert tracer.enabled and registry.enabled and obs.is_active()
        assert tracer.sample_every == 8
    finally:
        obs.disable()
    assert not tracer.enabled and not registry.enabled


def test_activated_restores_state_and_clears_data():
    tracer, registry = obs.get_tracer(), obs.get_registry()
    tracer.sample_every = 7
    with obs.activated():
        assert tracer.enabled and tracer.sample_every == 1
        with obs.span("scoped"):
            pass
        registry.counter("obs_test_scoped_total").inc()
        assert len(tracer.ring) == 1
    assert not tracer.enabled and not registry.enabled
    assert tracer.sample_every == 7
    assert len(tracer.ring) == 0
    assert registry.get("obs_test_scoped_total").value() == 0.0
    tracer.sample_every = 1
