"""Unit tests for repro.obs.metrics: instruments, labels, registry."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)


@pytest.fixture
def registry():
    r = MetricsRegistry()
    r.enabled = True
    return r


# ----------------------------------------------------------------------
# Counter
# ----------------------------------------------------------------------
def test_counter_accumulates_per_label_combination(registry):
    c = registry.counter("requests_total", "reqs", labels=("tier", "result"))
    c.inc(tier="large", result="ok")
    c.inc(2.5, tier="large", result="ok")
    c.inc(tier="small", result="error")
    assert c.value(tier="large", result="ok") == 3.5
    assert c.value(tier="small", result="error") == 1.0
    assert c.value(tier="small", result="ok") == 0.0
    assert c.samples() == [
        (("large", "ok"), 3.5),
        (("small", "error"), 1.0),
    ]


def test_counter_rejects_decrease(registry):
    c = registry.counter("ops_total")
    with pytest.raises(ObservabilityError):
        c.inc(-1)


def test_counter_label_values_coerced_to_str(registry):
    c = registry.counter("sized_total", labels=("size",))
    c.inc(size=32)
    assert c.value(size="32") == 1.0


def test_disabled_registry_drops_observations():
    r = MetricsRegistry()
    c = r.counter("quiet_total")
    g = r.gauge("quiet")
    h = r.histogram("quiet_s")
    c.inc()
    g.set(5)
    h.observe(1.0)
    h.observe_many([1.0, 2.0])
    assert c.value() == 0.0
    assert g.value() == 0.0
    assert h.value()["count"] == 0


def test_label_strictness(registry):
    c = registry.counter("strict_total", labels=("tier",))
    with pytest.raises(ObservabilityError):
        c.inc()  # missing
    with pytest.raises(ObservabilityError):
        c.inc(role="stable")  # wrong name
    with pytest.raises(ObservabilityError):
        c.inc(tier="large", role="stable")  # extra
    unlabeled = registry.counter("plain_total")
    with pytest.raises(ObservabilityError):
        unlabeled.inc(tier="large")


# ----------------------------------------------------------------------
# Gauge
# ----------------------------------------------------------------------
def test_gauge_set_inc_dec(registry):
    g = registry.gauge("queue_depth", labels=("tier",))
    g.set(5, tier="large")
    g.inc(2, tier="large")
    g.dec(tier="large")
    assert g.value(tier="large") == 6.0
    g.set(0.5, tier="large")
    assert g.value(tier="large") == 0.5


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_exponential_buckets_shape():
    b = exponential_buckets(0.001, 2.0, 4)
    assert b == (0.001, 0.002, 0.004, 0.008)
    for bad in [(0, 2, 4), (0.001, 1.0, 4), (0.001, 2.0, 0)]:
        with pytest.raises(ObservabilityError):
            exponential_buckets(*bad)


def test_histogram_places_observations(registry):
    h = registry.histogram("latency_s", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.1, 0.5, 2.0, 100.0):
        h.observe(v)
    snap = h.value()
    # bisect_left: a value equal to a bound lands in that bound's bucket.
    assert snap["buckets"] == [2, 1, 1, 1]  # last slot is +Inf overflow
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(102.65)


def test_histogram_unseen_labels_are_zero(registry):
    h = registry.histogram("empty_s", labels=("tier",), buckets=(1.0,))
    assert h.value(tier="ghost") == {"count": 0, "sum": 0.0, "buckets": [0, 0]}


def test_observe_many_matches_observe_loop(registry):
    values = [0.05, 0.3, 0.3, 4.0, 99.0]
    one = registry.histogram("one_s", labels=("tier",), buckets=(0.1, 1.0, 10.0))
    many = registry.histogram("many_s", labels=("tier",), buckets=(0.1, 1.0, 10.0))
    for v in values:
        one.observe(v, tier="large")
    many.observe_many(values, tier="large")
    assert one.value(tier="large") == many.value(tier="large")
    many.observe_many([], tier="large")  # no-op, no new series surprises
    assert many.value(tier="large")["count"] == len(values)


def test_histogram_rejects_unsorted_buckets(registry):
    for bad in [(1.0, 0.5), (1.0, 1.0, 2.0)]:
        with pytest.raises(ObservabilityError):
            registry.histogram(f"bad_{len(bad)}_s", buckets=bad)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_get_or_create_is_idempotent(registry):
    a = registry.counter("same_total", "first", labels=("tier",))
    b = registry.counter("same_total", "second", labels=("tier",))
    assert a is b
    assert registry.get("same_total") is a
    assert registry.get("missing") is None


def test_kind_and_label_conflicts_raise(registry):
    registry.counter("conflict_total", labels=("tier",))
    with pytest.raises(ObservabilityError):
        registry.gauge("conflict_total")
    with pytest.raises(ObservabilityError):
        registry.counter("conflict_total", labels=("role",))


def test_snapshot_is_jsonable_and_ordered(registry):
    registry.counter("first_total", "a").inc(3)
    registry.gauge("second", "b", labels=("tier",)).set(1, tier="x")
    registry.histogram("third_s", "c", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert [e["name"] for e in snap] == ["first_total", "second", "third_s"]
    assert snap[0]["samples"] == [{"labels": {}, "value": 3.0}]
    assert snap[1]["samples"] == [{"labels": {"tier": "x"}, "value": 1.0}]
    assert snap[2]["buckets"] == [1.0]
    assert snap[2]["samples"][0]["value"]["count"] == 1


def test_reset_zeroes_but_keeps_instruments(registry):
    c = registry.counter("kept_total")
    c.inc(5)
    registry.reset()
    assert registry.get("kept_total") is c
    assert c.value() == 0.0


def test_counter_is_thread_safe(registry):
    c = registry.counter("contended_total", labels=("tier",))
    n, per = 8, 500

    def hammer() -> None:
        for _ in range(per):
            c.inc(tier="large")

    threads = [threading.Thread(target=hammer) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value(tier="large") == n * per


def test_instrument_classes_report_their_kind(registry):
    assert isinstance(registry.counter("k_total"), Counter)
    assert isinstance(registry.gauge("k_gauge"), Gauge)
    assert isinstance(registry.histogram("k_s"), Histogram)
    assert (
        registry.get("k_total").kind,
        registry.get("k_gauge").kind,
        registry.get("k_s").kind,
    ) == ("counter", "gauge", "histogram")
