"""Unit tests for repro.obs.expo: Prometheus text-format rendering."""

from __future__ import annotations

import math

import pytest

from repro.obs.expo import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    r = MetricsRegistry()
    r.enabled = True
    return r


def test_content_type_pins_the_exposition_version():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_empty_registry_renders_empty(registry):
    assert render_prometheus(registry) == ""


def test_counter_family(registry):
    c = registry.counter("requests_total", "Requests served.", labels=("tier",))
    c.inc(3, tier="large")
    c.inc(tier="small")
    text = render_prometheus(registry)
    lines = text.splitlines()
    assert lines[0] == "# HELP requests_total Requests served."
    assert lines[1] == "# TYPE requests_total counter"
    assert 'requests_total{tier="large"} 3' in lines
    assert 'requests_total{tier="small"} 1' in lines
    assert text.endswith("\n")


def test_unlabeled_gauge_has_no_braces(registry):
    registry.gauge("queue_depth", "Now.").set(7)
    assert "queue_depth 7" in render_prometheus(registry).splitlines()


def test_histogram_buckets_are_cumulative_with_inf(registry):
    h = registry.histogram("latency_s", "Latency.", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    lines = render_prometheus(registry).splitlines()
    assert 'latency_s_bucket{le="0.1"} 1' in lines
    assert 'latency_s_bucket{le="1"} 3' in lines
    assert 'latency_s_bucket{le="+Inf"} 4' in lines
    assert "latency_s_count 4" in lines
    sum_line = next(l for l in lines if l.startswith("latency_s_sum"))
    assert float(sum_line.split()[-1]) == pytest.approx(6.05)


def test_histogram_labels_compose_with_le(registry):
    h = registry.histogram("lat_s", labels=("tier",), buckets=(1.0,))
    h.observe(0.5, tier="large")
    lines = render_prometheus(registry).splitlines()
    assert 'lat_s_bucket{tier="large",le="1"} 1' in lines
    assert 'lat_s_bucket{tier="large",le="+Inf"} 1' in lines
    assert 'lat_s_sum{tier="large"} 0.5' in lines
    assert 'lat_s_count{tier="large"} 1' in lines


def test_label_value_escaping(registry):
    c = registry.counter("weird_total", labels=("path",))
    c.inc(path='a"b\\c\nd')
    line = render_prometheus(registry).splitlines()[-1]
    assert line == 'weird_total{path="a\\"b\\\\c\\nd"} 1'


def test_help_escaping(registry):
    registry.counter("h_total", "line one\nline two \\ slash")
    text = render_prometheus(registry)
    assert "# HELP h_total line one\\nline two \\\\ slash" in text


def test_value_formatting(registry):
    g = registry.gauge("vals", labels=("k",))
    g.set(2.0, k="int")          # integral floats render as integers
    g.set(0.25, k="frac")
    g.set(math.inf, k="inf")
    g.set(-math.inf, k="ninf")
    lines = render_prometheus(registry).splitlines()
    assert 'vals{k="int"} 2' in lines
    assert 'vals{k="frac"} 0.25' in lines
    assert 'vals{k="inf"} +Inf' in lines
    assert 'vals{k="ninf"} -Inf' in lines


def test_families_render_in_registration_order(registry):
    registry.counter("b_total").inc()
    registry.gauge("a").set(1)
    text = render_prometheus(registry)
    assert text.index("b_total") < text.index("# HELP a ")


def test_defaults_to_global_registry():
    # Global registry is disabled in tests: series are empty but the
    # render call itself must not blow up.
    assert isinstance(render_prometheus(), str)
