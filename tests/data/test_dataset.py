"""Tests for Dataset, tags, vocabs, and JSONL round trips."""

import numpy as np
import pytest

from repro.data import Dataset, Record, read_records, write_records
from repro.errors import DataError

from tests.fixtures import factoid_schema, sample_record


def make_dataset(n: int = 5) -> Dataset:
    return Dataset(factoid_schema(), [sample_record() for _ in range(n)])


class TestDatasetBasics:
    def test_len_iter_getitem(self):
        ds = make_dataset(3)
        assert len(ds) == 3
        assert sum(1 for _ in ds) == 3
        assert ds[0].payloads["tokens"][0] == "how"

    def test_validation_reports_record_index(self):
        bad = sample_record()
        bad.tasks["Intent"]["weak1"] = "weather"
        with pytest.raises(DataError, match="record 1"):
            Dataset(factoid_schema(), [sample_record(), bad])

    def test_validate_skippable(self):
        bad = sample_record()
        bad.tasks["Intent"]["weak1"] = "weather"
        ds = Dataset(factoid_schema(), [bad], validate=False)
        assert len(ds) == 1

    def test_subset(self):
        ds = make_dataset(5)
        sub = ds.subset([0, 2])
        assert len(sub) == 2

    def test_file_roundtrip(self, tmp_path):
        ds = make_dataset(4)
        path = tmp_path / "data.jsonl"
        assert ds.save(path) == 4
        again = Dataset.from_file(factoid_schema(), path)
        assert len(again) == 4
        assert again[0].to_dict() == ds[0].to_dict()


class TestJsonl:
    def test_read_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            list(read_records(tmp_path / "missing.jsonl"))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text(sample_record().to_json() + "\n\n" + sample_record().to_json() + "\n")
        assert len(list(read_records(path))) == 2

    def test_error_includes_line_number(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text(sample_record().to_json() + "\n{broken\n")
        with pytest.raises(DataError, match=":2:"):
            list(read_records(path))

    def test_write_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "data.jsonl"
        assert write_records(path, [sample_record()]) == 1
        assert path.exists()


class TestSplitsAndTags:
    def test_ensure_splits_assigns_missing(self):
        records = [sample_record() for _ in range(50)]
        for r in records:
            r.tags = []
        ds = Dataset(factoid_schema(), records)
        ds.ensure_splits(np.random.default_rng(0))
        table = ds.tag_table()
        total = table.count("train") + table.count("dev") + table.count("test")
        assert total == 50
        assert table.count("train") > table.count("test")

    def test_ensure_splits_respects_existing(self):
        ds = make_dataset(3)  # all tagged 'train' by fixture
        ds.ensure_splits(np.random.default_rng(0))
        assert ds.tag_table().count("train") == 3

    def test_with_tag_and_split(self):
        ds = make_dataset(3)
        ds[0].add_tag("slice:rare")
        assert len(ds.with_tag("slice:rare")) == 1
        assert len(ds.split("train")) == 3

    def test_apply_slice(self):
        ds = make_dataset(4)
        count = ds.apply_slice("short", lambda r: len(r.payloads["tokens"]) < 100)
        assert count == 4
        assert ds.tag_table().count("slice:short") == 4


class TestVocabsAndStats:
    def test_build_vocabs_covers_symbol_payloads(self):
        vocabs = make_dataset(2).build_vocabs()
        assert set(vocabs) == {"tokens", "entities"}
        assert vocabs["tokens"].id("how") >= 2
        assert vocabs["entities"].id("United_States") >= 2

    def test_sources_for_task(self):
        ds = make_dataset(2)
        assert ds.sources_for_task("Intent") == ["crowd", "weak1", "weak2"]

    def test_supervision_stats(self):
        ds = make_dataset(3)
        stats = ds.supervision_stats()
        assert stats["Intent"]["crowd"] == 3
        assert stats["POS"]["spacy"] == 3
