"""Tests for the mmap row store and the comparison column store."""

import pytest

from repro.data import ColumnStore, Record, RowStore
from repro.errors import DataError

from tests.fixtures import sample_record


def records(n: int) -> list[Record]:
    out = []
    for i in range(n):
        r = sample_record()
        r.add_tag(f"id:{i}")
        out.append(r)
    return out


class TestRowStore:
    def test_write_read_roundtrip(self, tmp_path):
        rs = RowStore.write(tmp_path / "data.ovr", records(5))
        assert len(rs) == 5
        assert rs[3].has_tag("id:3")
        rs.close()

    def test_iteration(self, tmp_path):
        rs = RowStore.write(tmp_path / "data.ovr", records(4))
        assert sum(1 for _ in rs) == 4
        rs.close()

    def test_out_of_range(self, tmp_path):
        rs = RowStore.write(tmp_path / "data.ovr", records(2))
        with pytest.raises(IndexError):
            rs[2]
        with pytest.raises(IndexError):
            rs[-1]
        rs.close()

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            RowStore(tmp_path / "missing.ovr")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.ovr"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(DataError, match="magic"):
            RowStore(path)

    def test_context_manager(self, tmp_path):
        with RowStore.write(tmp_path / "data.ovr", records(1)) as rs:
            assert len(rs) == 1

    def test_read_bytes_is_json(self, tmp_path):
        import json

        rs = RowStore.write(tmp_path / "data.ovr", records(1))
        payload = json.loads(rs.read_bytes(0))
        assert "payloads" in payload
        rs.close()

    def test_empty_store(self, tmp_path):
        rs = RowStore.write(tmp_path / "data.ovr", [])
        assert len(rs) == 0
        rs.close()


class TestColumnStore:
    def test_write_read_roundtrip(self, tmp_path):
        cs = ColumnStore.write(tmp_path / "cols", records(5))
        assert len(cs) == 5
        rec = cs[2]
        assert rec.has_tag("id:2")
        assert rec.tasks["Intent"]["crowd"] == "height"

    def test_missing_store(self, tmp_path):
        with pytest.raises(DataError):
            ColumnStore(tmp_path / "nope")

    def test_out_of_range(self, tmp_path):
        cs = ColumnStore.write(tmp_path / "cols", records(2))
        with pytest.raises(IndexError):
            cs[5]

    def test_drop_cache_forces_reload(self, tmp_path):
        cs = ColumnStore.write(tmp_path / "cols", records(2))
        _ = cs[0]
        assert cs._columns
        cs.drop_cache()
        assert not cs._columns

    def test_stores_agree(self, tmp_path):
        data = records(6)
        rs = RowStore.write(tmp_path / "data.ovr", data)
        cs = ColumnStore.write(tmp_path / "cols", data)
        for i in range(6):
            assert rs[i].to_dict() == cs[i].to_dict()
        rs.close()
