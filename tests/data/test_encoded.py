"""EncodedDataset: cached encodings must be indistinguishable from fresh ones."""

import numpy as np

from repro.data import EncodedDataset, encode_inputs, encoding_fingerprint
from tests.fixtures import factoid_schema, mini_dataset


def setup_data(n=30):
    dataset = mini_dataset(n=n, seed=3)
    return dataset.records, dataset.schema, dataset.build_vocabs()


class TestBatchParity:
    def assert_batches_equal(self, a, b):
        np.testing.assert_array_equal(a.indices, b.indices)
        assert set(a.payloads) == set(b.payloads)
        for name, pa in a.payloads.items():
            pb = b.payloads[name]
            for field in (
                "ids",
                "mask",
                "member_ids",
                "spans",
                "member_mask",
                "features",
            ):
                va, vb = getattr(pa, field), getattr(pb, field)
                assert (va is None) == (vb is None), (name, field)
                if va is not None:
                    np.testing.assert_array_equal(va, vb, err_msg=f"{name}.{field}")

    def test_sliced_batches_match_fresh_encoding(self):
        records, schema, vocabs = setup_data()
        encoded = EncodedDataset(records, schema, vocabs)
        for idx in (np.arange(5), np.array([7, 2, 19, 2]), np.array([29])):
            fresh = encode_inputs(
                [records[int(i)] for i in idx], schema, vocabs, indices=idx
            )
            self.assert_batches_equal(encoded.batch(idx), fresh)

    def test_full_batch_matches(self):
        records, schema, vocabs = setup_data()
        encoded = EncodedDataset(records, schema, vocabs)
        self.assert_batches_equal(
            encoded.full_batch(), encode_inputs(records, schema, vocabs)
        )
        assert len(encoded) == len(records)


class TestFingerprint:
    def test_stable_for_same_inputs(self):
        records, schema, vocabs = setup_data()
        assert encoding_fingerprint(schema, vocabs) == encoding_fingerprint(
            factoid_schema(), vocabs
        )

    def test_vocab_growth_invalidates(self):
        records, schema, vocabs = setup_data()
        encoded = EncodedDataset(records, schema, vocabs)
        assert encoded.is_current(schema, vocabs)
        vocabs["tokens"].add("a-brand-new-token")
        assert not encoded.is_current(schema, vocabs)


class TestGoldTargets:
    def test_matches_fresh_extraction_and_memoizes(self):
        from repro.data import extract_targets

        records, schema, vocabs = setup_data()
        encoded = EncodedDataset(records, schema, vocabs)
        for task in schema.tasks:
            cached = encoded.gold_targets(task.name, "gold")
            fresh = extract_targets(records, schema, task.name, "gold")
            for key in fresh:
                np.testing.assert_array_equal(cached[key], fresh[key])
            # Second call returns the memoized object, no re-extraction.
            assert encoded.gold_targets(task.name, "gold") is cached
