"""Tests for vocabularies and the tag table."""

import numpy as np
import pytest

from repro.data import (
    PAD,
    TagTable,
    UNK,
    Vocab,
    assign_splits,
    is_slice_tag,
    slice_name,
    slice_tag,
)


class TestVocab:
    def test_reserved_entries(self):
        v = Vocab()
        assert v.id(PAD) == 0
        assert v.id(UNK) == 1
        assert len(v) == 2

    def test_add_and_lookup(self):
        v = Vocab()
        idx = v.add("hello")
        assert v.id("hello") == idx
        assert v.symbol(idx) == "hello"
        assert v.add("hello") == idx  # idempotent

    def test_unseen_maps_to_unk(self):
        v = Vocab(["a"])
        assert v.id("zzz") == v.unk_id

    def test_ids_batch(self):
        v = Vocab(["a", "b"])
        assert v.ids(["a", "b", "c"]) == [2, 3, 1]

    def test_contains(self):
        v = Vocab(["a"])
        assert "a" in v
        assert "b" not in v

    def test_build_frequency_order(self):
        v = Vocab.build([["b", "a", "b"], ["b", "a", "c"]])
        # b (3) before a (2) before c (1)
        assert v.id("b") < v.id("a") < v.id("c")

    def test_build_min_count(self):
        v = Vocab.build([["a", "a", "b"]], min_count=2)
        assert "a" in v
        assert "b" not in v

    def test_save_load(self, tmp_path):
        v = Vocab(["x", "y"])
        path = tmp_path / "vocab.json"
        v.save(path)
        again = Vocab.load(path)
        assert again.id("y") == v.id("y")
        assert len(again) == len(v)


class TestSliceTags:
    def test_roundtrip(self):
        tag = slice_tag("nutrition")
        assert is_slice_tag(tag)
        assert slice_name(tag) == "nutrition"

    def test_slice_name_rejects_plain_tag(self):
        with pytest.raises(ValueError):
            slice_name("train")


class TestAssignSplits:
    def test_proportions(self):
        splits = assign_splits(10_000, np.random.default_rng(0), train=0.8, dev=0.1)
        counts = {s: splits.count(s) for s in ("train", "dev", "test")}
        assert abs(counts["train"] / 10_000 - 0.8) < 0.02
        assert abs(counts["dev"] / 10_000 - 0.1) < 0.02

    def test_invalid_proportions(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            assign_splits(10, rng, train=0.9, dev=0.2)
        with pytest.raises(ValueError):
            assign_splits(10, rng, train=0.0)


class TestTagTable:
    def test_mask_indices_count(self):
        table = TagTable([["train"], ["test"], ["train", "slice:a"]])
        np.testing.assert_array_equal(table.mask("train"), [True, False, True])
        np.testing.assert_array_equal(table.indices("train"), [0, 2])
        assert table.count("slice:a") == 1

    def test_all_tags_sorted(self):
        table = TagTable([["z"], ["a"]])
        assert table.all_tags == ["a", "z"]

    def test_slice_tags(self):
        table = TagTable([["train", "slice:b"], ["slice:a"]])
        assert table.slice_tags() == ["slice:a", "slice:b"]

    def test_to_columns_pandas_compatible(self):
        table = TagTable([["train"], ["test"]])
        cols = table.to_columns()
        assert cols["record"] == [0, 1]
        assert cols["train"] == [True, False]
        assert cols["test"] == [False, True]
        lengths = {len(v) for v in cols.values()}
        assert lengths == {2}

    def test_len(self):
        assert len(TagTable([[], []])) == 2
