"""Tests for input encoding, batch iteration, and gold-target extraction."""

import numpy as np
import pytest

from repro.data import Dataset, encode_inputs, extract_targets, iterate_batches
from repro.errors import DataError

from tests.fixtures import factoid_schema, sample_record


def dataset(n=3):
    return Dataset(factoid_schema(), [sample_record() for _ in range(n)])


class TestEncodeInputs:
    def test_sequence_payload_arrays(self):
        ds = dataset(2)
        vocabs = ds.build_vocabs()
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        tokens = batch.payloads["tokens"]
        assert tokens.ids.shape == (2, 12)  # padded to max_length
        assert tokens.mask.shape == (2, 12)
        assert tokens.mask[0].sum() == 8  # 8 real tokens
        assert tokens.ids[0, 8:].sum() == 0  # padding ids

    def test_set_payload_arrays(self):
        ds = dataset(2)
        batch = encode_inputs(ds.records, ds.schema, ds.build_vocabs())
        ents = batch.payloads["entities"]
        assert ents.member_ids.shape == (2, 4)
        assert ents.spans.shape == (2, 4, 2)
        assert ents.member_mask[0].sum() == 2  # two candidates
        np.testing.assert_array_equal(ents.spans[0, 0], [4, 5])

    def test_derived_payload_not_encoded(self):
        ds = dataset(1)
        batch = encode_inputs(ds.records, ds.schema, ds.build_vocabs())
        assert "query" not in batch.payloads

    def test_missing_vocab_rejected(self):
        ds = dataset(1)
        with pytest.raises(DataError, match="vocabulary"):
            encode_inputs(ds.records, ds.schema, {})

    def test_unknown_token_becomes_unk(self):
        ds = dataset(1)
        vocabs = ds.build_vocabs()
        ds.records[0].payloads["tokens"][0] = "xylophone"
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        assert batch.payloads["tokens"].ids[0, 0] == vocabs["tokens"].unk_id

    def test_batch_size_property(self):
        ds = dataset(3)
        batch = encode_inputs(ds.records, ds.schema, ds.build_vocabs())
        assert batch.size == 3

    def test_raw_singleton_features(self):
        from repro.core import Schema
        from repro.data import Record

        schema = Schema.from_dict(
            {
                "payloads": {"feat": {"type": "singleton", "dim": 3}},
                "tasks": {
                    "T": {"payload": "feat", "type": "multiclass", "classes": ["a", "b"]}
                },
            }
        )
        record = Record.from_dict(
            {"payloads": {"feat": [1.0, 2.0, 3.0]}, "tasks": {"T": {"gold": "a"}}}
        )
        batch = encode_inputs([record], schema, {})
        np.testing.assert_allclose(batch.payloads["feat"].features, [[1.0, 2.0, 3.0]])


class TestIterateBatches:
    def test_covers_everything_once(self):
        seen = np.concatenate(list(iterate_batches(10, 3)))
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_shuffled_with_rng(self):
        batches = list(iterate_batches(100, 100, rng=np.random.default_rng(0)))
        assert not np.array_equal(batches[0], np.arange(100))

    def test_sequential_without_rng(self):
        batches = list(iterate_batches(5, 2))
        np.testing.assert_array_equal(batches[0], [0, 1])
        np.testing.assert_array_equal(batches[2], [4])

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_batches(5, 0))


class TestExtractTargets:
    def test_multiclass_singleton(self):
        ds = dataset(2)
        out = extract_targets(ds.records, ds.schema, "Intent", "crowd")
        assert out["labels"].tolist() == [0, 0]  # 'height' is class 0
        assert out["valid"].all()

    def test_missing_source_invalid(self):
        ds = dataset(2)
        out = extract_targets(ds.records, ds.schema, "Intent", "nobody")
        assert not out["valid"].any()

    def test_multiclass_sequence(self):
        ds = dataset(1)
        out = extract_targets(ds.records, ds.schema, "POS", "spacy")
        assert out["labels"].shape == (1, 12)
        assert out["valid"][0, :8].all()
        assert not out["valid"][0, 8:].any()
        # First POS label is ADV
        assert out["labels"][0, 0] == ds.schema.task("POS").class_index("ADV")

    def test_bitvector_sequence(self):
        ds = dataset(1)
        out = extract_targets(ds.records, ds.schema, "EntityType", "eproj")
        assert out["labels"].shape == (1, 12, 5)
        et = ds.schema.task("EntityType")
        assert out["labels"][0, 7, et.class_index("location")] == 1.0
        assert out["labels"][0, 7, et.class_index("country")] == 1.0
        assert out["labels"][0, 0].sum() == 0.0
        assert out["valid"][0, 0]  # empty list still counts as labeled

    def test_select(self):
        ds = dataset(2)
        out = extract_targets(ds.records, ds.schema, "IntentArg", "crowd")
        assert out["labels"].tolist() == [0, 0]
        assert out["valid"].all()

    def test_bitvector_singleton(self):
        from repro.core import Schema
        from repro.data import Record

        schema = Schema.from_dict(
            {
                "payloads": {"feat": {"type": "singleton", "dim": 2}},
                "tasks": {
                    "Flags": {
                        "payload": "feat",
                        "type": "bitvector",
                        "classes": ["x", "y", "z"],
                    }
                },
            }
        )
        record = Record.from_dict(
            {"payloads": {"feat": [0.0, 0.0]}, "tasks": {"Flags": {"g": ["x", "z"]}}}
        )
        out = extract_targets([record], schema, "Flags", "g")
        np.testing.assert_allclose(out["labels"], [[1.0, 0.0, 1.0]])
        assert out["valid"].all()
