"""Tests for Record parsing, lineage, tags, and schema validation."""

import pytest

from repro.data import Record
from repro.errors import DataError, SchemaError

from tests.fixtures import factoid_schema, sample_record


class TestParsing:
    def test_from_dict(self):
        record = sample_record()
        assert record.payloads["tokens"][0] == "how"
        assert record.tasks["Intent"]["crowd"] == "height"
        assert record.tags == ["train"]

    def test_unknown_field_rejected(self):
        with pytest.raises(DataError):
            Record.from_dict({"payloads": {}, "labels": {}})

    def test_tasks_require_source_mapping(self):
        with pytest.raises(DataError):
            Record.from_dict({"tasks": {"Intent": "height"}})

    def test_bad_json(self):
        with pytest.raises(DataError):
            Record.from_json("{")

    def test_json_roundtrip(self):
        record = sample_record()
        again = Record.from_json(record.to_json())
        assert again.to_dict() == record.to_dict()


class TestSupervisionAccess:
    def test_sources_for(self):
        record = sample_record()
        assert set(record.sources_for("Intent")) == {"weak1", "weak2", "crowd"}
        assert record.sources_for("Missing") == {}

    def test_label_from(self):
        record = sample_record()
        assert record.label_from("Intent", "weak2") == "age"
        assert record.label_from("Intent", "nobody") is None

    def test_add_label_keeps_lineage(self):
        record = sample_record()
        record.add_label("Intent", "augment_v2", "height")
        assert record.label_from("Intent", "augment_v2") == "height"


class TestTags:
    def test_add_tag_idempotent(self):
        record = sample_record()
        record.add_tag("slice:nutrition")
        record.add_tag("slice:nutrition")
        assert record.tags.count("slice:nutrition") == 1

    def test_has_tag(self):
        record = sample_record()
        assert record.has_tag("train")
        assert not record.has_tag("test")


class TestValidation:
    def test_sample_record_valid(self):
        sample_record().validate(factoid_schema())

    def test_unknown_payload(self):
        record = sample_record()
        record.payloads["mystery"] = [1]
        with pytest.raises(SchemaError):
            record.validate(factoid_schema())

    def test_sequence_too_long(self):
        record = sample_record()
        record.payloads["tokens"] = ["x"] * 13
        record.tasks = {}
        with pytest.raises(DataError, match="max_length"):
            record.validate(factoid_schema())

    def test_null_payload_allowed(self):
        record = sample_record()
        record.payloads["entities"] = None
        record.tasks.pop("IntentArg")
        record.validate(factoid_schema())

    def test_set_member_bad_range(self):
        record = sample_record()
        record.payloads["entities"] = [{"id": "x", "range": [5, 5]}]
        record.tasks.pop("IntentArg")
        with pytest.raises(DataError, match="range"):
            record.validate(factoid_schema())

    def test_too_many_members(self):
        record = sample_record()
        record.payloads["entities"] = [{"id": "x", "range": [0, 1]}] * 5
        record.tasks.pop("IntentArg")
        with pytest.raises(DataError, match="max_members"):
            record.validate(factoid_schema())

    def test_unknown_task(self):
        record = sample_record()
        record.tasks["Ghost"] = {"s": "x"}
        with pytest.raises(SchemaError):
            record.validate(factoid_schema())

    def test_multiclass_unknown_class(self):
        record = sample_record()
        record.tasks["Intent"]["weak1"] = "weather"
        with pytest.raises(DataError, match="unknown class"):
            record.validate(factoid_schema())

    def test_sequence_label_length_mismatch(self):
        record = sample_record()
        record.tasks["POS"]["spacy"] = ["NOUN"]
        with pytest.raises(DataError, match="align"):
            record.validate(factoid_schema())

    def test_sequence_label_position_can_abstain(self):
        record = sample_record()
        labels = list(record.tasks["POS"]["spacy"])
        labels[0] = None
        record.tasks["POS"]["spacy"] = labels
        record.validate(factoid_schema())

    def test_bitvector_labels_must_be_lists(self):
        record = sample_record()
        record.tasks["EntityType"]["eproj"] = ["person"] * 8
        with pytest.raises(DataError, match="lists"):
            record.validate(factoid_schema())

    def test_bitvector_unknown_class(self):
        record = sample_record()
        bad = [[] for _ in range(8)]
        bad[0] = ["vehicle"]
        record.tasks["EntityType"]["eproj"] = bad
        with pytest.raises(DataError, match="unknown class"):
            record.validate(factoid_schema())

    def test_select_out_of_range(self):
        record = sample_record()
        record.tasks["IntentArg"]["weak1"] = 9
        with pytest.raises(DataError, match="member index"):
            record.validate(factoid_schema())

    def test_abstain_label_allowed(self):
        record = sample_record()
        record.tasks["Intent"]["weak1"] = None
        record.validate(factoid_schema())
