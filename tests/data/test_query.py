"""Tests for the jq-style record query helper."""

import pytest

from repro.data import RecordQuery

from tests.fixtures import sample_record


def records(n=4):
    out = []
    for i in range(n):
        r = sample_record()
        if i % 2 == 0:
            r.add_tag("even")
        out.append(r)
    return out


class TestFilters:
    def test_with_without_tag(self):
        q = RecordQuery(records(4))
        assert q.with_tag("even").count() == 2
        assert q.without_tag("even").count() == 2
        assert q.with_tag("train").count() == 4

    def test_chaining(self):
        q = RecordQuery(records(4)).with_tag("train").with_tag("even")
        assert q.count() == 2

    def test_labeled_by(self):
        recs = records(2)
        recs[0].tasks["Intent"].pop("crowd")
        q = RecordQuery(recs)
        assert q.labeled_by("Intent", "crowd").count() == 1
        assert q.labeled_by("Intent", "nobody").count() == 0

    def test_unlabeled(self):
        recs = records(2)
        recs[1].tasks.pop("Intent")
        assert RecordQuery(recs).unlabeled("Intent").count() == 1

    def test_where_task_label(self):
        q = RecordQuery(records(3))
        assert q.where_task_label("Intent", "weak2", "age").count() == 3
        assert q.where_task_label("Intent", "weak2", "height").count() == 0

    def test_conflicting(self):
        recs = records(2)
        # Make one record unanimous.
        recs[0].tasks["Intent"] = {"a": "height", "b": "height"}
        assert RecordQuery(recs).conflicting("Intent").count() == 1

    def test_conflicting_handles_list_labels(self):
        recs = records(1)
        assert RecordQuery(recs).conflicting("POS").count() == 0  # single source

    def test_token_contains(self):
        q = RecordQuery(records(2))
        assert q.token_contains("tall").count() == 2
        assert q.token_contains("zzz").count() == 0


class TestTerminals:
    def test_records_and_count(self):
        q = RecordQuery(records(3))
        assert len(q.records()) == q.count() == 3

    def test_sample(self):
        q = RecordQuery(records(10))
        assert len(q.sample(3, seed=0)) == 3
        assert len(q.sample(100)) == 10

    def test_project(self):
        rows = list(RecordQuery(records(1)).project("payloads.query", "tasks.Intent.crowd"))
        assert rows[0]["payloads.query"].startswith("how tall")
        assert rows[0]["tasks.Intent.crowd"] == "height"

    def test_project_missing_path(self):
        rows = list(RecordQuery(records(1)).project("payloads.ghost.deep"))
        assert rows[0]["payloads.ghost.deep"] is None

    def test_label_distribution(self):
        dist = RecordQuery(records(3)).label_distribution("Intent", "crowd")
        assert dist == {"height": 3}

    def test_label_distribution_list_labels(self):
        dist = RecordQuery(records(2)).label_distribution("POS", "spacy")
        (key, count), = dist.items()
        assert count == 2
        assert isinstance(key, tuple)
