"""Tests: compile the Fig. 2a schema and run forward/loss end to end."""

import numpy as np
import pytest

from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.data import Dataset, encode_inputs
from repro.errors import CompilationError
from repro.model import (
    EmbeddingProduct,
    EmbeddingRegistry,
    MultitaskModel,
    TaskTargets,
    compile_from_dataset,
    compile_model,
)
from repro.supervision import combine_supervision

from tests.fixtures import factoid_schema, sample_record


def dataset(n=4) -> Dataset:
    return Dataset(factoid_schema(), [sample_record() for _ in range(n)])


def small_config(encoder="bow") -> ModelConfig:
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder=encoder, size=8),
            "query": PayloadConfig(size=8, aggregation="mean"),
            "entities": PayloadConfig(size=8),
        },
        trainer=TrainerConfig(epochs=2, batch_size=4),
    )


class TestCompile:
    def test_compiles_fig2a_schema(self):
        model, vocabs = compile_from_dataset(dataset(), small_config())
        assert set(model.encoders) == {"tokens", "query", "entities"}
        assert set(model.heads) == {"POS", "EntityType", "Intent", "IntentArg"}
        assert model.num_parameters() > 0

    def test_unknown_payload_in_config(self):
        ds = dataset()
        config = ModelConfig(payloads={"ghost": PayloadConfig()})
        with pytest.raises(CompilationError, match="ghost"):
            compile_model(ds.schema, config, ds.build_vocabs())

    def test_missing_vocab(self):
        ds = dataset()
        with pytest.raises(CompilationError, match="vocab"):
            compile_model(ds.schema, small_config(), {})

    def test_unregistered_embedding_product(self):
        ds = dataset()
        config = small_config()
        config.payloads["tokens"] = PayloadConfig(embedding="BERT-Large", size=8)
        with pytest.raises(CompilationError, match="BERT-Large"):
            compile_model(ds.schema, config, ds.build_vocabs())

    def test_nonpositive_size(self):
        ds = dataset()
        config = small_config()
        config.payloads["tokens"] = PayloadConfig(size=0)
        with pytest.raises(CompilationError, match="size"):
            compile_model(ds.schema, config, ds.build_vocabs())

    def test_pretrained_embedding_used(self):
        ds = dataset()
        vocabs = ds.build_vocabs()
        product = EmbeddingProduct(
            name="corpus-8",
            dim=8,
            vectors={"how": np.ones(8), "tall": np.full(8, 2.0)},
        )
        registry = EmbeddingRegistry([product])
        config = small_config()
        config.payloads["tokens"] = PayloadConfig(embedding="corpus-8", size=8)
        model = compile_model(ds.schema, config, vocabs, registry=registry)
        table = model.encoders["tokens"].embedding.weight.data
        np.testing.assert_allclose(table[vocabs["tokens"].id("how")], np.ones(8))

    def test_seed_reproducible(self):
        ds = dataset()
        vocabs = ds.build_vocabs()
        m1 = compile_model(ds.schema, small_config(), vocabs, seed=42)
        m2 = compile_model(ds.schema, small_config(), vocabs, seed=42)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_allclose(p1.data, p2.data)


class TestForward:
    @pytest.mark.parametrize("encoder", ["bow", "cnn", "lstm", "bilstm", "gru", "attention"])
    def test_all_encoders_forward(self, encoder):
        ds = dataset(3)
        model, vocabs = compile_from_dataset(ds, small_config(encoder))
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        outputs = model(batch)
        assert outputs["Intent"].probs.shape == (3, 5)
        assert outputs["POS"].probs.shape == (3, 12, 8)
        assert outputs["EntityType"].probs.shape == (3, 12, 5)
        assert outputs["IntentArg"].probs.shape == (3, 4)

    def test_select_respects_candidate_mask(self):
        ds = dataset(2)
        model, vocabs = compile_from_dataset(ds, small_config())
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        out = model(batch)["IntentArg"]
        # Only 2 candidates exist; slots 2,3 must carry ~zero probability.
        assert out.probs[:, 2:].sum() == pytest.approx(0.0, abs=1e-9)
        assert out.predictions.max() < 2

    def test_predict_switches_to_eval(self):
        ds = dataset(2)
        config = small_config()
        config.payloads["tokens"] = PayloadConfig(size=8, dropout=0.5)
        model, vocabs = compile_from_dataset(ds, config)
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        model.train()
        p1 = model.predict(batch)["Intent"].probs
        p2 = model.predict(batch)["Intent"].probs
        np.testing.assert_allclose(p1, p2)  # dropout off during predict
        assert model.training  # restored

    def test_describe(self):
        model, _ = compile_from_dataset(dataset(), small_config())
        info = model.describe()
        assert info["tasks"] == ["POS", "EntityType", "Intent", "IntentArg"]
        assert info["num_parameters"] == model.num_parameters()


class TestLoss:
    def build_targets(self, ds: Dataset) -> dict:
        targets = {}
        for task in ("Intent", "POS", "EntityType", "IntentArg"):
            combined = combine_supervision(ds.records, ds.schema, task)
            targets[task] = TaskTargets(probs=combined.probs, weights=combined.weights)
        return targets

    def test_multitask_loss_backward(self):
        ds = dataset(3)
        model, vocabs = compile_from_dataset(ds, small_config())
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        outputs = model(batch)
        loss = model.compute_loss(outputs, self.build_targets(ds))
        assert np.isfinite(loss.item())
        loss.backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None)
        assert with_grad > 0.9 * len(model.parameters())

    def test_task_weights_scale(self):
        ds = dataset(2)
        model, vocabs = compile_from_dataset(ds, small_config())
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        outputs = model(batch)
        targets = self.build_targets(ds)
        base = model.compute_loss(outputs, {"Intent": targets["Intent"]}).item()
        doubled = model.compute_loss(
            outputs, {"Intent": targets["Intent"]}, task_weights={"Intent": 2.0}
        ).item()
        assert doubled == pytest.approx(2 * base)

    def test_missing_output_rejected(self):
        from repro.errors import TrainingError

        ds = dataset(2)
        model, vocabs = compile_from_dataset(ds, small_config())
        targets = self.build_targets(ds)
        with pytest.raises(TrainingError):
            model.compute_loss({}, {"Intent": targets["Intent"]})

    def test_empty_targets_rejected(self):
        from repro.errors import TrainingError

        ds = dataset(2)
        model, vocabs = compile_from_dataset(ds, small_config())
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        with pytest.raises(TrainingError):
            model.compute_loss(model(batch), {})

    def test_loss_with_slices_and_rebalance(self):
        ds = dataset(3)
        model, vocabs = compile_from_dataset(
            ds, small_config(), slice_names=["rare"]
        )
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        outputs = model(batch)
        combined = combine_supervision(ds.records, ds.schema, "Intent")
        from repro.supervision import class_weights_from_probs

        targets = {
            "Intent": TaskTargets(
                probs=combined.probs,
                weights=combined.weights,
                class_weights=class_weights_from_probs(combined.probs),
                membership=np.array([[1.0], [0.0], [1.0]]),
            )
        }
        loss = model.compute_loss(outputs, targets)
        loss.backward()
        assert np.isfinite(loss.item())

    def test_state_dict_roundtrip(self):
        ds = dataset(2)
        model, vocabs = compile_from_dataset(ds, small_config(), seed=1)
        clone, _ = compile_from_dataset(ds, small_config(), seed=2)
        clone.load_state_dict(model.state_dict())
        batch = encode_inputs(ds.records, ds.schema, vocabs)
        np.testing.assert_allclose(
            model.predict(batch)["Intent"].probs,
            clone.predict(batch)["Intent"].probs,
        )
