"""Tests for embedding harvesting (back-end data products, §2.4)."""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.model import compile_from_dataset, harvest_embedding_product

from tests.fixtures import mini_dataset
from tests.model.test_compile_forward import small_config


class TestHarvest:
    def test_harvest_token_embeddings(self):
        ds = mini_dataset(n=20, seed=0)
        model, vocabs = compile_from_dataset(ds, small_config())
        product = harvest_embedding_product(model, vocabs, "tokens", "qa-tokens-v1")
        assert product.dim == 8
        assert "kw_04_0" in product.vectors
        np.testing.assert_allclose(
            product.vectors["kw_04_0"],
            model.encoders["tokens"].embedding.weight.data[
                vocabs["tokens"].id("kw_04_0")
            ],
        )

    def test_harvest_entity_embeddings(self):
        ds = mini_dataset(n=20, seed=1)
        model, vocabs = compile_from_dataset(ds, small_config())
        product = harvest_embedding_product(model, vocabs, "entities", "qa-ents-v1")
        assert "ent01_r0" in product.vectors

    def test_special_symbols_skipped_by_default(self):
        ds = mini_dataset(n=10, seed=2)
        model, vocabs = compile_from_dataset(ds, small_config())
        product = harvest_embedding_product(model, vocabs, "tokens", "p")
        assert "<pad>" not in product.vectors
        included = harvest_embedding_product(
            model, vocabs, "tokens", "p2", include_special=True
        )
        assert "<pad>" in included.vectors

    def test_derived_payload_rejected(self):
        ds = mini_dataset(n=10, seed=3)
        model, vocabs = compile_from_dataset(ds, small_config())
        with pytest.raises(CompilationError, match="embedding"):
            harvest_embedding_product(model, vocabs, "query", "p")

    def test_unknown_payload(self):
        ds = mini_dataset(n=10, seed=4)
        model, vocabs = compile_from_dataset(ds, small_config())
        with pytest.raises(CompilationError, match="payload"):
            harvest_embedding_product(model, vocabs, "ghost", "p")

    def test_harvested_product_is_loadable_pretrained_payload(self):
        """The full loop: train -> harvest -> new model with the product."""
        from repro.core import ModelConfig, PayloadConfig, TrainerConfig
        from repro.model import EmbeddingRegistry, compile_model

        ds = mini_dataset(n=20, seed=5)
        model, vocabs = compile_from_dataset(ds, small_config())
        product = harvest_embedding_product(model, vocabs, "tokens", "harvested")
        registry = EmbeddingRegistry([product])
        config = ModelConfig(
            payloads={
                "tokens": PayloadConfig(embedding="harvested", encoder="bow", size=8),
                "query": PayloadConfig(size=8),
                "entities": PayloadConfig(size=8),
            },
            trainer=TrainerConfig(epochs=1),
        )
        downstream = compile_model(ds.schema, config, vocabs, registry=registry)
        table = downstream.encoders["tokens"].embedding.weight.data
        np.testing.assert_allclose(
            table[vocabs["tokens"].id("kw_04_0")], product.vectors["kw_04_0"]
        )
