"""Direct unit tests for payload encoders and the embedding registry."""

import numpy as np
import pytest

from repro.core import PayloadConfig, PayloadSpec
from repro.data import PayloadInputs, Vocab
from repro.errors import CompilationError, ShapeError
from repro.model import EmbeddingProduct, EmbeddingRegistry
from repro.model.payload_encoders import (
    SequencePayloadEncoder,
    SetPayloadEncoder,
    SingletonPayloadEncoder,
)
from repro.tensor import Tensor


def rng():
    return np.random.default_rng(3)


def seq_spec(max_length=6):
    return PayloadSpec(name="tokens", type="sequence", max_length=max_length)


def seq_inputs(ids, mask=None):
    ids = np.asarray(ids, dtype=np.int64)
    if mask is None:
        mask = (ids != 0).astype(np.float64)
    return PayloadInputs(ids=ids, mask=np.asarray(mask, dtype=np.float64))


class TestSequenceEncoder:
    def test_output_shape_and_padding_zeroed(self):
        enc = SequencePayloadEncoder(
            seq_spec(), PayloadConfig(encoder="bow", size=8), 10, rng(),
            EmbeddingRegistry(),
        )
        inputs = seq_inputs([[2, 3, 0, 0], [4, 5, 6, 0]])
        out = enc(inputs)
        assert out.shape == (2, 4, 8)
        np.testing.assert_allclose(out.data[0, 2:], np.zeros((2, 8)))

    def test_pretrained_table_used_and_projected(self):
        vocab = Vocab(["alpha", "beta"])
        product = EmbeddingProduct(
            name="p4", dim=4, vectors={"alpha": np.ones(4)}
        )
        enc = SequencePayloadEncoder(
            seq_spec(),
            PayloadConfig(embedding="p4", encoder="bow", size=6),
            len(vocab),
            rng(),
            EmbeddingRegistry([product]),
            vocab=vocab,
        )
        out = enc(seq_inputs([[vocab.id("alpha")]]))
        assert out.shape == (1, 1, 6)  # projected 4 -> 6

    def test_pretrained_requires_vocab(self):
        product = EmbeddingProduct(name="p4", dim=4)
        with pytest.raises(CompilationError, match="vocab"):
            SequencePayloadEncoder(
                seq_spec(),
                PayloadConfig(embedding="p4", size=4),
                10,
                rng(),
                EmbeddingRegistry([product]),
            )

    def test_bilstm_odd_size_rejected(self):
        with pytest.raises(CompilationError, match="even"):
            SequencePayloadEncoder(
                seq_spec(), PayloadConfig(encoder="bilstm", size=7), 10, rng(),
                EmbeddingRegistry(),
            )

    def test_attention_heads_fallback_for_indivisible(self):
        enc = SequencePayloadEncoder(
            seq_spec(),
            PayloadConfig(encoder="attention", size=7, attention_heads=4),
            10,
            rng(),
            EmbeddingRegistry(),
        )
        out = enc(seq_inputs([[1, 2, 3]]))
        assert out.shape == (1, 3, 7)


class TestSingletonEncoder:
    def test_aggregates_base(self):
        spec = PayloadSpec(name="query", type="singleton", base=("tokens",))
        enc = SingletonPayloadEncoder(spec, PayloadConfig(size=5), {"tokens": 8}, rng())
        base_rep = Tensor(np.random.default_rng(1).normal(size=(3, 4, 8)))
        mask = np.ones((3, 4))
        out = enc(None, {"tokens": base_rep}, {"tokens": mask})
        assert out.shape == (3, 5)

    def test_raw_features_projected(self):
        spec = PayloadSpec(name="feat", type="singleton", dim=3)
        enc = SingletonPayloadEncoder(spec, PayloadConfig(size=4), {}, rng())
        inputs = PayloadInputs(features=np.ones((2, 3)))
        assert enc(inputs, {}, {}).shape == (2, 4)

    def test_multiple_bases_concatenated(self):
        spec = PayloadSpec(name="q", type="singleton", base=("a", "b"))
        enc = SingletonPayloadEncoder(
            spec, PayloadConfig(size=6), {"a": 4, "b": 3}, rng()
        )
        reps = {
            "a": Tensor(np.ones((2, 3, 4))),
            "b": Tensor(np.ones((2, 5, 3))),
        }
        masks = {"a": np.ones((2, 3)), "b": np.ones((2, 5))}
        assert enc(None, reps, masks).shape == (2, 6)


class TestSetEncoder:
    def make(self, size=8, range_size=8):
        spec = PayloadSpec(
            name="entities", type="set", range="tokens", max_members=3
        )
        return SetPayloadEncoder(
            spec, PayloadConfig(size=size), range_size, 10, rng(), EmbeddingRegistry()
        )

    def test_shapes_and_mask(self):
        enc = self.make()
        inputs = PayloadInputs(
            member_ids=np.array([[2, 3, 0]]),
            spans=np.array([[[0, 1], [1, 3], [0, 1]]]),
            member_mask=np.array([[1.0, 1.0, 0.0]]),
        )
        range_rep = Tensor(np.random.default_rng(2).normal(size=(1, 4, 8)))
        out = enc(inputs, range_rep)
        assert out.shape == (1, 3, 8)
        np.testing.assert_allclose(out.data[0, 2], np.zeros(8))  # masked member

    def test_empty_span_gives_zero_summary(self):
        # Regression: an empty span (k, k) used to be silently clamped to the
        # one-position span (k-1, k); it must contribute a zero span summary
        # instead (like masked members), leaving only the member embedding.
        enc = self.make()
        enc.eval()
        range_rep = Tensor(np.random.default_rng(5).normal(size=(1, 4, 8)))
        inputs_empty = PayloadInputs(
            member_ids=np.array([[2, 0, 0]]),
            spans=np.array([[[2, 2], [0, 1], [0, 1]]]),  # (2, 2) is empty
            member_mask=np.array([[1.0, 0.0, 0.0]]),
        )
        out = enc(inputs_empty, range_rep)
        zero_summary = enc.span_proj(Tensor(np.zeros((1, 1, 8))))
        member = enc.member_embedding(np.array([[2]]))
        expected = (zero_summary + member).data
        np.testing.assert_allclose(out.data[0, 0], expected[0, 0])
        # And it no longer matches the legacy one-position clamp (1, 2).
        inputs_clamped = PayloadInputs(
            member_ids=np.array([[2, 0, 0]]),
            spans=np.array([[[1, 2], [0, 1], [0, 1]]]),
            member_mask=np.array([[1.0, 0.0, 0.0]]),
        )
        clamped = enc(inputs_clamped, range_rep)
        assert np.abs(out.data[0, 0] - clamped.data[0, 0]).sum() > 1e-6

    def test_span_mean_reflects_span(self):
        enc = self.make()
        # Two members pointing at different spans of a contrasting range rep
        # must encode differently.
        range_data = np.zeros((1, 4, 8))
        range_data[0, 0] = 1.0
        range_data[0, 3] = -1.0
        inputs = PayloadInputs(
            member_ids=np.array([[2, 2, 0]]),  # same id -> difference is the span
            spans=np.array([[[0, 1], [3, 4], [0, 1]]]),
            member_mask=np.array([[1.0, 1.0, 0.0]]),
        )
        out = enc(inputs, Tensor(range_data))
        assert np.abs(out.data[0, 0] - out.data[0, 1]).sum() > 1e-6

    def test_span_clipped_to_range_length(self):
        enc = self.make()
        inputs = PayloadInputs(
            member_ids=np.array([[2]]),
            spans=np.array([[[3, 9]]]),  # beyond range length 4
            member_mask=np.array([[1.0]]),
        )
        out = enc(inputs, Tensor(np.ones((1, 4, 8))))
        assert np.isfinite(out.data).all()


class TestEmbeddingRegistry:
    def test_register_get(self):
        product = EmbeddingProduct(name="x", dim=2, vectors={"a": np.zeros(2)})
        registry = EmbeddingRegistry([product])
        assert registry.get("x").dim == 2
        assert "x" in registry
        assert registry.names() == ["x"]

    def test_duplicate_rejected(self):
        product = EmbeddingProduct(name="x", dim=2)
        registry = EmbeddingRegistry([product])
        with pytest.raises(CompilationError):
            registry.register(EmbeddingProduct(name="x", dim=3))

    def test_unknown_product(self):
        with pytest.raises(CompilationError, match="registered"):
            EmbeddingRegistry().get("ghost")

    def test_vector_shape_validated(self):
        with pytest.raises(CompilationError):
            EmbeddingProduct(name="x", dim=2, vectors={"a": np.zeros(3)})

    def test_table_for_alignment(self):
        vocab = Vocab(["hit", "miss"])
        product = EmbeddingProduct(name="x", dim=2, vectors={"hit": np.array([1.0, 2.0])})
        table = product.table_for(vocab, np.random.default_rng(0))
        np.testing.assert_allclose(table[vocab.id("hit")], [1.0, 2.0])
        np.testing.assert_allclose(table[vocab.pad_id], [0.0, 0.0])
        assert np.abs(table[vocab.id("miss")]).max() < 0.2  # random small init

    def test_coverage(self):
        vocab = Vocab(["a", "b"])
        product = EmbeddingProduct(name="x", dim=2, vectors={"a": np.zeros(2)})
        assert product.coverage(vocab) == 0.5
        assert product.coverage(Vocab()) == 0.0

    def test_save_load_roundtrip(self, tmp_path):
        product = EmbeddingProduct(
            name="corpus", dim=3,
            vectors={"a": np.array([1.0, 2.0, 3.0]), "b": np.zeros(3)},
            version="7",
        )
        path = tmp_path / "product.npz"
        product.save(path)
        loaded = EmbeddingProduct.load(path)
        assert loaded.name == "corpus"
        assert loaded.version == "7"
        np.testing.assert_allclose(loaded.vectors["a"], [1.0, 2.0, 3.0])

    def test_save_load_empty(self, tmp_path):
        product = EmbeddingProduct(name="empty", dim=4)
        product.save(tmp_path / "e.npz")
        assert EmbeddingProduct.load(tmp_path / "e.npz").vectors == {}
