"""End-to-end observability through the serving stack.

The ISSUE's acceptance path: a canary-routed request submitted through the
gateway produces ONE trace whose spans cover enqueue -> routing -> batch
formation -> the shared model batch -> replica serve -> endpoint encode and
forward — retrievable over HTTP via ``GET /trace/<id>`` — while
``GET /metrics`` exposes the same traffic as parseable Prometheus text with
per-tier latency histograms.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.serve import GatewayConfig, GatewayHTTPServer, ReplicaPool, ServingGateway

# The full causal chain one served request must leave behind.
EXPECTED_SPANS = {
    "gateway.enqueue",
    "gateway.route",
    "gateway.batch_form",
    "gateway.batch",
    "replica.serve",
    "endpoint.encode",
    "endpoint.forward",
}


@pytest.fixture()
def gateway(served, single_store):
    app, ds, run, payloads = served
    store, *_ = single_store
    pool = ReplicaPool.from_store(store, app.name)
    with ServingGateway(
        pool, GatewayConfig(max_batch_size=4, max_wait_s=0.02)
    ) as gw:
        yield gw, payloads


def get_json(url: str):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestTracePropagation:
    def test_one_request_leaves_a_complete_trace(self, gateway):
        gw, payloads = gateway
        with obs.activated():
            future = gw.submit_async(payloads[0])
            future.result(timeout=30)
            gw.drain()
            trace_id = future.trace_id
            assert trace_id is not None
            spans = obs.get_tracer().ring.trace(trace_id)
        names = {s.name for s in spans}
        assert EXPECTED_SPANS <= names, f"missing {EXPECTED_SPANS - names}"
        # One trace, coherent parentage: every non-root span's parent is
        # also in the trace.
        ids = {s.span_id for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["gateway.enqueue"]
        for s in spans:
            assert s.trace_id == trace_id
            if s.parent_id is not None:
                assert s.parent_id in ids

    def test_canary_routed_request_is_traced_with_role(
        self, served, single_store
    ):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        pool = ReplicaPool.from_store(store, app.name)
        with ServingGateway(
            pool, GatewayConfig(max_batch_size=4, max_wait_s=0.02)
        ) as gw:
            gw.set_canary(candidate.version, fraction=1.0)
            with obs.activated():
                future = gw.submit_async(payloads[0], request_id="canary-q")
                future.result(timeout=30)
                gw.drain()
                spans = obs.get_tracer().ring.trace(future.trace_id)
            by_name = {s.name: s for s in spans}
            assert EXPECTED_SPANS <= set(by_name)
            assert by_name["gateway.route"].attrs["role"] == "canary"
            assert by_name["gateway.batch"].attrs["role"] == "canary"

    def test_batchmates_share_the_batch_span_but_not_a_trace(self, gateway):
        gw, payloads = gateway
        with obs.activated():
            futures = [gw.submit_async(p) for p in payloads[:4]]
            for f in futures:
                f.result(timeout=30)
            gw.drain()
            trace_ids = {f.trace_id for f in futures}
            assert len(trace_ids) == 4  # one trace per request
            ring = obs.get_tracer().ring
            for f in futures:
                names = {s.name for s in ring.trace(f.trace_id)}
                assert "gateway.batch" in names and "gateway.enqueue" in names

    def test_sampling_thins_traces_but_not_telemetry(self, gateway):
        gw, payloads = gateway
        obs.enable(sample_every=4)
        try:
            futures = [gw.submit_async(payloads[0]) for _ in range(8)]
            for f in futures:
                f.result(timeout=30)
            gw.drain()
            traced = [f.trace_id for f in futures if f.trace_id is not None]
            assert len(traced) == 2  # 8 requests / sample_every=4
            # Metrics still saw every request.
            counter = obs.get_registry().get("repro_gateway_requests_total")
            total = sum(v for _, v in counter.samples())
            assert total >= 8
        finally:
            obs.disable()
            obs.get_tracer().ring.clear()
            obs.get_tracer().sample_every = 1
            obs.get_registry().reset()

    def test_disabled_obs_leaves_no_trace(self, gateway):
        gw, payloads = gateway
        assert not obs.is_active()
        future = gw.submit_async(payloads[0])
        future.result(timeout=30)
        assert future.trace_id is None
        assert len(obs.get_tracer().ring) == 0


class TestHTTPExposition:
    def test_trace_endpoint_serves_the_acceptance_path(self, gateway):
        gw, payloads = gateway
        with obs.activated(), GatewayHTTPServer(gw, port=0) as http:
            future = gw.submit_async(payloads[0])
            future.result(timeout=30)
            gw.drain()
            status, body = get_json(f"{http.url}/trace/{future.trace_id}")
            assert status == 200
            assert body["trace_id"] == future.trace_id
            names = {s["name"] for s in body["spans"]}
            assert EXPECTED_SPANS <= names
            for span in body["spans"]:
                assert span["duration_s"] >= 0

    def test_trace_endpoint_404s_unknown_ids(self, gateway):
        gw, _ = gateway
        with GatewayHTTPServer(gw, port=0) as http:
            status, body = get_json(f"{http.url}/trace/0xdeadbeef")
            assert status == 404 and "error" in body

    def test_metrics_endpoint_renders_per_tier_histograms(self, gateway):
        gw, payloads = gateway
        with obs.activated(), GatewayHTTPServer(gw, port=0) as http:
            gw.submit_many(payloads[:4])
            gw.drain()
            with urllib.request.urlopen(
                f"{http.url}/metrics", timeout=30
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == obs.CONTENT_TYPE
                text = response.read().decode("utf-8")
        assert "# TYPE repro_gateway_requests_total counter" in text
        assert "# TYPE repro_gateway_request_latency_seconds histogram" in text
        assert 'repro_gateway_request_latency_seconds_bucket{tier="default",le="+Inf"} 4' in text
        assert 'repro_gateway_requests_total{tier="default",role="stable",result="ok"} 4' in text
        # Parseable: every non-comment line is "name{labels} value".
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value) if value not in ("+Inf", "-Inf") else None

    def test_predict_response_carries_trace_header(self, gateway):
        gw, payloads = gateway
        with obs.activated(), GatewayHTTPServer(gw, port=0) as http:
            request = urllib.request.Request(
                f"{http.url}/predict",
                data=json.dumps(payloads[0]).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                trace_id = response.headers["X-Trace-Id"]
                assert response.status == 200
            assert trace_id
            gw.drain()
            assert obs.get_tracer().ring.trace(trace_id)
