"""Float32 serving through the endpoint, pool, gateway, and telemetry.

The dtype policy's serving story: an artifact compiled in float64 can be
served in float32 (``dtype="float32"`` at every layer's constructor), hard
predictions agree with the float64 endpoint, and the active dtype is
visible everywhere an operator looks — endpoint, pool, gateway stats, and
per-tier telemetry.
"""

import numpy as np

from repro.api import Endpoint
from repro.serve import GatewayConfig, ReplicaPool, ServingGateway
from repro.tensor import default_dtype

from tests.serve.test_gateway import hard_outputs


class TestEndpointDtype:
    def test_float32_override_reports_and_matches(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, _ = single_store
        e64 = Endpoint.from_store(store, app.name, version=stable.version)
        e32 = Endpoint.from_store(
            store, app.name, version=stable.version, dtype="float32"
        )
        assert e64.dtype_name == "float64"
        assert e32.dtype_name == "float32"
        for payload in payloads[:8]:
            r64, r32 = e64.predict(payload), e32.predict(payload)
            assert hard_outputs(r64) == hard_outputs(r32)
            for task in r64:
                s64, s32 = r64[task].get("scores"), r32[task].get("scores")
                if isinstance(s64, dict):
                    for cls in s64:
                        assert abs(s64[cls] - s32[cls]) <= 1e-4
        # Serving in float32 never leaks the policy into the caller thread.
        assert default_dtype() == np.dtype("float64")

    def test_override_survives_refresh(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, _ = single_store
        endpoint = Endpoint.from_store(store, app.name, dtype="float32")
        endpoint.refresh()
        assert endpoint.dtype_name == "float32"


class TestPoolAndGatewayDtype:
    def test_pool_reports_per_tier_dtype(self, served, single_store):
        app, ds, run, payloads = served
        store, *_ = single_store
        pool = ReplicaPool.from_store(store, app.name, dtype="float32")
        assert pool.dtypes() == {"default": "float32"}
        assert ReplicaPool.from_store(store, app.name).dtypes() == {
            "default": "float64"
        }

    def test_gateway_stats_and_telemetry_carry_dtype(self, served, single_store):
        app, ds, run, payloads = served
        store, *_ = single_store
        pool = ReplicaPool.from_store(store, app.name, dtype="float32")
        config = GatewayConfig(max_batch_size=4, max_wait_s=0.02)
        with ServingGateway(pool, config) as gateway:
            for payload in payloads[:4]:
                gateway.submit(payload)
            gateway.drain()
            stats = gateway.stats()
            assert stats["dtypes"] == {"default": "float32"}
            tier_stats = stats["telemetry"]["tiers"]["default"]
            assert tier_stats["dtype"] == "float32"
            assert all(e.dtype == "float32" for e in gateway.telemetry.events())
            assert "float32" in gateway.telemetry.render(max_batch_size=4)

    def test_from_endpoint_carries_dtype_to_candidates(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        endpoint = Endpoint.from_store(store, app.name, dtype="float32")
        pool = ReplicaPool.from_endpoint(endpoint)
        assert pool.dtypes() == {"default": "float32"}
        pool.add_candidate(candidate.version)
        assert pool.replica("default", "candidate").endpoint.dtype_name == "float32"
        pool.clear_candidate()

    def test_candidate_inherits_pool_dtype(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        pool = ReplicaPool.from_store(store, app.name, dtype="float32")
        pool.add_candidate(candidate.version)
        replica = pool.replica("default", "candidate")
        assert replica.endpoint.dtype_name == "float32"
        pool.clear_candidate()
