"""Tests for the telemetry ring buffer and its snapshots."""

import pytest

from repro.serve import RequestEvent, TelemetryRing


def event(i: int, tier: str = "default", role: str = "stable", **kwargs) -> RequestEvent:
    defaults = dict(
        at=float(i),
        tier=tier,
        role=role,
        latency_s=0.010 * (i % 5 + 1),
        batch_size=4,
    )
    defaults.update(kwargs)
    return RequestEvent(**defaults)


class TestRing:
    def test_capacity_evicts_oldest(self):
        ring = TelemetryRing(capacity=8)
        for i in range(20):
            ring.record(event(i))
        assert len(ring) == 8
        assert ring.recorded_total == 20
        assert min(e.at for e in ring.events()) == 12.0

    def test_payload_sampling_every_nth(self):
        ring = TelemetryRing(capacity=64, payload_sample_every=4)
        for i in range(16):
            ring.record(event(i), payload={"tokens": [f"t{i}"]})
        samples = ring.payload_samples()
        assert len(samples) == 4
        assert samples[0] == {"tokens": ["t3"]}

    def test_live_records_wrap_payloads(self):
        ring = TelemetryRing(payload_sample_every=1)
        ring.record(event(0), payload={"tokens": ["how", "tall"]})
        records = ring.live_records()
        assert len(records) == 1
        assert records[0].payloads["tokens"] == ["how", "tall"]


class TestSnapshot:
    def test_empty_snapshot(self):
        snap = TelemetryRing().snapshot()
        assert snap.total_requests == 0
        assert snap.requests_per_s == 0.0
        assert snap.tiers == {}

    def test_per_tier_percentiles(self):
        ring = TelemetryRing()
        for i in range(100):
            ring.record(event(i, tier="small", latency_s=0.001))
        for i in range(50):
            ring.record(event(i, tier="large", latency_s=0.1))
        snap = ring.snapshot()
        assert set(snap.tiers) == {"small", "large"}
        assert snap.tiers["small"].count == 100
        assert snap.tiers["small"].p95_s == pytest.approx(0.001)
        assert snap.tiers["large"].p50_s == pytest.approx(0.1)

    def test_single_event_reports_zero_throughput(self):
        # Regression: a one-event window used to divide by an epsilon and
        # claim ~1e9 requests/s; a zero-width window must report 0.0.
        ring = TelemetryRing()
        ring.record(event(0, at=5.0))
        snap = ring.snapshot()
        assert snap.total_requests == 1
        assert snap.window_s == 0.0
        assert snap.requests_per_s == 0.0

    def test_identical_timestamps_report_zero_throughput(self):
        ring = TelemetryRing()
        for i in range(4):
            ring.record(event(i, at=7.0))
        snap = ring.snapshot()
        assert snap.total_requests == 4
        assert snap.window_s == 0.0
        assert snap.requests_per_s == 0.0

    def test_throughput_over_window(self):
        ring = TelemetryRing()
        for i in range(11):
            ring.record(event(0, at=float(i)))  # 11 events over 10 seconds
        snap = ring.snapshot()
        assert snap.window_s == pytest.approx(10.0)
        assert snap.requests_per_s == pytest.approx(1.1)

    def test_roles_errors_and_fill_rate(self):
        ring = TelemetryRing()
        for i in range(6):
            ring.record(event(i, role="stable", batch_size=8))
        for i in range(2):
            ring.record(event(i, role="canary", batch_size=8))
        ring.record(event(0, role="shadow", batch_size=8, ok=False))
        snap = ring.snapshot(max_batch_size=16)
        assert snap.roles == {"stable": 6, "canary": 2, "shadow": 1}
        assert snap.errors == 1
        assert snap.batch_fill_rate == pytest.approx(0.5)

    def test_snapshot_to_dict_is_jsonable(self):
        import json

        ring = TelemetryRing()
        ring.record(event(0))
        assert json.loads(json.dumps(ring.snapshot(8).to_dict()))


class TestRolloutEvents:
    def test_record_and_read_back(self):
        ring = TelemetryRing()
        ring.record_rollout("set_shadow", version="abc123")
        ring.record_rollout("promote", version="abc123", set_latest=True)
        events = ring.rollout_events()
        assert [e.action for e in events] == ["set_shadow", "promote"]
        assert events[0].detail == {"version": "abc123"}
        assert events[1].detail["set_latest"] is True

    def test_capacity_bounds_history(self):
        ring = TelemetryRing(rollout_capacity=3)
        for i in range(10):
            ring.record_rollout("refresh", seq=i)
        events = ring.rollout_events()
        assert len(events) == 3
        assert [e.detail["seq"] for e in events] == [7, 8, 9]

    def test_to_dict_is_jsonable(self):
        import json

        ring = TelemetryRing()
        ring.record_rollout("cancel", tier="default")
        payload = json.loads(json.dumps(ring.rollout_events()[0].to_dict()))
        assert payload["action"] == "cancel"
        assert payload["detail"] == {"tier": "default"}

    def test_clear_payload_samples(self):
        ring = TelemetryRing(payload_sample_every=1)
        for i in range(5):
            ring.record(event(i), payload={"tokens": [f"t{i}"]})
        assert ring.clear_payload_samples() == 5
        assert ring.payload_samples() == []
        # Request events survive; only the drift-evidence window resets.
        assert len(ring) == 5
        assert ring.clear_payload_samples() == 0

    def test_render_shows_rollout_history(self):
        ring = TelemetryRing()
        ring.record_rollout("set_shadow")
        ring.record_rollout("promote")
        text = ring.render()
        assert "rollout history (2): set_shadow  promote" in text


class TestRender:
    def test_render_contains_tier_table(self):
        ring = TelemetryRing()
        for i in range(5):
            ring.record(event(i, tier="small"))
        text = ring.render(max_batch_size=8)
        assert "small" in text
        assert "p95_ms" in text
        assert "batch fill rate" in text

    def test_render_empty_ring(self):
        assert "requests: 0" in TelemetryRing().render()
