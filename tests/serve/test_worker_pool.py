"""Process-parallel serving: parity, crash recovery, ordering, cleanup.

The :class:`~repro.serve.WorkerReplicaPool` contract under test:

* predictions are **bit-identical** to in-process serving (the gateway
  encodes once and workers run the same ``forward_raw``, so there is no
  numerical seam to hide behind) — in both dtypes;
* a crashed worker surfaces as :class:`~repro.errors.WorkerCrashError`,
  feeds the tier's circuit breaker, and is respawned in its slot;
* concurrent ``submit_many`` callers get their responses in order;
* ``drain()`` covers batches in flight inside worker processes;
* a stopped pool leaves nothing behind in ``/dev/shm``.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ServeError, WorkerCrashError
from repro.faults import FaultPlan, FaultRule, clear, injected
from repro.serve import (
    BreakerPolicy,
    GatewayConfig,
    ReplicaPool,
    ServingGateway,
    WorkerReplicaPool,
)
from repro.serve.shm import NAME_PREFIX, SegmentCache, ShmArena

from tests.serve.conftest import request_payloads


def _shm_entries() -> set[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():  # non-Linux: nothing to leak-check
        return set()
    return {p.name for p in shm.glob(f"{NAME_PREFIX}-*")}


@pytest.fixture()
def worker_pool(pair_store):
    store, _ = pair_store
    with WorkerReplicaPool.from_store(store, "factoid-qa", workers=2) as pool:
        yield pool


class TestParity:
    """Cross-process serving must be bit-identical to in-process."""

    def test_predictions_match_in_process(self, pair_store, served, worker_pool):
        store, _ = pair_store
        _, _, _, payloads = served
        inproc = ReplicaPool.from_store(store, "factoid-qa")
        for tier in inproc.tiers:
            expected, _ = inproc.replica(tier).serve(list(payloads))
            got, _ = worker_pool.replica(tier).serve(list(payloads))
            assert got == expected, f"tier {tier} diverged across processes"

    def test_parity_holds_in_float32(self, pair_store, served):
        store, _ = pair_store
        _, _, _, payloads = served
        inproc = ReplicaPool.from_store(store, "factoid-qa", dtype="float32")
        with WorkerReplicaPool.from_store(
            store, "factoid-qa", dtype="float32", workers=2
        ) as pool:
            for tier in inproc.tiers:
                expected, _ = inproc.replica(tier).serve(list(payloads))
                got, _ = pool.replica(tier).serve(list(payloads))
                assert got == expected
                assert pool.replica(tier).endpoint.dtype_name == "float32"

    def test_single_request_batches(self, pair_store, served, worker_pool):
        store, _ = pair_store
        _, _, _, payloads = served
        inproc = ReplicaPool.from_store(store, "factoid-qa")
        tier = inproc.tiers[0]
        expected, _ = inproc.replica(tier).serve([payloads[0]])
        got, _ = worker_pool.replica(tier).serve([payloads[0]])
        assert got == expected


class TestGatewayIntegration:
    def test_submit_many_is_ordered_under_concurrency(
        self, pair_store, served, worker_pool
    ):
        store, _ = pair_store
        _, _, _, payloads = served
        inproc = ReplicaPool.from_store(store, "factoid-qa")
        expected, _ = inproc.replica(inproc.tiers[0]).serve(list(payloads))
        by_payload = {i: expected[i] for i in range(len(payloads))}

        config = GatewayConfig(max_batch_size=4, max_wait_s=0.002)
        failures: list[str] = []
        with ServingGateway(worker_pool, config) as gateway:
            def _client(offset: int) -> None:
                order = [
                    (offset + i) % len(payloads) for i in range(len(payloads))
                ]
                responses = gateway.submit_many([payloads[i] for i in order])
                for got_index, payload_index in enumerate(order):
                    if responses[got_index] != by_payload[payload_index]:
                        failures.append(
                            f"client {offset}: response {got_index} is not "
                            f"the answer for payload {payload_index}"
                        )

            threads = [
                threading.Thread(target=_client, args=(offset,))
                for offset in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert failures == []

    def test_drain_waits_for_worker_batches(self, served, worker_pool):
        _, _, _, payloads = served
        config = GatewayConfig(max_batch_size=8, max_wait_s=0.002)
        with ServingGateway(worker_pool, config) as gateway:
            futures = [gateway.submit_async(p) for p in payloads * 2]
            gateway.drain(timeout=60.0)
            assert all(f.done() for f in futures)
            for f in futures:
                assert f.result(timeout=0)

    def test_telemetry_carries_worker_slot(self, served, worker_pool):
        _, _, _, payloads = served
        config = GatewayConfig(max_batch_size=8, max_wait_s=0.002)
        with ServingGateway(worker_pool, config) as gateway:
            gateway.submit_many(payloads[:6])
            events = gateway.telemetry.events()
            assert events and all(e.worker in (0, 1) for e in events)
            stats = gateway.stats()
            assert [w["worker"] for w in stats["workers"]] == [0, 1]
            assert "workers:" in gateway.dashboard()


class TestCrashRecovery:
    def test_crash_raises_respawns_and_feeds_breaker(self, pair_store, served):
        store, _ = pair_store
        _, _, _, payloads = served
        plan = FaultPlan(
            name="worker-crash",
            rules=[
                FaultRule(
                    point="replica.serve", kind="crash", rate=1.0, max_fires=1
                )
            ],
            seed=7,
        )
        config = GatewayConfig(
            max_batch_size=4,
            max_wait_s=0.002,
            breaker=BreakerPolicy(
                failure_threshold=3, reset_timeout_s=0.2, half_open_successes=1
            ),
        )
        # Armed before the pool forks: workers inherit the live plan, and
        # every respawn re-inherits it from the still-armed parent.
        with injected(plan):
            with WorkerReplicaPool.from_store(
                store, "factoid-qa", workers=2, reply_timeout_s=30.0
            ) as pool:
                with ServingGateway(pool, config) as gateway:
                    crashes = 0
                    for payload in payloads[:4]:
                        try:
                            gateway.submit(payload)
                        except ServeError:
                            crashes += 1
                    assert crashes > 0, "no injected crash surfaced"
                    assert pool.restarts_total > 0, "dead worker not respawned"
                    stats = gateway.stats()
                    assert any(
                        b["consecutive_failures"] > 0 or b["state"] != "closed"
                        for b in stats["breakers"].values()
                    ), "crashes did not feed the circuit breakers"

                    # Phase B: disarm everywhere — parent (respawn source)
                    # and the already-running workers — then recover.
                    clear()
                    pool.set_fault_plan(None)
                    time.sleep(0.25)  # let open circuits reach half-open
                    responses = gateway.submit_many(payloads[:6])
                    assert len(responses) == 6
                    assert all(pool.worker_stats()[s]["alive"] for s in (0, 1))

    def test_dead_worker_raises_worker_crash_error(self, pair_store, served):
        store, _ = pair_store
        _, _, _, payloads = served
        plan = FaultPlan(
            name="always-crash",
            rules=[FaultRule(point="replica.serve", kind="crash", rate=1.0)],
            seed=3,
        )
        with injected(plan):
            with WorkerReplicaPool.from_store(
                store, "factoid-qa", workers=1, reply_timeout_s=30.0
            ) as pool:
                with pytest.raises(WorkerCrashError):
                    pool.replica(pool.tiers[0]).serve(payloads[:2])
                assert pool.restarts_total >= 1


class TestLifecycle:
    def test_no_leaked_shared_memory(self, pair_store, served):
        store, _ = pair_store
        _, _, _, payloads = served
        before = _shm_entries()
        with WorkerReplicaPool.from_store(store, "factoid-qa", workers=2) as pool:
            pool.replica(pool.tiers[0]).serve(list(payloads))
            assert _shm_entries() - before, "serving created no shm segments?"
        assert _shm_entries() - before == set(), "segments leaked after stop()"

    def test_stop_is_idempotent_and_kills_workers(self, pair_store, served):
        store, _ = pair_store
        _, _, _, payloads = served
        pool = WorkerReplicaPool.from_store(store, "factoid-qa", workers=2)
        pool.replica(pool.tiers[0]).serve(payloads[:2])
        pids = [w["pid"] for w in pool.worker_stats()]
        assert all(pids)
        pool.stop()
        pool.stop()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not any(Path(f"/proc/{pid}").is_dir() for pid in pids):
                break
            time.sleep(0.05)
        assert not any(
            Path(f"/proc/{pid}").is_dir() for pid in pids
        ), "worker processes outlived stop()"

    def test_warmup_probes_every_worker(self, served, worker_pool):
        _, _, _, payloads = served
        estimates = worker_pool.warmup(payloads[:4])
        assert set(estimates) == set(worker_pool.tiers)
        stats = worker_pool.worker_stats()
        # Every slot served every tier once during warmup.
        assert all(s["batches"] >= len(worker_pool.tiers) for s in stats)
        for tier in worker_pool.tiers:
            assert worker_pool.replica(tier).ewma_latency_s is not None


class TestRolloutBroadcast:
    def test_candidate_and_promote_reach_workers(self, single_store, served):
        store, stable, candidate = single_store
        _, _, _, payloads = served
        with WorkerReplicaPool.from_store(
            store, "factoid-qa", workers=2
        ) as pool:
            inproc = ReplicaPool.from_store(store, "factoid-qa")
            inproc.add_candidate(candidate.version)
            expected, _ = inproc.replica("default", "candidate").serve(
                list(payloads)
            )

            pool.add_candidate(candidate.version)
            got, _ = pool.replica("default", "candidate").serve(list(payloads))
            assert got == expected, "candidate diverged across processes"

            promoted = pool.promote_candidate(set_latest=False)
            assert promoted == {"default": candidate.version}
            got, _ = pool.replica("default").serve(list(payloads))
            assert got == expected, "promoted stable diverged across processes"


class TestShmTransport:
    def test_arena_roundtrip_and_growth(self):
        arena = ShmArena("t", min_bytes=1 << 12)
        cache = SegmentCache()
        try:
            small = [("a", np.arange(8, dtype=np.int64))]
            manifest = arena.pack(small)
            views = cache.view(manifest)
            np.testing.assert_array_equal(views["a"], np.arange(8))
            first_name = manifest["segment"]

            big = [("b", np.random.default_rng(0).normal(size=(64, 64)))]
            manifest = arena.pack(big)
            assert manifest["segment"] != first_name, "growth must rename"
            views = cache.view(manifest)
            np.testing.assert_array_equal(views["b"], big[0][1])
            # The cache pruned its stale attachment for the old name.
            assert len(cache._segments) == 1
        finally:
            cache.close()
            arena.close()
        assert arena.name is None

    def test_closed_arena_refuses_buf(self):
        arena = ShmArena("gone")
        arena.close()
        with pytest.raises(ServeError):
            arena.buf
