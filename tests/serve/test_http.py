"""Tests for the stdlib HTTP front over the gateway."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import GatewayConfig, GatewayHTTPServer, ReplicaPool, ServingGateway


@pytest.fixture()
def server(served, single_store):
    app, ds, run, payloads = served
    store, *_ = single_store
    pool = ReplicaPool.from_store(store, app.name)
    gateway = ServingGateway(
        pool, GatewayConfig(max_batch_size=4, max_wait_s=0.02)
    )
    with gateway, GatewayHTTPServer(gateway, port=0) as http:
        yield http, payloads


def get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def post(url: str, body) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestPredict:
    def test_single_payload(self, server):
        http, payloads = server
        status, body = post(http.url + "/predict", payloads[0])
        assert status == 200
        assert "label" in body["Intent"]

    def test_batch_of_payloads(self, server):
        http, payloads = server
        status, body = post(http.url + "/predict", payloads[:4])
        assert status == 200
        assert isinstance(body, list) and len(body) == 4

    def test_envelope_with_budget_and_id(self, server):
        http, payloads = server
        status, body = post(
            http.url + "/predict",
            {"payload": payloads[0], "latency_budget": 1.0, "request_id": "q1"},
        )
        assert status == 200
        assert "Intent" in body

    def test_bad_payload_is_400(self, server):
        http, payloads = server
        status, body = post(http.url + "/predict", {"bogus": [1]})
        assert status == 400
        assert "unknown payloads" in body["error"]

    def test_unknown_envelope_key_is_400(self, server):
        http, payloads = server
        status, body = post(
            http.url + "/predict", {"payload": payloads[0], "budgets": 1}
        )
        assert status == 400
        assert "envelope" in body["error"]

    def test_malformed_json_is_400(self, server):
        http, payloads = server
        request = urllib.request.Request(
            http.url + "/predict", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestServerFaults:
    def test_get_handler_crash_is_structured_500(self, server, monkeypatch):
        # A crash inside any GET route must come back as JSON, never a
        # bare HTML traceback page.
        http, payloads = server
        monkeypatch.setattr(
            http.gateway,
            "stats",
            lambda: (_ for _ in ()).throw(RuntimeError("stats exploded")),
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(http.url + "/telemetry", timeout=30)
        assert excinfo.value.code == 500
        assert excinfo.value.headers["Content-Type"] == "application/json"
        body = json.loads(excinfo.value.read())
        assert body["error"] == "RuntimeError: stats exploded"

    def test_stopped_gateway_is_503_not_400(self, served, single_store):
        app, ds, run, payloads = served
        store, *_ = single_store
        pool = ReplicaPool.from_store(store, app.name)
        gateway = ServingGateway(pool, GatewayConfig(max_batch_size=4))
        with GatewayHTTPServer(gateway, port=0) as http:
            gateway.stop()  # the server outlives its gateway during shutdown
            status, body = post(http.url + "/predict", payloads[0])
            assert status == 503
            assert "stopped" in body["error"]


class TestIntrospection:
    def test_healthz(self, server):
        http, payloads = server
        status, body = get(http.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["versions"]["default"]["stable"]

    def test_telemetry_counts_requests(self, server):
        http, payloads = server
        post(http.url + "/predict", payloads[0])
        status, body = get(http.url + "/telemetry")
        assert status == 200
        assert body["telemetry"]["total_requests"] == 1

    def test_dashboard_is_text(self, server):
        http, payloads = server
        with urllib.request.urlopen(http.url + "/dashboard", timeout=30) as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            assert b"requests:" in response.read()

    def test_unknown_path_404(self, server):
        http, payloads = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(http.url + "/nope", timeout=30)
        assert excinfo.value.code == 404
        assert excinfo.value.headers["Content-Type"] == "application/json"
        body = json.loads(excinfo.value.read())
        assert "/nope" in body["error"]

    def test_unknown_post_path_is_json_404(self, server):
        http, payloads = server
        status, body = post(http.url + "/nope", payloads[0])
        assert status == 404
        assert "/nope" in body["error"]
