"""Integration tests for the serving gateway: batching, tiers, rollout."""

import pytest

from repro.api import Endpoint
from repro.errors import DeploymentError, ServeError
from repro.serve import GatewayConfig, ReplicaPool, ServingGateway


def hard_outputs(response: dict) -> dict:
    return {
        task: {k: v for k, v in result.items() if k in ("label", "labels", "index")}
        for task, result in response.items()
    }


def make_gateway(store, name="factoid-qa", **config_kwargs) -> ServingGateway:
    defaults = dict(max_batch_size=4, max_wait_s=0.05, payload_sample_every=1)
    defaults.update(config_kwargs)
    pool = ReplicaPool.from_store(store, name)
    return ServingGateway(pool, GatewayConfig(**defaults))


class TestServing:
    def test_single_request_matches_endpoint(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, _ = single_store
        endpoint = Endpoint.from_store(store, app.name, version=stable.version)
        with make_gateway(store) as gateway:
            for payload in payloads[:5]:
                assert hard_outputs(gateway.submit(payload)) == hard_outputs(
                    endpoint.predict(payload)
                )

    def test_concurrent_requests_share_model_batches(self, served, single_store):
        app, ds, run, payloads = served
        store, *_ = single_store
        with make_gateway(store, max_batch_size=4, max_wait_s=0.2) as gateway:
            futures = [gateway.submit_async(p) for p in payloads[:12]]
            responses = [f.result(timeout=30) for f in futures]
            assert len(responses) == 12
            replica = gateway.pool.replica("default")
            # 12 requests from one burst filled 3 batches of 4 — the
            # cross-request amortization the gateway exists for.
            assert replica.requests_served == 12
            assert replica.batches_served == 3
            sizes = {e.batch_size for e in gateway.telemetry.events()}
            assert sizes == {4}

    def test_lone_request_released_by_deadline(self, served, single_store):
        app, ds, run, payloads = served
        store, *_ = single_store
        with make_gateway(store, max_batch_size=64, max_wait_s=0.02) as gateway:
            response = gateway.submit(payloads[0])
            assert "Intent" in response
            [event] = gateway.telemetry.events()
            assert event.batch_size == 1

    def test_validation_fails_fast_in_caller(self, served, single_store):
        app, ds, run, payloads = served
        store, *_ = single_store
        with make_gateway(store) as gateway:
            with pytest.raises(DeploymentError, match="unknown payloads"):
                gateway.submit({"bogus": [1]})
            # Nothing was queued or served.
            assert gateway.stats()["telemetry"]["total_requests"] == 0

    def test_stopped_gateway_rejects_requests(self, served, single_store):
        app, ds, run, payloads = served
        store, *_ = single_store
        gateway = make_gateway(store)
        gateway.submit(payloads[0])
        gateway.stop()
        with pytest.raises(ServeError, match="stopped"):
            gateway.submit(payloads[0])


class TestTierRouting:
    def test_budget_selects_tier(self, served, pair_store):
        app, ds, run, payloads = served
        store, pushed = pair_store
        pool = ReplicaPool.from_store(store, app.name)
        assert pool.tier_order == ["large", "small"]  # by parameter count
        pool.set_latency_hint("large", 0.050)
        pool.set_latency_hint("small", 0.001)
        with ServingGateway(
            pool, GatewayConfig(max_batch_size=4, max_wait_s=0.01)
        ) as gateway:
            gateway.submit(payloads[0], latency_budget=0.005)  # only small fits
            gateway.submit(payloads[1], latency_budget=10.0)  # large fits
            gateway.submit(payloads[2])  # no budget -> most capable
            tiers = [e.tier for e in gateway.telemetry.events()]
            assert tiers == ["small", "large", "large"]

    def test_impossible_budget_degrades_to_cheapest(self, served, pair_store):
        app, ds, run, payloads = served
        store, _ = pair_store
        pool = ReplicaPool.from_store(store, app.name)
        pool.set_latency_hint("large", 0.050)
        pool.set_latency_hint("small", 0.010)
        assert pool.tier_for(1e-9) == "small"

    def test_measured_latency_overrides_hints(self, served, pair_store):
        app, ds, run, payloads = served
        store, _ = pair_store
        pool = ReplicaPool.from_store(store, app.name)
        pool.set_latency_hint("large", 1000.0)
        estimates = pool.warmup(payloads[:4])
        assert set(estimates) == {"large", "small"}
        # The warmup measurement replaced the absurd hint.
        assert pool.latency_estimate("large") < 10.0

    def test_pair_versions_visible(self, served, pair_store):
        app, ds, run, payloads = served
        store, pushed = pair_store
        pool = ReplicaPool.from_store(store, app.name)
        versions = pool.versions()
        assert versions["large"]["stable"] == pushed.large.version
        assert versions["small"]["stable"] == pushed.small.version


class TestCanary:
    def test_fraction_routes_candidate_traffic(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        with make_gateway(store) as gateway:
            gateway.set_canary(candidate.version, fraction=0.5)
            for i in range(60):
                gateway.submit(payloads[i % len(payloads)], request_id=f"q{i}")
            roles = gateway.telemetry.snapshot().roles
            assert 15 <= roles.get("canary", 0) <= 45
            assert roles.get("canary", 0) + roles.get("stable", 0) == 60
            status = gateway.rollout.status()
            assert status.canary_served == roles["canary"]
            # The canary lane really served the candidate version.
            candidate_replica = gateway.pool.replica("default", "candidate")
            assert candidate_replica.version == candidate.version
            assert candidate_replica.requests_served == roles["canary"]

    def test_canary_without_candidate_falls_back_to_stable(
        self, served, single_store
    ):
        app, ds, run, payloads = served
        store, *_ = single_store
        with make_gateway(store) as gateway:
            gateway.rollout.start_canary(1.0)  # no candidate loaded
            gateway.submit(payloads[0])
            assert gateway.telemetry.snapshot().roles == {"stable": 1}

    def test_promote_moves_stable_and_store_latest(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        with make_gateway(store) as gateway:
            gateway.set_canary(candidate.version, fraction=0.25)
            gateway.submit(payloads[0])
            promoted = gateway.promote_canary(set_latest=True)
            assert promoted == {"default": candidate.version}
            assert store.latest_version(app.name) == candidate.version
            assert gateway.pool.versions()["default"] == {
                "stable": candidate.version
            }
            assert not gateway.rollout.active
            # Serving continues on the promoted version.
            assert "Intent" in gateway.submit(payloads[1])
        # Leave the shared store as the fixture promised it.
        store.set_latest(app.name, stable.version)

    def test_cancel_canary_drops_candidate(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        with make_gateway(store) as gateway:
            gateway.set_canary(candidate.version, fraction=1.0)
            gateway.submit(payloads[0], request_id="canary-bound")
            gateway.cancel_canary()
            assert not gateway.pool.has_candidate()
            gateway.submit(payloads[1], request_id="canary-bound-2")
            assert gateway.telemetry.snapshot().roles["stable"] == 1

    def test_promote_without_candidate_raises(self, served, single_store):
        app, ds, run, payloads = served
        store, *_ = single_store
        with make_gateway(store) as gateway:
            with pytest.raises(ServeError, match="no candidate"):
                gateway.promote_canary()


class TestShadow:
    def test_shadow_mirrors_all_stable_traffic(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        with make_gateway(store) as gateway:
            gateway.set_shadow(candidate.version)
            for i, payload in enumerate(payloads[:10]):
                gateway.submit(payload, request_id=f"s{i}")
            gateway.drain()
            status = gateway.rollout.status()
            assert status.shadow_served == 10
            roles = gateway.telemetry.snapshot().roles
            assert roles["stable"] == 10
            assert roles["shadow"] == 10

    def test_shadow_disagreements_recorded_with_examples(
        self, served, single_store
    ):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        with make_gateway(store) as gateway:
            gateway.set_shadow(candidate.version)
            # Force disagreement on every request: wrap the candidate so its
            # hard Intent label is always off-vocabulary.
            replica = gateway.pool.replica("default", "candidate")
            inner = replica.endpoint

            class Disagreeable:
                def __getattr__(self, name):
                    return getattr(inner, name)

                def serve_batch(self, batch_payloads, validate=False):
                    responses = inner.serve_batch(batch_payloads, validate)
                    return [
                        {**r, "Intent": {**r["Intent"], "label": "__flipped__"}}
                        for r in responses
                    ]

            replica.endpoint = Disagreeable()
            for i, payload in enumerate(payloads[:6]):
                gateway.submit(payload, request_id=f"d{i}")
            gateway.drain()
            status = gateway.rollout.status()
            assert status.shadow_served == 6
            assert status.shadow_disagreements == 6
            assert status.disagreement_rate == pytest.approx(1.0)
            example = gateway.rollout.disagreement_examples()[0]
            assert example.candidate["Intent"]["label"] == "__flipped__"
            assert example.stable["Intent"]["label"] != "__flipped__"

    def test_shadow_never_affects_responses(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        endpoint = Endpoint.from_store(store, app.name, version=stable.version)
        with make_gateway(store) as gateway:
            gateway.set_shadow(candidate.version)
            for payload in payloads[:5]:
                assert hard_outputs(gateway.submit(payload)) == hard_outputs(
                    endpoint.predict(payload)
                )
            gateway.drain()


class TestRolloutHistory:
    def test_lifecycle_actions_recorded(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        with make_gateway(store) as gateway:
            gateway.set_canary(candidate.version, fraction=0.5)
            gateway.cancel_canary()
            gateway.set_shadow(candidate.version)
            gateway.cancel_canary()
            events = gateway.telemetry.rollout_events()
            assert [e.action for e in events] == [
                "set_canary",
                "cancel",
                "set_shadow",
                "cancel",
            ]
            assert events[0].detail["fraction"] == 0.5
            assert candidate.version in events[2].detail["versions"]
            # The same trail rides along in stats() for dashboards.
            history = gateway.stats()["rollout_history"]
            assert [h["action"] for h in history] == [e.action for e in events]

    def test_promote_records_versions_and_latest_flag(
        self, served, single_store
    ):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        with make_gateway(store) as gateway:
            gateway.set_shadow(candidate.version)
            gateway.promote_canary(set_latest=False)
            promote = gateway.telemetry.rollout_events()[-1]
            assert promote.action == "promote"
            assert promote.detail["versions"] == {"default": candidate.version}
            assert promote.detail["set_latest"] is False
        # set_latest=False: the store pointer never moved.
        assert store.latest_version(app.name) == stable.version

    def test_poll_store_records_refresh_only_on_change(
        self, served, single_store
    ):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        with make_gateway(store) as gateway:
            gateway.poll_store()  # nothing changed
            assert gateway.telemetry.rollout_events() == []
            store.set_latest(app.name, candidate.version)
            try:
                gateway.poll_store()
                [event] = gateway.telemetry.rollout_events()
                assert event.action == "refresh"
                assert event.detail["tiers"] == ["default"]
            finally:
                store.set_latest(app.name, stable.version)
                gateway.poll_store()


class TestStorePolling:
    def test_poll_store_follows_promotions(self, served, single_store):
        app, ds, run, payloads = served
        store, stable, candidate = single_store
        with make_gateway(store) as gateway:
            assert gateway.poll_store() == {"default": False}
            store.set_latest(app.name, candidate.version)
            try:
                assert gateway.poll_store() == {"default": True}
                assert gateway.pool.versions()["default"]["stable"] == (
                    candidate.version
                )
                assert "Intent" in gateway.submit(payloads[0])
            finally:
                store.set_latest(app.name, stable.version)

    def test_stats_shape(self, served, single_store):
        app, ds, run, payloads = served
        store, *_ = single_store
        with make_gateway(store) as gateway:
            gateway.submit(payloads[0])
            stats = gateway.stats()
            assert stats["telemetry"]["total_requests"] == 1
            assert stats["versions"]["default"]["stable"]
            assert stats["tier_order"] == ["default"]
            assert "rollout" in stats and "latency_estimates_s" in stats
            assert "default" in gateway.dashboard()
