"""Tests for the dynamic batching primitives (no model involved)."""

import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve import PendingResponse, QueuedRequest, RequestQueue


def item(i: int) -> QueuedRequest:
    return QueuedRequest({"n": i}, request_id=f"r{i}")


class TestPendingResponse:
    def test_result_roundtrip(self):
        future = PendingResponse()
        assert not future.done()
        future.set_result({"ok": 1})
        assert future.done()
        assert future.result(timeout=0) == {"ok": 1}

    def test_exception_propagates(self):
        future = PendingResponse()
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            future.result(timeout=0)

    def test_timeout_raises_serve_error(self):
        with pytest.raises(ServeError, match="not answered"):
            PendingResponse().result(timeout=0.01)


class TestPopBatch:
    def test_full_batch_returns_without_waiting_deadline(self):
        queue = RequestQueue()
        for i in range(4):
            queue.put(item(i))
        start = time.monotonic()
        batch = queue.pop_batch(max_size=4, max_wait_s=10.0)
        assert time.monotonic() - start < 1.0  # did not sit out the deadline
        assert [b.payload["n"] for b in batch] == [0, 1, 2, 3]

    def test_deadline_closes_partial_batch(self):
        queue = RequestQueue()
        queue.put(item(0))
        start = time.monotonic()
        batch = queue.pop_batch(max_size=8, max_wait_s=0.05)
        elapsed = time.monotonic() - start
        assert [b.payload["n"] for b in batch] == [0]
        assert elapsed < 2.0  # waited roughly the deadline, not forever

    def test_deadline_counts_from_first_enqueue(self):
        # A request that already waited in the queue should not wait the
        # full max_wait again once a worker picks the queue up.
        queue = RequestQueue()
        queue.put(item(0))
        time.sleep(0.08)
        start = time.monotonic()
        batch = queue.pop_batch(max_size=8, max_wait_s=0.05)
        assert time.monotonic() - start < 0.05
        assert len(batch) == 1

    def test_oversized_queue_pops_in_fifo_chunks(self):
        queue = RequestQueue()
        for i in range(10):
            queue.put(item(i))
        first = queue.pop_batch(max_size=4, max_wait_s=0.0)
        second = queue.pop_batch(max_size=4, max_wait_s=0.0)
        assert [b.payload["n"] for b in first] == [0, 1, 2, 3]
        assert [b.payload["n"] for b in second] == [4, 5, 6, 7]

    def test_blocks_until_first_item_arrives(self):
        queue = RequestQueue()
        results = []

        def worker():
            results.append(queue.pop_batch(max_size=2, max_wait_s=0.01))

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.05)
        queue.put(item(7))
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert [b.payload["n"] for b in results[0]] == [7]

    def test_batch_fills_from_concurrent_producers(self):
        queue = RequestQueue()
        queue.put(item(0))

        def late_producer():
            time.sleep(0.02)
            queue.put(item(1))

        thread = threading.Thread(target=late_producer)
        thread.start()
        batch = queue.pop_batch(max_size=2, max_wait_s=5.0)
        thread.join()
        # The late arrival completed the batch well before the deadline.
        assert [b.payload["n"] for b in batch] == [0, 1]

    def test_invalid_max_size(self):
        with pytest.raises(ServeError, match="max_size"):
            RequestQueue().pop_batch(max_size=0, max_wait_s=0.0)


class TestClose:
    def test_close_drains_then_returns_none(self):
        queue = RequestQueue()
        queue.put(item(0))
        queue.close()
        assert [b.payload["n"] for b in queue.pop_batch(4, 0.0)] == [0]
        assert queue.pop_batch(4, 0.0) is None

    def test_closed_queue_rejects_put(self):
        queue = RequestQueue()
        queue.close()
        with pytest.raises(ServeError, match="closed"):
            queue.put(item(0))

    def test_close_wakes_blocked_pop(self):
        queue = RequestQueue()
        results = []

        def worker():
            results.append(queue.pop_batch(max_size=2, max_wait_s=10.0))

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.02)
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]
