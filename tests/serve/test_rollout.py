"""Tests for rollout control: canary routing and shadow accounting."""

import pytest

from repro.errors import ServeError
from repro.serve import RolloutController, responses_agree


RESPONSE_A = {"Intent": {"label": "height", "scores": {"height": 0.9}}}
RESPONSE_B = {"Intent": {"label": "age", "scores": {"age": 0.8}}}


class TestResponsesAgree:
    def test_same_hard_outputs_agree_despite_scores(self):
        other_scores = {"Intent": {"label": "height", "scores": {"height": 0.4}}}
        assert responses_agree(RESPONSE_A, other_scores)

    def test_label_mismatch_disagrees(self):
        assert not responses_agree(RESPONSE_A, RESPONSE_B)

    def test_sequence_and_select_fields_compared(self):
        a = {"POS": {"labels": ["NOUN", "VERB"]}, "IntentArg": {"index": 0}}
        b = {"POS": {"labels": ["NOUN", "VERB"]}, "IntentArg": {"index": 1}}
        assert responses_agree(a, dict(a))
        assert not responses_agree(a, b)

    def test_task_set_mismatch_disagrees(self):
        assert not responses_agree(RESPONSE_A, {})


class TestCanaryRouting:
    def test_inactive_controller_routes_stable(self):
        controller = RolloutController()
        assert all(controller.route(f"q{i}") == "stable" for i in range(50))

    def test_fraction_extremes(self):
        controller = RolloutController()
        controller.start_canary(0.0)
        assert controller.route("anything") == "stable"
        controller.start_canary(1.0)
        assert controller.route("anything") == "canary"

    def test_fraction_is_respected_and_deterministic(self):
        controller = RolloutController()
        controller.start_canary(0.3)
        routes = [controller.route(f"req-{i}") for i in range(1000)]
        share = routes.count("canary") / len(routes)
        assert 0.25 < share < 0.35
        # Same id, same side — retries do not flap across versions.
        assert [controller.route(f"req-{i}") for i in range(1000)] == routes

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ServeError, match="fraction"):
            RolloutController().start_canary(1.5)


class TestShadowAccounting:
    def test_agreements_and_disagreements_counted(self):
        controller = RolloutController()
        controller.start_shadow()
        assert controller.record_shadow("q0", {"p": 1}, RESPONSE_A, RESPONSE_A)
        assert not controller.record_shadow("q1", {"p": 2}, RESPONSE_A, RESPONSE_B)
        status = controller.status()
        assert status.shadow_served == 2
        assert status.shadow_disagreements == 1
        assert status.disagreement_rate == pytest.approx(0.5)

    def test_disagreement_examples_bounded(self):
        controller = RolloutController(max_disagreement_examples=3)
        for i in range(10):
            controller.record_shadow(f"q{i}", {"n": i}, RESPONSE_A, RESPONSE_B)
        examples = controller.disagreement_examples()
        assert len(examples) == 3
        assert examples[-1].request_id == "q9"
        assert examples[0].stable == RESPONSE_A

    def test_rate_none_before_any_shadow(self):
        assert RolloutController().status().disagreement_rate is None

    def test_stop_clears_modes_not_counters(self):
        controller = RolloutController()
        controller.start_canary(0.5, shadow=True)
        controller.note_served("canary")
        controller.stop()
        assert not controller.active
        assert controller.status().canary_served == 1
