"""Tier-1 wiring for the print lint (tools/check_print_calls.py).

The observability stack only pays off if the library actually routes
runtime signals through it; this test keeps ``src/repro`` free of bare
``print()`` calls (outside the CLI and the dashboard renderer) and pins
the lint's own detection logic with a known-bad snippet.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_print_calls import DEFAULT_TARGET, check_tree, violations_in


def test_src_tree_has_no_bare_print_calls():
    assert check_tree(DEFAULT_TARGET) == []


def test_lint_catches_bare_print(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def work(x):\n"
        "    print('debugging', x)\n"
        "    return x\n"
    )
    found = violations_in(bad)
    assert len(found) == 1
    assert "bare print()" in found[0]


def test_allowed_modules_are_exempt(tmp_path):
    (tmp_path / "cli.py").write_text("print('hi')\n")
    monitoring = tmp_path / "monitoring"
    monitoring.mkdir()
    (monitoring / "dashboards.py").write_text("print('panel')\n")
    (monitoring / "drift.py").write_text("print('oops')\n")
    problems = check_tree(tmp_path)
    assert len(problems) == 1 and "drift.py" in problems[0]


def test_shadowed_print_name_still_flagged_only_for_builtin_shape(tmp_path):
    # A method named print on an object is not a bare print() call.
    ok = tmp_path / "ok.py"
    ok.write_text("class Report:\n    def go(self, io):\n        io.print('x')\n")
    assert violations_in(ok) == []
