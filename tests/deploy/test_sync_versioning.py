"""Tests for large/small sync and model versioning."""

import pytest

from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.deploy import (
    ModelArtifact,
    ModelStore,
    VersionLog,
    check_pair,
    data_fingerprint,
    fetch_pair,
    push_pair,
)
from repro.errors import DeploymentError
from repro.model import compile_from_dataset

from tests.fixtures import mini_dataset


def config(size: int) -> ModelConfig:
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder="bow", size=size),
            "query": PayloadConfig(size=size),
            "entities": PayloadConfig(size=size),
        },
        trainer=TrainerConfig(epochs=1),
    )


def artifact_pair(seed=0, same_data=True):
    ds = mini_dataset(n=20, seed=seed)
    fp = data_fingerprint(ds.records)
    large_model, vocabs = compile_from_dataset(ds, config(32), seed=seed)
    small_model, _ = compile_from_dataset(ds, config(8), seed=seed)
    large = ModelArtifact.from_model(
        large_model, vocabs, extra_metadata={"data_fingerprint": fp}
    )
    small = ModelArtifact.from_model(
        small_model,
        vocabs,
        extra_metadata={"data_fingerprint": fp if same_data else "different"},
    )
    return large, small, ds


class TestSync:
    def test_push_and_fetch_pair(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        large, small, _ = artifact_pair()
        result = push_pair(store, "qa", large, small)
        assert result.large.model_name == "qa/large"
        fetched_large, fetched_small = fetch_pair(store, "qa")
        assert fetched_large.metadata["num_parameters"] > fetched_small.metadata[
            "num_parameters"
        ]

    def test_mismatched_data_rejected(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        large, small, _ = artifact_pair(same_data=False)
        with pytest.raises(DeploymentError, match="different data"):
            push_pair(store, "qa", large, small)

    def test_check_pair_in_sync(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        large, small, ds = artifact_pair()
        push_pair(store, "qa", large, small)
        check = check_pair(store, "qa")
        assert check.in_sync
        assert check.problems == []

    def test_check_pair_with_probes(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        large, small, ds = artifact_pair()
        push_pair(store, "qa", large, small)
        probes = [{"tokens": r.payloads["tokens"], "entities": r.payloads["entities"]}
                  for r in ds.records[:5]]
        check = check_pair(store, "qa", probe_payloads=probes, min_agreement=0.0)
        assert check.agreement is not None
        assert 0.0 <= check.agreement <= 1.0

    def test_check_pair_missing_half(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        large, small, _ = artifact_pair()
        store.push("qa/large", large)  # small never pushed
        check = check_pair(store, "qa")
        assert not check.in_sync

    def test_data_fingerprint_stable(self):
        ds = mini_dataset(n=10, seed=3)
        assert data_fingerprint(ds.records) == data_fingerprint(ds.records)
        assert data_fingerprint(ds.records[:5]) != data_fingerprint(ds.records)


class TestVersioning:
    def push_n(self, store, n):
        versions = []
        for seed in range(n):
            artifact, *_ = (lambda s: (ModelArtifact.from_model(
                *compile_from_dataset(mini_dataset(n=10, seed=s), config(8), seed=s)
            ),))(seed)
            versions.append(store.push("qa", artifact).version)
        return versions

    def test_semver_progression(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        contents = self.push_n(store, 3)
        log = VersionLog(store, "qa")
        r1 = log.record(contents[0])
        r2 = log.record(contents[1], bump="patch")
        r3 = log.record(contents[2], bump="major")
        assert (r1.semver, r2.semver, r3.semver) == ("1.0.0", "1.0.1", "2.0.0")
        assert r2.parent == "1.0.0"

    def test_record_requires_pushed_content(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        self.push_n(store, 1)
        log = VersionLog(store, "qa")
        with pytest.raises(DeploymentError, match="never pushed"):
            log.record("doesnotexist")

    def test_release_moves_latest(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        contents = self.push_n(store, 2)
        log = VersionLog(store, "qa")
        r1 = log.record(contents[0])
        log.record(contents[1])
        log.release(r1.semver)
        assert store.latest_version("qa") == contents[0]
        assert log.released().semver == r1.semver

    def test_rollback(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        contents = self.push_n(store, 2)
        log = VersionLog(store, "qa")
        r1 = log.record(contents[0])
        r2 = log.record(contents[1])
        log.release(r1.semver)
        log.release(r2.semver)
        log.rollback(r1.semver)
        assert store.latest_version("qa") == contents[0]
        statuses = {r.semver: r.status for r in log.records()}
        assert statuses[r1.semver] == "released"
        assert statuses[r2.semver] == "rolled_back"

    def test_lineage(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        contents = self.push_n(store, 3)
        log = VersionLog(store, "qa")
        for c in contents:
            log.record(c)
        assert log.lineage("1.2.0") == ["1.0.0", "1.1.0", "1.2.0"]
        with pytest.raises(DeploymentError):
            log.lineage("9.9.9")

    def test_unknown_version_operations(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        self.push_n(store, 1)
        log = VersionLog(store, "qa")
        with pytest.raises(DeploymentError):
            log.release("3.0.0")

    def test_fingerprints_recorded(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        contents = self.push_n(store, 1)
        log = VersionLog(store, "qa")
        record = log.record(contents[0])
        assert record.schema_fingerprint is not None
