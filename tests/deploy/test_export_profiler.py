"""Tests for backend export and the serving profiler."""

import numpy as np
import pytest

from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.deploy import (
    BACKENDS,
    ModelArtifact,
    Predictor,
    SLA,
    build_program_graph,
    export_backend_skeleton,
    profile_predictor,
    sla_gate,
)
from repro.errors import CompilationError, DeploymentError
from repro.model import compile_from_dataset

from tests.fixtures import factoid_schema, mini_dataset


def config(encoder="lstm"):
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder=encoder, size=8),
            "query": PayloadConfig(size=8, aggregation="max"),
            "entities": PayloadConfig(size=8),
        },
        trainer=TrainerConfig(epochs=1),
    )


class TestProgramGraph:
    def test_covers_all_payloads_and_tasks(self):
        graph = build_program_graph(factoid_schema(), config())
        names = {n.name for n in graph.nodes}
        assert "input:tokens" in names
        assert "encode:tokens" in names
        assert "encode:query" in names
        assert "encode:entities" in names
        for task in ("POS", "EntityType", "Intent", "IntentArg"):
            assert f"head:{task}" in names

    def test_dataflow_edges_follow_schema(self):
        graph = build_program_graph(factoid_schema(), config())
        assert graph.node("encode:query").inputs == ["encode:tokens"]
        assert "encode:tokens" in graph.node("encode:entities").inputs
        assert graph.node("head:Intent").inputs == ["encode:query"]

    def test_encoder_choice_from_config(self):
        graph = build_program_graph(factoid_schema(), config(encoder="cnn"))
        assert graph.node("encode:tokens").op == "cnn"
        assert graph.node("encode:query").op == "max"

    def test_topological_order(self):
        graph = build_program_graph(factoid_schema(), config())
        order = [n.name for n in graph.topological()]
        assert order.index("encode:tokens") < order.index("encode:query")
        assert order.index("encode:query") < order.index("head:Intent")

    def test_json_serializable(self):
        import json

        graph = build_program_graph(factoid_schema(), config())
        parsed = json.loads(graph.to_json())
        assert len(parsed) == len(graph.nodes)

    def test_unknown_node(self):
        graph = build_program_graph(factoid_schema(), config())
        with pytest.raises(CompilationError):
            graph.node("ghost")

    def test_raw_singleton_payload(self):
        from repro.core import Schema

        schema = Schema.from_dict(
            {
                "payloads": {"feat": {"type": "singleton", "dim": 3}},
                "tasks": {
                    "T": {"payload": "feat", "type": "multiclass", "classes": ["a", "b"]}
                },
            }
        )
        graph = build_program_graph(schema, ModelConfig())
        assert graph.node("encode:feat").op == "project"


class TestBackendSkeletons:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_emit(self, backend):
        graph = build_program_graph(factoid_schema(), config())
        text = export_backend_skeleton(graph, backend)
        assert backend in text
        assert "head_Intent" in text

    def test_backend_specific_ops(self):
        graph = build_program_graph(factoid_schema(), config(encoder="lstm"))
        tf = export_backend_skeleton(graph, "tensorflow")
        torch = export_backend_skeleton(graph, "pytorch")
        assert "tf.keras.layers.LSTM" in tf
        assert "torch.nn.LSTM" in torch

    def test_unknown_backend(self):
        graph = build_program_graph(factoid_schema(), config())
        with pytest.raises(CompilationError):
            export_backend_skeleton(graph, "mxnet")


def make_predictor():
    ds = mini_dataset(n=20, seed=0)
    model, vocabs = compile_from_dataset(
        ds,
        ModelConfig(
            payloads={
                "tokens": PayloadConfig(encoder="bow", size=8),
                "query": PayloadConfig(size=8),
                "entities": PayloadConfig(size=8),
            },
            trainer=TrainerConfig(epochs=1),
        ),
    )
    artifact = ModelArtifact.from_model(model, vocabs)
    payloads = [
        {"tokens": r.payloads["tokens"], "entities": r.payloads["entities"]}
        for r in ds.records[:10]
    ]
    return Predictor(artifact), payloads


class TestProfiler:
    def test_profile_shape(self):
        predictor, payloads = make_predictor()
        profile = profile_predictor(predictor, payloads, warmup=1)
        assert profile.n_requests == 10
        assert 0 < profile.p50 <= profile.p95 <= profile.p99
        assert profile.throughput_rps > 0
        assert set(profile.to_dict()) == {
            "n_requests", "p50", "p95", "p99", "mean", "throughput_rps",
        }

    def test_empty_payloads_rejected(self):
        predictor, _ = make_predictor()
        with pytest.raises(DeploymentError):
            profile_predictor(predictor, [])

    def test_sla_gate_passes_generous_sla(self):
        predictor, payloads = make_predictor()
        passed, profile, violations = sla_gate(
            predictor, payloads, SLA(p95_seconds=60.0)
        )
        assert passed
        assert violations == []

    def test_sla_gate_fails_impossible_sla(self):
        predictor, payloads = make_predictor()
        passed, _, violations = sla_gate(
            predictor, payloads, SLA(p95_seconds=1e-9, p99_seconds=1e-9)
        )
        assert not passed
        assert len(violations) == 2

    def test_warmup_longer_than_payloads_is_fine(self):
        predictor, payloads = make_predictor()
        profile = profile_predictor(predictor, payloads[:2], warmup=10)
        assert profile.n_requests == 2

    def test_sla_p99_optional(self):
        violations = SLA(p95_seconds=1e-9).check(
            profile_predictor(*make_predictor())
        )
        assert len(violations) == 1 and "p95" in violations[0]


class TestProfilerSpans:
    def test_profile_emits_one_run_span_with_request_children(self):
        import repro.obs as obs

        predictor, payloads = make_predictor()
        with obs.activated():
            profile_predictor(predictor, payloads, warmup=1)
            ring = obs.get_tracer().ring
            (root,) = [s for s in ring.spans() if s.name == "profile.run"]
            children = [s for s in ring.spans() if s.name == "profile.request"]
            assert root.attrs == {"n_requests": len(payloads)}
            assert len(children) == len(payloads)
            assert [c.attrs["index"] for c in children] == list(range(len(payloads)))
            for child in children:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                # record() reuses the profiler's own measured timestamps,
                # so child spans are strictly timed and non-negative.
                assert child.end_s >= child.start_s

    def test_profile_spans_reach_jsonl_exporter(self, tmp_path):
        import repro.obs as obs

        predictor, payloads = make_predictor()
        path = tmp_path / "profile.jsonl"
        exporter = obs.JsonlSpanExporter(path)
        tracer = obs.get_tracer()
        tracer.add_exporter(exporter)
        try:
            with obs.activated():
                profile_predictor(predictor, payloads[:3], warmup=1)
        finally:
            tracer.remove_exporter(exporter)
        names = [row["name"] for row in obs.JsonlSpanExporter.read(path)]
        assert names.count("profile.run") == 1
        assert names.count("profile.request") == 3

    def test_disabled_tracing_profiles_cleanly(self):
        import repro.obs as obs

        assert not obs.is_active()
        predictor, payloads = make_predictor()
        profile = profile_predictor(predictor, payloads, warmup=1)
        assert profile.n_requests == len(payloads)
        assert len(obs.get_tracer().ring) == 0
