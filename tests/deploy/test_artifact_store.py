"""Tests for artifacts, the model store, and the predictor."""

import numpy as np
import pytest

from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.data import encode_inputs
from repro.deploy import ModelArtifact, ModelStore, Predictor
from repro.errors import DeploymentError, StoreError
from repro.model import compile_from_dataset

from tests.fixtures import mini_dataset


def small_config():
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder="bow", size=8),
            "query": PayloadConfig(size=8),
            "entities": PayloadConfig(size=8),
        },
        trainer=TrainerConfig(epochs=1, batch_size=8),
    )


def make_artifact(seed=0, metrics=None):
    ds = mini_dataset(n=20, seed=seed)
    model, vocabs = compile_from_dataset(ds, small_config(), seed=seed)
    return ModelArtifact.from_model(model, vocabs, metrics=metrics), ds, model, vocabs


class TestArtifact:
    def test_roundtrip_preserves_predictions(self, tmp_path):
        artifact, ds, model, vocabs = make_artifact()
        artifact.save(tmp_path / "artifact")
        loaded = ModelArtifact.load(tmp_path / "artifact")
        rebuilt = loaded.build_model()
        batch = encode_inputs(ds.records[:4], ds.schema, vocabs)
        np.testing.assert_allclose(
            model.predict(batch)["Intent"].probs,
            rebuilt.predict(batch)["Intent"].probs,
        )

    def test_missing_file_rejected(self, tmp_path):
        artifact, *_ = make_artifact()
        artifact.save(tmp_path / "artifact")
        (tmp_path / "artifact" / "weights.npz").unlink()
        with pytest.raises(DeploymentError, match="weights"):
            ModelArtifact.load(tmp_path / "artifact")

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        artifact, *_ = make_artifact()
        artifact.save(tmp_path / "artifact")
        # Corrupt the schema file.
        schema_path = tmp_path / "artifact" / "schema.json"
        text = schema_path.read_text().replace('"max_length": 12', '"max_length": 11')
        schema_path.write_text(text)
        with pytest.raises(DeploymentError, match="fingerprint"):
            ModelArtifact.load(tmp_path / "artifact")

    def test_metadata_recorded(self):
        artifact, *_ = make_artifact(metrics={"Intent_accuracy": 0.9})
        assert artifact.metadata["metrics"]["Intent_accuracy"] == 0.9
        assert artifact.metadata["num_parameters"] > 0

    def test_slices_preserved(self, tmp_path):
        ds = mini_dataset(n=10)
        model, vocabs = compile_from_dataset(
            ds, small_config(), slice_names=["rare"]
        )
        artifact = ModelArtifact.from_model(model, vocabs)
        artifact.save(tmp_path / "a")
        rebuilt = ModelArtifact.load(tmp_path / "a").build_model()
        assert rebuilt.slice_names == ["rare"]


class TestModelStore:
    def test_push_fetch_roundtrip(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        artifact, *_ = make_artifact()
        version = store.push("qa", artifact)
        fetched = store.fetch("qa")
        assert fetched.schema == artifact.schema
        assert store.latest_version("qa") == version.version

    def test_push_idempotent(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        artifact, *_ = make_artifact()
        v1 = store.push("qa", artifact)
        v2 = store.push("qa", artifact)
        assert v1.version == v2.version
        assert len(store.versions("qa")) == 1

    def test_multiple_versions_and_latest(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        a1, *_ = make_artifact(seed=1)
        a2, *_ = make_artifact(seed=2)
        v1 = store.push("qa", a1)
        v2 = store.push("qa", a2)
        assert store.latest_version("qa") == v2.version
        assert len(store.versions("qa")) == 2
        # Fetch an explicit older version.
        old = store.fetch("qa", v1.version)
        assert old.metadata == a1.metadata

    def test_set_latest_rollback(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        v1 = store.push("qa", make_artifact(seed=1)[0])
        store.push("qa", make_artifact(seed=2)[0])
        store.set_latest("qa", v1.version)
        assert store.latest_version("qa") == v1.version

    def test_set_latest_unknown_version(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        store.push("qa", make_artifact()[0])
        with pytest.raises(StoreError):
            store.set_latest("qa", "deadbeef")

    def test_fetch_missing(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.fetch("ghost")

    def test_models_listing(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        store.push("b_model", make_artifact(seed=1)[0])
        store.push("a_model", make_artifact(seed=2)[0])
        assert store.models() == ["a_model", "b_model"]

    def test_delete_guards_latest(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        v1 = store.push("qa", make_artifact(seed=1)[0])
        v2 = store.push("qa", make_artifact(seed=2)[0])
        with pytest.raises(StoreError):
            store.delete("qa", v2.version)
        store.delete("qa", v1.version)
        assert len(store.versions("qa")) == 1

    def test_integrity_check_on_fetch(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        version = store.push("qa", make_artifact()[0])
        # Tamper with stored weights.
        weights_path = tmp_path / "store" / "qa" / version.version / "weights.npz"
        artifact = ModelArtifact.load(weights_path.parent)
        key = sorted(artifact.state)[0]
        artifact.state[key] = artifact.state[key] + 1.0
        np.savez(weights_path, **artifact.state)
        with pytest.raises(StoreError, match="integrity"):
            store.fetch("qa", version.version)


class TestAtomicIndex:
    def test_no_staging_files_left_behind(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        version = store.push("qa", make_artifact()[0])
        store.set_latest("qa", version.version)
        leftovers = {p.name for p in (tmp_path / "store" / "qa").iterdir()}
        assert leftovers == {"index.json", version.version}

    def test_failed_replace_preserves_old_index(self, tmp_path, monkeypatch):
        import os

        store = ModelStore(tmp_path / "store")
        v1 = store.push("qa", make_artifact(seed=1)[0])
        store.push("qa", make_artifact(seed=2)[0])

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.set_latest("qa", v1.version)
        monkeypatch.undo()
        # The index is still the intact pre-crash document, not a torn file.
        assert store.latest_version("qa") != v1.version
        assert len(store.versions("qa")) == 2
        assert not list((tmp_path / "store" / "qa").glob("*.tmp"))

    def test_concurrent_reader_never_sees_torn_index(self, tmp_path):
        """The canary-gateway race: latest_version polled during writes."""
        import threading

        store = ModelStore(tmp_path / "store")
        v1 = store.push("qa", make_artifact(seed=1)[0])
        v2 = store.push("qa", make_artifact(seed=2)[0])
        valid = {v1.version, v2.version}
        errors = []
        stop = threading.Event()

        def writer():
            for i in range(150):
                store.set_latest("qa", v1.version if i % 2 else v2.version)
            stop.set()

        def reader():
            while not stop.is_set():
                try:
                    assert store.latest_version("qa") in valid
                except Exception as exc:  # torn read -> JSONDecodeError etc.
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []

    def test_concurrent_writers_lose_no_versions(self, tmp_path):
        """push racing set_latest (trainer vs gateway promotion) must not
        drop version records from the index."""
        import threading

        store = ModelStore(tmp_path / "store")
        v1 = store.push("qa", make_artifact(seed=1)[0])
        artifacts = [make_artifact(seed=s)[0] for s in range(2, 6)]

        def pusher():
            for artifact in artifacts:
                store.push("qa", artifact, set_latest=False)

        def promoter():
            for _ in range(40):
                store.set_latest("qa", v1.version)

        threads = [threading.Thread(target=pusher), threading.Thread(target=promoter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(store.versions("qa")) == 1 + len(artifacts)
        assert store.latest_version("qa") == v1.version

    def test_push_without_set_latest_stages_version(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        v1 = store.push("qa", make_artifact(seed=1)[0])
        staged = store.push("qa", make_artifact(seed=2)[0], set_latest=False)
        assert store.latest_version("qa") == v1.version
        assert {v.version for v in store.versions("qa")} == {
            v1.version,
            staged.version,
        }
        # The staged version is fetchable and promotable.
        store.fetch("qa", staged.version)
        store.set_latest("qa", staged.version)
        assert store.latest_version("qa") == staged.version

    def test_first_push_sets_latest_even_when_staging(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        v1 = store.push("qa", make_artifact()[0], set_latest=False)
        assert store.latest_version("qa") == v1.version


class TestPredictor:
    def test_serves_typed_responses(self):
        artifact, ds, *_ = make_artifact()
        predictor = Predictor(artifact)
        response = predictor.predict_one(
            {
                "tokens": ["how", "tall", "is", "paris"],
                "entities": [{"id": "paris", "range": [3, 4]}],
            }
        )
        assert set(response) == {"POS", "EntityType", "Intent", "IntentArg"}
        assert response["Intent"]["label"] in ds.schema.task("Intent").classes
        assert len(response["POS"]["labels"]) == 4
        assert response["IntentArg"]["index"] == 0
        assert abs(sum(response["Intent"]["scores"].values()) - 1.0) < 1e-6

    def test_unknown_payload_rejected(self):
        artifact, *_ = make_artifact()
        predictor = Predictor(artifact)
        with pytest.raises(DeploymentError, match="unknown payloads"):
            predictor.predict_one({"bogus": [1]})

    def test_empty_batch(self):
        artifact, *_ = make_artifact()
        assert Predictor(artifact).predict([]) == []

    def test_from_directory(self, tmp_path):
        artifact, *_ = make_artifact()
        artifact.save(tmp_path / "artifact")
        predictor = Predictor.from_directory(tmp_path / "artifact")
        response = predictor.predict_one({"tokens": ["how", "old", "is", "obama"]})
        assert "Intent" in response

    def test_bitvector_response_shape(self):
        artifact, *_ = make_artifact()
        response = Predictor(artifact).predict_one({"tokens": ["paris"]})
        assert isinstance(response["EntityType"]["labels"], list)
        assert len(response["EntityType"]["labels"]) == 1  # one token
