"""Tests for constrained decoding inside the Predictor."""

import numpy as np
import pytest

from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.deploy import ModelArtifact, Predictor
from repro.model import compile_from_dataset
from repro.workloads import (
    FactoidGenerator,
    WorkloadConfig,
    factoid_constraints,
)


@pytest.fixture(scope="module")
def artifact():
    ds = FactoidGenerator(WorkloadConfig(n=40, seed=9)).generate()
    config = ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder="bow", size=8),
            "query": PayloadConfig(size=8),
            "entities": PayloadConfig(size=8),
        },
        trainer=TrainerConfig(epochs=1),
    )
    model, vocabs = compile_from_dataset(ds, config)
    return ModelArtifact.from_model(model, vocabs)


class TestConstrainedPredictor:
    def test_constrained_outputs_satisfy_invariant(self, artifact):
        from repro.workloads.gazetteer import GAZETTEER, INTENT_CATEGORY

        by_id = {e.id: e for e in GAZETTEER}
        predictor = Predictor(artifact, constraints=factoid_constraints(weight=50.0))
        payloads = [
            {
                "tokens": ["what", "is", "the", "capital", "of", "georgia"],
                "entities": [
                    {"id": "Georgia_(state)", "range": [5, 6]},
                    {"id": "Georgia_(country)", "range": [5, 6]},
                ],
            },
            {
                "tokens": ["how", "old", "is", "washington"],
                "entities": [
                    {"id": "George_Washington", "range": [3, 4]},
                    {"id": "Washington_(state)", "range": [3, 4]},
                ],
            },
        ]
        for payload, response in zip(payloads, predictor.predict(payloads)):
            intent = response["Intent"]["label"]
            index = response["IntentArg"]["index"]
            category = by_id[payload["entities"][index]["id"]].category
            assert category in INTENT_CATEGORY[intent]

    def test_without_constraints_unchanged(self, artifact):
        plain = Predictor(artifact)
        constrained = Predictor(artifact, constraints=factoid_constraints(weight=1e-9))
        payload = {
            "tokens": ["how", "tall", "is", "everest"],
            "entities": [{"id": "Mount_Everest", "range": [3, 4]}],
        }
        # With a negligible weight the constrained path must agree with the
        # plain path (penalty never outweighs probability).
        assert (
            plain.predict_one(payload)["IntentArg"]["index"]
            == constrained.predict_one(payload)["IntentArg"]["index"]
        )

    def test_empty_constraint_set_is_noop(self, artifact):
        from repro.core import ConstraintSet

        predictor = Predictor(artifact, constraints=ConstraintSet())
        response = predictor.predict_one(
            {"tokens": ["how", "tall", "is", "everest"],
             "entities": [{"id": "Mount_Everest", "range": [3, 4]}]}
        )
        assert "Intent" in response

    def test_sequence_tasks_never_constrained(self, artifact):
        """POS (sequence) output shape is unaffected by constrained decode."""
        predictor = Predictor(artifact, constraints=factoid_constraints())
        response = predictor.predict_one(
            {"tokens": ["how", "tall", "is", "everest"],
             "entities": [{"id": "Mount_Everest", "range": [3, 4]}]}
        )
        assert len(response["POS"]["labels"]) == 4
