"""Unit coverage for the benchmark regression gate (tools/run_benchmarks.py).

``--check`` compares this run's trajectory files against the previously
recorded ones; these tests pin the direction classifier (throughputs are
higher-better even when their names contain ``_s``) and the comparison
semantics (threshold, skip rules) without running any benchmark.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from run_benchmarks import classify_direction, compare_entries


class TestClassifyDirection:
    def test_throughput_keys_are_higher_better(self):
        for key in ("requests_per_s", "per_request_rps", "tape_free_fwd_per_s",
                    "speedup", "batch_fill_rate", "warm_cache_hits",
                    "promotions", "enabled_rps"):
            assert classify_direction(key) == "higher", key

    def test_latency_and_cost_keys_are_lower_better(self):
        for key in ("p95_latency_s", "serial_s", "epoch_fast_s",
                    "max_divergence", "overhead_frac", "prediction_flips",
                    "detect_to_promote_s", "noop_span_ns", "total_duration_s"):
            assert classify_direction(key) == "lower", key

    def test_unrecognized_keys_are_not_gated(self):
        assert classify_direction("trials") is None
        assert classify_direction("workers") is None

    def test_requests_per_s_is_not_mistaken_for_a_duration(self):
        # "_s" is in the name, but the higher-better rules win the tie.
        assert classify_direction("requests_per_s") == "higher"


class TestCompareEntries:
    def test_clean_run_produces_no_regressions(self):
        old = {"requests_per_s": 1000.0, "p95_latency_s": 0.010}
        new = {"requests_per_s": 990.0, "p95_latency_s": 0.011}
        assert compare_entries(old, new) == []

    def test_throughput_drop_beyond_threshold_is_flagged(self):
        old = {"requests_per_s": 1000.0}
        new = {"requests_per_s": 700.0}
        problems = compare_entries(old, new, threshold=0.2)
        assert len(problems) == 1
        assert "requests_per_s" in problems[0]
        assert "higher is better" in problems[0]

    def test_latency_growth_beyond_threshold_is_flagged(self):
        old = {"p95_latency_s": 0.010}
        new = {"p95_latency_s": 0.013}
        problems = compare_entries(old, new, threshold=0.2)
        assert len(problems) == 1
        assert "lower is better" in problems[0]

    def test_threshold_is_respected(self):
        old = {"p95_latency_s": 0.010}
        new = {"p95_latency_s": 0.013}
        assert compare_entries(old, new, threshold=0.5) == []

    def test_zero_and_missing_and_nonnumeric_keys_are_skipped(self):
        old = {"flips": 0, "requests_per_s": 1000.0, "tag": "v1"}
        new = {"flips": 5, "p95_latency_s": 0.5, "tag": "v2"}
        # flips: old == 0 (skip); requests_per_s / p95 not shared; tag str.
        assert compare_entries(old, new) == []

    def test_bools_are_not_treated_as_numbers(self):
        assert compare_entries({"hits": True}, {"hits": False}) == []
