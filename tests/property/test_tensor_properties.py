"""Property-based tests (hypothesis) for the autodiff substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import (
    Tensor,
    concat,
    cross_entropy,
    log_softmax,
    pad_sequences,
    softmax,
)

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


class TestSoftmaxProperties:
    @given(arrays((3, 5)))
    @settings(max_examples=50, deadline=None)
    def test_rows_sum_to_one(self, x):
        out = softmax(Tensor(x)).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(3), atol=1e-9)
        assert (out >= 0).all()

    @given(arrays((2, 4)), st.floats(min_value=-50, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_shift_invariance(self, x, shift):
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + shift)).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(arrays((3, 4)))
    @settings(max_examples=50, deadline=None)
    def test_log_softmax_nonpositive(self, x):
        assert (log_softmax(Tensor(x)).data <= 1e-12).all()


class TestAutodiffProperties:
    @given(arrays((4,)), arrays((4,)))
    @settings(max_examples=50, deadline=None)
    def test_addition_gradient_is_ones(self, x, y):
        a = Tensor(x, requires_grad=True)
        (a + Tensor(y)).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(4))

    @given(arrays((3,)), arrays((3,)))
    @settings(max_examples=50, deadline=None)
    def test_product_rule(self, x, y):
        a = Tensor(x, requires_grad=True)
        b = Tensor(y, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, y)
        np.testing.assert_allclose(b.grad, x)

    @given(arrays((2, 3)))
    @settings(max_examples=50, deadline=None)
    def test_linearity_of_gradients(self, x):
        # grad of (2f) = 2 grad of f
        a = Tensor(x, requires_grad=True)
        (a.sum() * 2.0).backward()
        g2 = a.grad.copy()
        a.zero_grad()
        a.sum().backward()
        np.testing.assert_allclose(g2, 2 * a.grad)

    @given(arrays((2, 2)))
    @settings(max_examples=50, deadline=None)
    def test_broadcast_sum_grad_counts(self, x):
        # y = x + row: every row element receives a gradient per row of x.
        row = Tensor(np.zeros(2), requires_grad=True)
        (Tensor(x) + row).sum().backward()
        np.testing.assert_allclose(row.grad, [2.0, 2.0])


class TestConcatProperties:
    @given(arrays((2, 3)), arrays((4, 3)))
    @settings(max_examples=50, deadline=None)
    def test_concat_preserves_content(self, a, b):
        out = concat([Tensor(a), Tensor(b)], axis=0).data
        np.testing.assert_allclose(out[:2], a)
        np.testing.assert_allclose(out[2:], b)

    @given(arrays((2, 3)), arrays((2, 5)))
    @settings(max_examples=50, deadline=None)
    def test_concat_grad_partition(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        concat([ta, tb], axis=1).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones_like(a))
        np.testing.assert_allclose(tb.grad, np.ones_like(b))


class TestLossProperties:
    @given(arrays((4, 3)))
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_nonnegative(self, logits):
        targets = np.array([0, 1, 2, 0])
        loss = cross_entropy(Tensor(logits), targets)
        assert loss.item() >= -1e-9

    @given(arrays((3, 4)))
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_uniform_soft_targets_bounded_below(self, logits):
        # With uniform soft targets the loss is at least log(K) (entropy).
        k = 4
        targets = np.full((3, k), 1.0 / k)
        loss = cross_entropy(Tensor(logits), targets)
        assert loss.item() >= np.log(k) - 1e-9


class TestPadSequencesProperties:
    @given(
        st.lists(
            st.lists(finite_floats, min_size=1, max_size=7).map(np.array),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mask_counts_lengths(self, seqs):
        padded, mask = pad_sequences(seqs)
        assert padded.shape == mask.shape
        np.testing.assert_allclose(mask.sum(axis=1), [len(s) for s in seqs])
        # Unmasked region reproduces the data.
        for i, s in enumerate(seqs):
            np.testing.assert_allclose(padded[i, : len(s)], s)
