"""Property-based tests for schema, vocab, stores, and supervision."""

import json
import string

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Schema
from repro.data import Record, RowStore, Vocab
from repro.supervision import ABSTAIN, LabelMatrix, LabelModel, majority_vote

identifiers = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


# ----------------------------------------------------------------------
# Schema round trips over generated schemas
# ----------------------------------------------------------------------
@st.composite
def schemas(draw):
    seq_name = draw(identifiers)
    task_name = draw(identifiers.filter(lambda s: s != seq_name))
    classes = draw(
        st.lists(identifiers, min_size=2, max_size=5, unique=True)
    )
    max_length = draw(st.integers(min_value=1, max_value=32))
    return Schema.from_dict(
        {
            "payloads": {seq_name: {"type": "sequence", "max_length": max_length}},
            "tasks": {
                task_name: {
                    "payload": seq_name,
                    "type": "multiclass",
                    "classes": classes,
                }
            },
        }
    )


class TestSchemaProperties:
    @given(schemas())
    @settings(max_examples=50, deadline=None)
    def test_json_roundtrip_identity(self, schema):
        assert Schema.from_json(schema.to_json()) == schema

    @given(schemas())
    @settings(max_examples=50, deadline=None)
    def test_fingerprint_deterministic(self, schema):
        again = Schema.from_json(schema.to_json())
        assert schema.fingerprint() == again.fingerprint()


# ----------------------------------------------------------------------
# Vocab
# ----------------------------------------------------------------------
class TestVocabProperties:
    @given(st.lists(identifiers, min_size=0, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_ids_are_bijective_over_known_symbols(self, symbols):
        vocab = Vocab(symbols)
        for s in set(symbols):
            assert vocab.symbol(vocab.id(s)) == s

    @given(st.lists(st.lists(identifiers, max_size=6), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_build_then_serialize_roundtrip(self, corpus):
        vocab = Vocab.build(corpus)
        again = Vocab.from_dict(json.loads(json.dumps(vocab.to_dict())))
        assert len(again) == len(vocab)
        for seq in corpus:
            assert again.ids(seq) == vocab.ids(seq)


# ----------------------------------------------------------------------
# Row store round trips over generated records
# ----------------------------------------------------------------------
json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-1000, 1000) | identifiers,
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(identifiers, children, max_size=3),
    max_leaves=8,
)


@st.composite
def records(draw):
    payloads = draw(st.dictionaries(identifiers, json_values, max_size=3))
    tasks = draw(
        st.dictionaries(
            identifiers,
            st.dictionaries(identifiers, json_values, min_size=1, max_size=2),
            max_size=2,
        )
    )
    tags = draw(st.lists(identifiers, max_size=3, unique=True))
    return Record(payloads=payloads, tasks=tasks, tags=tags)


class TestRowStoreProperties:
    @given(st.lists(records(), min_size=0, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_write_read_identity(self, recs):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            store = RowStore.write(Path(tmp) / "data.ovr", recs)
            try:
                assert len(store) == len(recs)
                for i, original in enumerate(recs):
                    assert store[i].to_dict() == original.to_dict()
            finally:
                store.close()


# ----------------------------------------------------------------------
# Label model invariants
# ----------------------------------------------------------------------
@st.composite
def label_matrices(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    m = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=2, max_value=4))
    votes = draw(
        st.lists(
            st.lists(st.integers(min_value=-1, max_value=k - 1), min_size=m, max_size=m),
            min_size=n,
            max_size=n,
        )
    )
    return LabelMatrix(
        votes=np.array(votes, dtype=np.int64),
        sources=[f"s{j}" for j in range(m)],
        cardinality=k,
        item_index=np.stack([np.arange(n), np.full(n, -1)], axis=1),
    )


class TestLabelModelProperties:
    @given(label_matrices())
    @settings(max_examples=40, deadline=None)
    def test_posteriors_are_distributions(self, matrix):
        result = LabelModel(max_iterations=20).fit(matrix)
        assert result.probs.shape == (matrix.n_items, matrix.cardinality)
        np.testing.assert_allclose(
            result.probs.sum(axis=1), np.ones(matrix.n_items), atol=1e-8
        )
        assert (result.probs >= 0).all()

    @given(label_matrices())
    @settings(max_examples=40, deadline=None)
    def test_accuracies_within_clamps(self, matrix):
        model = LabelModel(max_iterations=20)
        result = model.fit(matrix)
        assert (result.class_accuracies >= model.accuracy_floor - 1e-9).all()
        assert (result.class_accuracies <= model.accuracy_ceiling + 1e-9).all()

    @given(label_matrices())
    @settings(max_examples=40, deadline=None)
    def test_majority_vote_rows_stochastic(self, matrix):
        probs = majority_vote(matrix)
        np.testing.assert_allclose(
            probs.sum(axis=1), np.ones(matrix.n_items), atol=1e-9
        )

    @given(label_matrices())
    @settings(max_examples=40, deadline=None)
    def test_unanimous_items_follow_votes(self, matrix):
        probs = majority_vote(matrix)
        for i in range(matrix.n_items):
            row = matrix.votes[i]
            present = row[row != ABSTAIN]
            if len(present) and len(set(present.tolist())) == 1:
                assert probs[i].argmax() == present[0]
