"""Property tests for the parametric synth workload generator.

These are the contract tests behind ``docs/workloads.md``'s claims:

* a spec file *is* the dataset — byte-identical streams across fresh
  processes, order-independent per-record generation;
* generation is streaming — peak memory does not grow with ``n``;
* the difficulty knobs point the right way — turning one up measurably
  degrades the reference trainer;
* slice rarity is a control, not a suggestion — the rare slice's
  frequency tracks the knob;
* drift schedules are detectable exactly when they should be — the
  storm preset trips :func:`repro.monitoring.detect_drift`, the calm
  preset does not.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tracemalloc
from pathlib import Path

import repro
from repro.monitoring import detect_drift
from repro.workloads.synth import (
    RARE_SLICE,
    SynthGenerator,
    WorkloadSpec,
    measure_difficulty,
    preset,
    reference_config,
)

SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])

#: The monotonicity base: small enough for tier-1, large enough that the
#: measured error margins are stable (verified across seeds).
BASE = WorkloadSpec(
    name="prop",
    n=300,
    seed=3,
    vocab_size=80,
    label_noise=0.15,
    conflict_rate=0.0,
    slice_skew=0.8,
    slice_rarity=0.1,
    ambiguity=0.4,
    keyword_dropout=0.05,
)


def _measured_error(spec: WorkloadSpec) -> float:
    return measure_difficulty(
        spec, reference_config(size=12, epochs=3)
    ).overall_error


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


def _fingerprint_in_subprocess(spec_path: Path, n: int) -> subprocess.Popen:
    code = (
        "from repro.workloads.synth import SynthGenerator, WorkloadSpec\n"
        f"g = SynthGenerator(WorkloadSpec.from_file({str(spec_path)!r}))\n"
        f"print(g.stream_fingerprint({n}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_ROOT] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def test_spec_reproduces_identical_streams_across_processes(tmp_path):
    """One spec JSON -> byte-identical 100k-record streams, fresh processes."""
    n = 100_000
    spec = preset("synth-drift-storm").scaled(n)
    spec_path = tmp_path / "spec.json"
    spec.save(spec_path)
    first = _fingerprint_in_subprocess(spec_path, n)
    second = _fingerprint_in_subprocess(spec_path, n)
    out_a, err_a = first.communicate(timeout=300)
    out_b, err_b = second.communicate(timeout=300)
    assert first.returncode == 0, err_a
    assert second.returncode == 0, err_b
    assert out_a.strip() == out_b.strip()
    assert len(out_a.strip()) == 64  # a real sha256, not empty output


def test_records_are_order_independent():
    """record(i) is a pure function of (spec, i) — order of calls is noise."""
    spec = BASE.scaled(500)
    forward = SynthGenerator(spec)
    backward = SynthGenerator(spec)
    sample = [0, 7, 123, 250, 499]
    in_order = [forward.record(i, spec.n).to_dict() for i in sample]
    reversed_order = [
        backward.record(i, spec.n).to_dict() for i in reversed(sample)
    ]
    assert in_order == list(reversed(reversed_order))


def test_json_round_trip_is_exact():
    spec = preset("synth-drift-storm").scaled(123).reseeded(7)
    assert WorkloadSpec.from_dict(spec.to_dict()) == spec
    assert spec.fingerprint() == WorkloadSpec.from_dict(spec.to_dict()).fingerprint()


# ----------------------------------------------------------------------
# Streaming
# ----------------------------------------------------------------------


def _peak_streaming_bytes(n: int) -> int:
    generator = SynthGenerator(BASE.scaled(n))
    tracemalloc.start()
    count = sum(1 for _ in generator.iter_records(n))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert count == n
    return peak


def test_streaming_memory_is_independent_of_n():
    """10x the records must not mean 10x the memory: nothing accumulates.

    Scales are small because tracemalloc slows generation ~10x, but the
    streaming peak reaches steady state within the first few records —
    any per-record accumulation would still blow the 2x bound.
    """
    small = _peak_streaming_bytes(500)
    large = _peak_streaming_bytes(5_000)
    assert large < 2 * small, (small, large)


# ----------------------------------------------------------------------
# Monotonicity: harder specs are measurably harder
# ----------------------------------------------------------------------


def test_label_noise_degrades_trainer_quality():
    easy = _measured_error(BASE.replace(label_noise=0.05))
    hard = _measured_error(BASE.replace(label_noise=0.45))
    assert hard > easy + 0.02, (easy, hard)


def test_conflict_rate_degrades_trainer_quality():
    # Isolated to the sources weak_b can actually poison: with the
    # keyword/crowd rescuers in play the label model routes around the
    # conflict and the margin collapses into noise.
    isolated = BASE.replace(
        sources=("weak_a", "weak_b", "lf_tagger", "lf_types", "lf_pop", "lf_compat")
    )
    easy = _measured_error(isolated.replace(conflict_rate=0.0))
    hard = _measured_error(isolated.replace(conflict_rate=0.55))
    assert hard > easy + 0.02, (easy, hard)


def test_keyword_dropout_degrades_trainer_quality():
    easy = _measured_error(BASE.replace(keyword_dropout=0.02))
    hard = _measured_error(BASE.replace(keyword_dropout=0.5))
    assert hard > easy + 0.02, (easy, hard)


# ----------------------------------------------------------------------
# Slice rarity is a frequency control
# ----------------------------------------------------------------------


def _rare_fraction(spec: WorkloadSpec) -> float:
    tag = f"slice:{RARE_SLICE}"
    generator = SynthGenerator(spec)
    hits = sum(1 for r in generator.iter_records(spec.n) if tag in r.tags)
    return hits / spec.n


def test_slice_rarity_controls_rare_slice_frequency():
    n = 4_000
    low = _rare_fraction(BASE.replace(n=n, slice_rarity=0.02))
    high = _rare_fraction(BASE.replace(n=n, slice_rarity=0.10))
    assert 0.01 <= low <= 0.04, low
    assert 0.07 <= high <= 0.14, high
    assert high > low


# ----------------------------------------------------------------------
# Drift schedules: detectable exactly when they should be
# ----------------------------------------------------------------------


def _drift_report(preset_name: str):
    spec = preset(preset_name).scaled(500)
    reference = SynthGenerator(spec.without_drift()).dataset(validate=False)
    live_tail = [
        r
        for r in SynthGenerator(spec).iter_records(spec.n, start=int(spec.n * 0.6))
    ]
    vocab = reference.build_vocabs()["tokens"]
    return detect_drift(
        reference.records, live_tail, vocab, js_threshold=0.35, oov_threshold=0.05
    )


def test_drift_storm_is_detected_and_calm_is_not():
    storm = _drift_report("synth-drift-storm")
    calm = _drift_report("synth-drift-calm")
    assert storm.drifted(), storm
    assert storm.oov_rate_live > 0.2, storm
    assert not calm.drifted(), calm
    assert calm.oov_rate_live < 0.05, calm
