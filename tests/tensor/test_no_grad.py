"""Tape-free mode: no_grad/enable_grad semantics and graph elision."""

import threading

import numpy as np
import pytest

from repro.errors import GradientError
from repro.tensor import (
    Tensor,
    concat,
    enable_grad,
    gather_rows,
    is_grad_enabled,
    masked_fill,
    no_grad,
    stack,
    where,
)


class TestNoGradState:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_context_disables_and_restores(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nesting_restores_previous_state(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_enable_grad_escape_hatch(self):
        with no_grad():
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_decorator_form(self):
        @no_grad()
        def probe():
            return is_grad_enabled()

        assert probe() is False
        assert is_grad_enabled()

    def test_thread_local(self):
        seen = {}

        def worker():
            seen["worker"] = is_grad_enabled()

        with no_grad():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The other thread never saw this thread's disabled state.
        assert seen["worker"] is True


class TestTapeElision:
    def test_ops_record_no_parents(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            out = ((x * 2.0 + 1.0) / 3.0).tanh().sum()
        assert not out.requires_grad
        assert out._parents == []
        with pytest.raises(GradientError):
            out.backward()

    def test_leaf_creation_unaffected(self):
        with no_grad():
            leaf = Tensor([1.0], requires_grad=True)
        assert leaf.requires_grad

    def test_make_safety_net(self):
        # Even an op that hands _make a parent list is stripped tape-free.
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = Tensor._make(x.data * 2, [(x, lambda g: g)], "custom")
        assert not out.requires_grad and out._parents == []

    def test_functional_ops_elided(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        y = Tensor(np.zeros((2, 3)), requires_grad=True)
        table = Tensor(np.ones((50, 3)), requires_grad=True)
        with no_grad():
            for out in (
                concat([x, y], axis=0),
                stack([x, y]),
                where(np.ones((2, 3), dtype=bool), x, y),
                gather_rows(table, np.array([1, 2])),
                masked_fill(x, np.zeros((2, 3), dtype=bool), -1.0),
            ):
                assert not out.requires_grad
                assert out._parents == []

    def test_values_identical_to_taped(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)

        def compute(t):
            return ((t * 2.0).sigmoid() + t.tanh()).relu().sum(axis=1).sqrt()

        taped = compute(x)
        with no_grad():
            free = compute(x)
        # Tape elision is pure: identical arithmetic, identical results.
        np.testing.assert_array_equal(taped.data, free.data)

    def test_grads_flow_again_after_context(self):
        x = Tensor([2.0], requires_grad=True)
        with no_grad():
            (x * 3.0).sum()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [3.0])
