"""Unit tests for functional tensor ops (concat/stack/where/gather/masking)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import (
    SparseRowGrad,
    Tensor,
    concat,
    stack,
    where,
    gather_rows,
    masked_fill,
    dropout_mask,
    pad_sequences,
)

from tests.helpers import check_grad


class TestConcat:
    def test_forward(self):
        out = concat([Tensor([1.0, 2.0]), Tensor([3.0])])
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])

    def test_grad_splits(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (concat([a, b]) * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_axis1(self):
        rng = np.random.default_rng(0)
        other = Tensor(rng.normal(size=(2, 2)))
        check_grad(lambda t: concat([t, other], axis=1).sum() * 2, rng.normal(size=(2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            concat([])


class TestStack:
    def test_forward_shape(self):
        out = stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])])
        assert out.shape == (2, 2)

    def test_grad_unstacks(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (stack([a, b], axis=0) * Tensor([[1.0, 1.0], [2.0, 2.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [2.0, 2.0])

    def test_stack_new_last_axis(self):
        out = stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])], axis=-1)
        assert out.shape == (2, 2)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            stack([])


class TestWhere:
    def test_forward(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_grad_routed_by_condition(self):
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_accepts_raw_arrays(self):
        out = where(np.array([True]), np.array([3.0]), np.array([4.0]))
        np.testing.assert_allclose(out.data, [3.0])


class TestGatherRows:
    def test_forward(self):
        table = Tensor(np.arange(6.0).reshape(3, 2))
        out = gather_rows(table, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[4.0, 5.0], [0.0, 1.0]])

    def test_grad_scatter_adds(self):
        table = Tensor(np.zeros((3, 2)), requires_grad=True)
        gather_rows(table, np.array([1, 1, 0])).sum().backward()
        # Small tables keep the dense scatter-add gradient.
        assert isinstance(table.grad, np.ndarray)
        np.testing.assert_allclose(table.grad, [[1.0, 1.0], [2.0, 2.0], [0.0, 0.0]])

    def test_grad_sparse_for_large_leaf_table(self):
        table = Tensor(np.zeros((64, 2)), requires_grad=True)
        gather_rows(table, np.array([5, 5, 9])).sum().backward()
        # Tables much larger than the index count get a sparse row grad.
        assert isinstance(table.grad, SparseRowGrad)
        dense = table.grad.to_dense()
        np.testing.assert_allclose(dense[5], [2.0, 2.0])
        np.testing.assert_allclose(dense[9], [1.0, 1.0])
        assert dense.sum() == 6.0

    def test_multidim_indices(self):
        table = Tensor(np.arange(8.0).reshape(4, 2))
        out = gather_rows(table, np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 2)

    def test_requires_2d_table(self):
        with pytest.raises(ShapeError):
            gather_rows(Tensor(np.zeros(3)), np.array([0]))

    def test_grad_through_multidim(self):
        table = Tensor(np.zeros((2, 3)), requires_grad=True)
        gather_rows(table, np.array([[0, 0], [1, 0]])).sum().backward()
        np.testing.assert_allclose(table.grad[0], [3.0, 3.0, 3.0])
        np.testing.assert_allclose(table.grad[1], [1.0, 1.0, 1.0])

    def test_grad_dense_for_non_leaf_table(self):
        base = Tensor(np.ones((3, 2)), requires_grad=True)
        table = base * 2.0
        gather_rows(table, np.array([1, 1])).sum().backward()
        # Non-leaf tables keep the dense scatter-add path so upstream vjps
        # always see plain arrays.
        np.testing.assert_allclose(
            base.grad, [[0.0, 0.0], [4.0, 4.0], [0.0, 0.0]]
        )


class TestMaskedFill:
    def test_forward(self):
        out = masked_fill(Tensor([1.0, 2.0]), np.array([False, True]), -9.0)
        np.testing.assert_allclose(out.data, [1.0, -9.0])

    def test_grad_blocked_at_masked(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        masked_fill(t, np.array([False, True]), -9.0).sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 0.0])


class TestDropoutMask:
    def test_rate_zero_is_identity(self):
        mask = dropout_mask((100,), 0.0, np.random.default_rng(0))
        np.testing.assert_allclose(mask, np.ones(100))

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(1)
        mask = dropout_mask((100_000,), 0.3, rng)
        assert abs(mask.mean() - 1.0) < 0.02

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            dropout_mask((3,), 1.0, np.random.default_rng(0))


class TestPadSequences:
    def test_basic(self):
        padded, mask = pad_sequences([np.array([1.0, 2.0]), np.array([3.0])])
        np.testing.assert_allclose(padded, [[1.0, 2.0], [3.0, 0.0]])
        np.testing.assert_allclose(mask, [[1.0, 1.0], [1.0, 0.0]])

    def test_custom_pad_value(self):
        padded, _ = pad_sequences([np.array([1.0]), np.array([2.0, 3.0])], pad_value=-1)
        assert padded[0, 1] == -1

    def test_empty(self):
        padded, mask = pad_sequences([])
        assert padded.shape == (0, 0)
        assert mask.shape == (0, 0)
