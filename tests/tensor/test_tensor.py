"""Unit tests for the core autodiff Tensor."""

import numpy as np
import pytest

from repro.errors import GradientError, ShapeError
from repro.tensor import Tensor, tensor, zeros, ones

from tests.helpers import check_grad


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_from_int_array_casts_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.data.dtype == np.float64

    def test_scalar(self):
        t = Tensor(2.5)
        assert t.shape == ()
        assert t.item() == 2.5

    def test_item_requires_single_element(self):
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_zeros_ones_helpers(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones(4).data.sum() == 4.0
        assert tensor([1.0], requires_grad=True).requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3


class TestBackwardBasics:
    def test_backward_requires_grad(self):
        with pytest.raises(GradientError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_explicit_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(GradientError):
            out.backward()

    def test_backward_explicit_grad_shape_checked(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(ShapeError):
            out.backward(np.ones(3))

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward(accumulate=True)
        np.testing.assert_allclose(t.grad, [4.0])

    def test_backward_default_overwrites_reusing_buffer(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        buffer = t.grad
        (t * 3).sum().backward()
        assert t.grad is buffer  # same allocation, refreshed in place
        np.testing.assert_allclose(t.grad, [3.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x  — gradient should be 4x, checking fan-out accumulation
        x = Tensor([3.0], requires_grad=True)
        y = x * x + x * x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestArithmeticGradients:
    def test_add(self):
        check_grad(lambda t: (t + t).sum(), np.random.default_rng(0).normal(size=(3, 4)))

    def test_add_broadcast(self):
        rng = np.random.default_rng(1)
        b = rng.normal(size=(4,))
        check_grad(lambda t: (t + Tensor(b)).sum(), rng.normal(size=(3, 4)))

    def test_broadcast_gradient_to_smaller_operand(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [3.0] * 4)

    def test_sub_rsub(self):
        t = Tensor([2.0], requires_grad=True)
        (5.0 - t).sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0])

    def test_mul(self):
        rng = np.random.default_rng(2)
        check_grad(lambda t: (t * t * 2.0).sum(), rng.normal(size=(2, 3)))

    def test_div(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(3,)) + 5.0
        check_grad(lambda t: (1.0 / t).sum(), x)

    def test_div_both_sides(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_pow(self):
        rng = np.random.default_rng(4)
        check_grad(lambda t: (t**3).sum(), rng.normal(size=(3,)) + 2.0)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        t = Tensor([1.0, -2.0], requires_grad=True)
        (-t).sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0, -1.0])


class TestMatmulGradients:
    def test_matmul_2d(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=(4, 2))
        check_grad(lambda t: (t @ Tensor(w)).sum(), rng.normal(size=(3, 4)))

    def test_matmul_grad_right(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(3, 4))
        check_grad(lambda t: (Tensor(x) @ t).sum(), rng.normal(size=(4, 2)))

    def test_matmul_vector_right(self):
        rng = np.random.default_rng(7)
        v = rng.normal(size=(4,))
        check_grad(lambda t: (t @ Tensor(v)).sum(), rng.normal(size=(3, 4)))

    def test_matmul_batched(self):
        rng = np.random.default_rng(8)
        w = rng.normal(size=(2, 4, 5))
        check_grad(lambda t: (t @ Tensor(w)).sum(), rng.normal(size=(2, 3, 4)))

    def test_matmul_batched_broadcast_weight(self):
        rng = np.random.default_rng(9)
        w = rng.normal(size=(4, 5))
        x = rng.normal(size=(2, 3, 4))
        check_grad(lambda t: (t @ Tensor(w)).sum(), x)
        # And gradient flows to the broadcast weight correctly.
        wt = Tensor(w, requires_grad=True)
        (Tensor(x) @ wt).sum().backward()
        assert wt.grad.shape == w.shape

    def test_matmul_scalar_rejected(self):
        with pytest.raises(ShapeError):
            Tensor(2.0) @ Tensor([1.0])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        rng = np.random.default_rng(10)
        check_grad(lambda t: (t.reshape(6) * 2).sum(), rng.normal(size=(2, 3)))

    def test_reshape_tuple_arg(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape((2, 3)).shape == (2, 3)

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.T.shape == (4, 3, 2)

    def test_transpose_grad(self):
        rng = np.random.default_rng(11)
        check_grad(lambda t: (t.transpose(1, 0) * 3).sum(), rng.normal(size=(2, 3)))

    def test_swapaxes_grad(self):
        rng = np.random.default_rng(12)
        check_grad(lambda t: (t.swapaxes(0, 1) * 2).sum(), rng.normal(size=(2, 3)))

    def test_getitem_grad_scatter(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t[0].sum().backward()
        np.testing.assert_allclose(t.grad, [[1.0, 1.0, 1.0], [0.0, 0.0, 0.0]])

    def test_getitem_repeated_index_accumulates(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        t[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 1.0])

    def test_expand_squeeze(self):
        t = Tensor(np.ones((3,)), requires_grad=True)
        out = t.expand_dims(0).squeeze(0)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 1.0, 1.0])


class TestReductions:
    def test_sum_all(self):
        check_grad(lambda t: t.sum(), np.random.default_rng(13).normal(size=(3, 4)))

    def test_sum_axis(self):
        rng = np.random.default_rng(14)
        check_grad(lambda t: (t.sum(axis=0) * 2).sum(), rng.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        rng = np.random.default_rng(15)
        check_grad(
            lambda t: (t.sum(axis=1, keepdims=True) * 2).sum(), rng.normal(size=(3, 4))
        )

    def test_mean_all(self):
        check_grad(lambda t: t.mean(), np.random.default_rng(16).normal(size=(4,)))

    def test_mean_axis_tuple(self):
        rng = np.random.default_rng(17)
        check_grad(lambda t: (t.mean(axis=(0, 1)) * 2).sum(), rng.normal(size=(2, 3, 4)))

    def test_max_axis(self):
        rng = np.random.default_rng(18)
        # Use well-separated values to avoid tie subtleties in the check.
        x = rng.permutation(12).astype(np.float64).reshape(3, 4)
        check_grad(lambda t: t.max(axis=1).sum(), x)

    def test_max_splits_ties(self):
        t = Tensor([[1.0, 1.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestElementwise:
    def test_exp(self):
        check_grad(lambda t: t.exp().sum(), np.random.default_rng(19).normal(size=(3,)))

    def test_log(self):
        x = np.random.default_rng(20).random(3) + 0.5
        check_grad(lambda t: t.log().sum(), x)

    def test_sqrt(self):
        x = np.random.default_rng(21).random(3) + 0.5
        check_grad(lambda t: t.sqrt().sum(), x)

    def test_tanh(self):
        check_grad(lambda t: t.tanh().sum(), np.random.default_rng(22).normal(size=(3,)))

    def test_sigmoid(self):
        check_grad(
            lambda t: t.sigmoid().sum(), np.random.default_rng(23).normal(size=(4,))
        )

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor([1000.0, -1000.0]).sigmoid()
        np.testing.assert_allclose(out.data, [1.0, 0.0], atol=1e-12)

    def test_relu(self):
        x = np.array([-1.0, 0.5, 2.0])
        t = Tensor(x, requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0])

    def test_clip_grad_zero_outside(self):
        t = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_abs(self):
        t = Tensor([-2.0, 3.0], requires_grad=True)
        t.abs().sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0, 1.0])
