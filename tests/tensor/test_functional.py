"""Unit tests for stable activations and noise-aware losses."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import (
    Tensor,
    log_softmax,
    softmax,
    cross_entropy,
    binary_cross_entropy_with_logits,
    select_loss,
    l2_penalty,
    accuracy,
)

from tests.helpers import check_grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        out = softmax(Tensor(rng.normal(size=(4, 5))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_stable_for_large_logits(self):
        out = softmax(Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            log_softmax(Tensor(x)).data, np.log(softmax(Tensor(x)).data), atol=1e-10
        )

    def test_grad(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(3, 4))
        check_grad(lambda t: (softmax(t) * Tensor(w)).sum(), rng.normal(size=(3, 4)))


class TestCrossEntropy:
    def test_hard_targets_value(self):
        logits = Tensor(np.log(np.array([[0.7, 0.3], [0.4, 0.6]])))
        loss = cross_entropy(logits, np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.6)) / 2
        assert abs(loss.item() - expected) < 1e-10

    def test_soft_targets(self):
        logits = Tensor(np.zeros((1, 2)))
        loss = cross_entropy(logits, np.array([[0.5, 0.5]]))
        assert abs(loss.item() - np.log(2)) < 1e-10

    def test_grad_hard(self):
        rng = np.random.default_rng(3)
        targets = np.array([0, 2, 1])
        check_grad(lambda t: cross_entropy(t, targets), rng.normal(size=(3, 3)))

    def test_grad_soft(self):
        rng = np.random.default_rng(4)
        probs = rng.dirichlet(np.ones(3), size=4)
        check_grad(lambda t: cross_entropy(t, probs), rng.normal(size=(4, 3)))

    def test_sample_weights_zero_examples_ignored(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        # Second example is wrong but has zero weight.
        loss = cross_entropy(logits, np.array([0, 0]), sample_weights=np.array([1.0, 0.0]))
        assert loss.item() < 1e-4

    def test_all_zero_weights_returns_zero_loss(self):
        logits = Tensor(np.ones((2, 2)), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 1]), sample_weights=np.zeros(2))
        assert loss.item() == 0.0
        loss.backward()  # must stay differentiable

    def test_class_weights_rebalance(self):
        logits = Tensor(np.zeros((2, 2)))
        # Upweighting class 1 doesn't change the loss value for uniform
        # logits (both classes give log 2) but must be accepted and keep the
        # normalization.
        loss = cross_entropy(
            logits, np.array([0, 1]), class_weights=np.array([1.0, 3.0])
        )
        assert abs(loss.item() - np.log(2)) < 1e-10

    def test_class_weight_shape_checked(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 2))), np.array([0, 1]), class_weights=np.ones(3))

    def test_bad_target_shape(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 2))), np.zeros((2, 3)))

    def test_requires_2d_logits(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros(4)), np.array([0]))


class TestBinaryCrossEntropy:
    def test_matches_reference(self):
        x = np.array([[0.5, -1.0]])
        t = np.array([[1.0, 0.0]])
        loss = binary_cross_entropy_with_logits(Tensor(x), t)
        p = 1 / (1 + np.exp(-x))
        ref = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert abs(loss.item() - ref) < 1e-10

    def test_stable_for_extreme_logits(self):
        loss = binary_cross_entropy_with_logits(
            Tensor([[500.0, -500.0]]), np.array([[1.0, 0.0]])
        )
        assert loss.item() < 1e-10

    def test_grad(self):
        rng = np.random.default_rng(5)
        t = rng.random((3, 4))
        check_grad(
            lambda x: binary_cross_entropy_with_logits(x, t), rng.normal(size=(3, 4))
        )

    def test_soft_targets_supported(self):
        loss = binary_cross_entropy_with_logits(Tensor([[0.0]]), np.array([[0.5]]))
        assert abs(loss.item() - np.log(2)) < 1e-10

    def test_pos_weight(self):
        x = Tensor([[0.0, 0.0]])
        t = np.array([[1.0, 0.0]])
        unweighted = binary_cross_entropy_with_logits(x, t).item()
        weighted = binary_cross_entropy_with_logits(x, t, pos_weight=2.0).item()
        # Positive element loss doubles; negative unchanged.
        assert weighted > unweighted

    def test_sample_weights(self):
        x = Tensor([[10.0], [-10.0]])
        t = np.array([[1.0], [1.0]])
        loss = binary_cross_entropy_with_logits(
            x, t, sample_weights=np.array([1.0, 0.0])
        )
        assert loss.item() < 1e-4

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            binary_cross_entropy_with_logits(Tensor(np.zeros((2, 2))), np.zeros((2, 3)))


class TestSelectLoss:
    def test_masked_candidates_excluded(self):
        scores = Tensor(np.array([[0.0, 0.0, 99.0]]))
        target = np.array([[1.0, 0.0, 0.0]])
        mask = np.array([[1.0, 1.0, 0.0]])  # third candidate invalid
        loss = select_loss(scores, target, mask)
        # With the invalid candidate masked the softmax is uniform over 2.
        assert abs(loss.item() - np.log(2)) < 1e-6

    def test_grad(self):
        rng = np.random.default_rng(6)
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 1.0]])
        target = np.array([[1.0, 0.0, 0.0], [0.0, 0.5, 0.5]])
        check_grad(
            lambda t: select_loss(t, target, mask), rng.normal(size=(2, 3))
        )

    def test_zero_weights(self):
        scores = Tensor(np.zeros((1, 2)), requires_grad=True)
        loss = select_loss(
            scores,
            np.array([[1.0, 0.0]]),
            np.ones((1, 2)),
            sample_weights=np.zeros(1),
        )
        assert loss.item() == 0.0


class TestL2Penalty:
    def test_value(self):
        penalty = l2_penalty([Tensor([1.0, 2.0]), Tensor([[3.0]])])
        assert penalty.item() == 1 + 4 + 9

    def test_empty(self):
        assert l2_penalty([]).item() == 0.0

    def test_grad(self):
        t = Tensor([2.0], requires_grad=True)
        l2_penalty([t]).backward()
        np.testing.assert_allclose(t.grad, [4.0])


class TestAccuracy:
    def test_basic(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 1])) == 0.5

    def test_empty(self):
        assert accuracy(np.zeros((0, 2)), np.zeros(0)) == 0.0
