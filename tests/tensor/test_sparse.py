"""SparseRowGrad: the embedding-gradient algebra and optimizer parity."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.tensor import SparseRowGrad, Tensor, gather_rows


def make_grad(shape=(40, 3)):
    idx = np.array([3, 7, 3])
    vals = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [0.5, 0.5, 0.5]])
    return SparseRowGrad(idx, vals, shape)


class TestAlgebra:
    def test_to_dense_scatter_adds(self):
        dense = make_grad().to_dense()
        np.testing.assert_allclose(dense[3], [1.5, 2.5, 3.5])
        np.testing.assert_allclose(dense[7], [4.0, 5.0, 6.0])
        assert dense.shape == (40, 3)
        assert np.count_nonzero(dense.sum(axis=1)) == 2

    def test_coalesce_merges_duplicates(self):
        g = make_grad().coalesce()
        assert g.coalesced
        np.testing.assert_array_equal(g.indices, [3, 7])
        np.testing.assert_allclose(g.values[0], [1.5, 2.5, 3.5])
        # Idempotent: second call is a no-op returning the same object.
        assert g.coalesce() is g

    def test_sparse_plus_sparse_concatenates(self):
        total = make_grad() + make_grad()
        assert isinstance(total, SparseRowGrad)
        np.testing.assert_allclose(total.to_dense(), 2 * make_grad().to_dense())

    def test_sparse_plus_dense_densifies(self):
        base = np.ones((40, 3))
        for total in (make_grad() + base, base + make_grad()):
            assert isinstance(total, np.ndarray)
            np.testing.assert_allclose(total, base + make_grad().to_dense())

    def test_scalar_scaling(self):
        np.testing.assert_allclose(
            (make_grad() * 0.5).to_dense(), 0.5 * make_grad().to_dense()
        )
        np.testing.assert_allclose(
            (2.0 * make_grad()).to_dense(), 2.0 * make_grad().to_dense()
        )

    def test_copy_is_deep(self):
        g = make_grad()
        c = g.copy()
        c.values[:] = 0.0
        assert g.values.sum() != 0.0

    def test_norm_sq_matches_dense(self):
        g = make_grad()
        np.testing.assert_allclose(g.norm_sq(), (g.to_dense() ** 2).sum())

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            SparseRowGrad(np.array([0]), np.zeros((1, 2)), (5, 3))
        with pytest.raises(ShapeError):
            SparseRowGrad(np.array([0, 1]), np.zeros((1, 3)), (5, 3))


def lookup_loss(table, idx):
    return (gather_rows(table, idx) * 2.0).sum()


class TestOptimizerParity:
    """Sparse updates must match the dense math bit-for-bit (or near)."""

    def params_pair(self, vocab=100, dim=4, seed=0):
        rng = np.random.default_rng(seed)
        init = rng.normal(size=(vocab, dim))
        return Parameter(init.copy()), Parameter(init.copy())

    def grads_pair(self, p_sparse, p_dense, seed=1):
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, p_sparse.data.shape[0], size=6)
        vals = rng.normal(size=(6, p_sparse.data.shape[1]))
        p_sparse.grad = SparseRowGrad(idx, vals, p_sparse.data.shape)
        dense = np.zeros_like(p_dense.data)
        np.add.at(dense, idx, vals)
        p_dense.grad = dense

    @pytest.mark.parametrize(
        "factory",
        [
            lambda ps: SGD(ps, lr=0.1),
            lambda ps: SGD(ps, lr=0.1, momentum=0.9),
            lambda ps: SGD(ps, lr=0.1, weight_decay=0.01),
            lambda ps: Adam(ps, lr=0.01),
            lambda ps: Adam(ps, lr=0.01, weight_decay=0.01),
            lambda ps: AdamW(ps, lr=0.01, weight_decay=0.01),
        ],
    )
    def test_step_parity(self, factory):
        p_sparse, p_dense = self.params_pair()
        opt_sparse = factory([p_sparse])
        opt_dense = factory([p_dense])
        for step in range(3):
            self.grads_pair(p_sparse, p_dense, seed=step)
            opt_sparse.step()
            opt_dense.step()
            np.testing.assert_allclose(
                p_sparse.data, p_dense.data, rtol=1e-12, atol=1e-15
            )

    def test_clip_grad_norm_parity(self):
        p_sparse, p_dense = self.params_pair()
        self.grads_pair(p_sparse, p_dense)
        norm_sparse = clip_grad_norm([p_sparse], 0.5)
        norm_dense = clip_grad_norm([p_dense], 0.5)
        np.testing.assert_allclose(norm_sparse, norm_dense, rtol=1e-12)
        np.testing.assert_allclose(
            p_sparse.grad.to_dense(), p_dense.grad, rtol=1e-12, atol=1e-15
        )

    def test_zero_grad_reads_none_but_parks_dense_buffer(self):
        p_sparse, p_dense = self.params_pair()
        self.grads_pair(p_sparse, p_dense)
        opt = SGD([p_sparse, p_dense], lr=0.1)
        buffer = p_dense.grad
        opt.zero_grad()
        # None semantics preserved: step() must skip both parameters.
        assert p_sparse.grad is None
        assert p_dense.grad is None
        before = p_dense.data.copy()
        opt.step()
        np.testing.assert_array_equal(p_dense.data, before)
        # ...but the next backward revives the parked allocation.
        (Tensor(np.ones((1, 4))) @ p_dense.T).sum().backward()
        assert p_dense.grad is buffer


class TestEndToEndSparseFlow:
    def test_large_table_backward_is_sparse_and_correct(self):
        table = Tensor(np.zeros((500, 2)), requires_grad=True)
        idx = np.array([7, 7, 400])
        lookup_loss(table, idx).backward()
        assert isinstance(table.grad, SparseRowGrad)
        dense = table.grad.to_dense()
        np.testing.assert_allclose(dense[7], [4.0, 4.0])
        np.testing.assert_allclose(dense[400], [2.0, 2.0])

    def test_two_lookups_accumulate(self):
        table = Tensor(np.zeros((500, 2)), requires_grad=True)
        (
            gather_rows(table, np.array([1])).sum()
            + gather_rows(table, np.array([1, 2])).sum()
        ).backward()
        dense = table.grad.to_dense()
        np.testing.assert_allclose(dense[1], [2.0, 2.0])
        np.testing.assert_allclose(dense[2], [1.0, 1.0])
