"""The backend registry and the thread-local dtype policy.

Covers the contract every other layer leans on: policy scoping/restoration
(including across threads), backend registration/selection, dtype-preserving
op outputs, and the backward-pass coercions that used to pin gradients to
float64 regardless of the tensor's own storage.
"""

import threading

import numpy as np
import pytest

from repro.tensor import (
    NumpyBackend,
    Tensor,
    active_backend,
    available_backends,
    default_dtype,
    dtype_policy,
    dropout_mask,
    gather_rows,
    get_backend,
    ones,
    pad_sequences,
    register_backend,
    resolve_dtype,
    set_active_backend,
    set_default_dtype,
    supported_dtypes,
    zeros,
)
from repro.tensor.backend import Backend


F32 = np.dtype("float32")
F64 = np.dtype("float64")


class TestResolveDtype:
    def test_accepts_names_dtypes_and_types(self):
        assert resolve_dtype("float32") == F32
        assert resolve_dtype(np.dtype("float64")) == F64
        assert resolve_dtype(np.float32) == F32

    def test_none_resolves_to_current_policy(self):
        with dtype_policy("float32"):
            assert resolve_dtype(None) == F32
        assert resolve_dtype(None) == F64

    def test_rejects_unsupported(self):
        with pytest.raises(ValueError):
            resolve_dtype("float16")
        with pytest.raises(TypeError):
            resolve_dtype(42)

    def test_supported_dtypes(self):
        assert set(supported_dtypes()) == {"float32", "float64"}


class TestPolicyScoping:
    def test_default_is_float64(self):
        assert default_dtype() == F64

    def test_context_manager_restores_on_exit_and_error(self):
        with dtype_policy("float32"):
            assert default_dtype() == F32
            with dtype_policy("float64"):
                assert default_dtype() == F64
            assert default_dtype() == F32
        assert default_dtype() == F64
        with pytest.raises(RuntimeError):
            with dtype_policy("float32"):
                raise RuntimeError("boom")
        assert default_dtype() == F64

    def test_set_default_dtype_returns_previous(self):
        prev = set_default_dtype("float32")
        try:
            assert prev == F64
            assert default_dtype() == F32
        finally:
            set_default_dtype(prev)
        assert default_dtype() == F64

    def test_policy_is_thread_local(self):
        seen = {}

        def worker():
            seen["worker"] = default_dtype()

        with dtype_policy("float32"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # A fresh thread starts from the process default, not the caller's.
        assert seen["worker"] == F64


class TestBackendRegistry:
    def test_numpy_backend_registered_and_active(self):
        assert "numpy" in available_backends()
        assert isinstance(active_backend(), NumpyBackend)
        assert get_backend("numpy").xp is np

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("torch")
        with pytest.raises(KeyError):
            set_active_backend("torch")

    def test_register_and_activate_custom_backend(self):
        class Traced(NumpyBackend):
            name = "traced"
            calls = 0

            def asarray(self, value, dtype=None):
                Traced.calls += 1
                return super().asarray(value, dtype)

        register_backend(Traced())
        previous = set_active_backend("traced")
        try:
            t = Tensor([1.0, 2.0])
            assert Traced.calls >= 1
            assert t.data.dtype == F64
        finally:
            set_active_backend(previous)

    def test_abstract_backend_rejected(self):
        with pytest.raises(ValueError):
            register_backend(Backend())

    def test_allocation_primitives_honor_policy(self):
        b = active_backend()
        with dtype_policy("float32"):
            assert b.zeros((2,)).dtype == F32
            assert b.ones((2,)).dtype == F32
            assert b.full((2,), 3.0).dtype == F32
            assert b.asarray([1, 2]).dtype == F32
        assert b.zeros((2,)).dtype == F64
        assert b.cast(np.zeros(2), "float32").dtype == F32


class TestTensorDtype:
    def test_construction_follows_policy(self):
        with dtype_policy("float32"):
            assert Tensor([1.0, 2.0]).dtype == F32
            assert zeros(3).dtype == F32
            assert ones(3).dtype == F32
        assert Tensor([1.0, 2.0]).dtype == F64

    def test_existing_tensors_keep_their_dtype(self):
        with dtype_policy("float32"):
            t = Tensor([1.0, 2.0])
        # Outside the policy the float32 tensor's storage is untouched.
        assert t.dtype == F32
        assert Tensor(t).dtype == F32

    @pytest.mark.parametrize("name", ["float32", "float64"])
    def test_ops_preserve_dtype(self, name):
        dtype = np.dtype(name)
        with dtype_policy(name):
            a = Tensor(np.arange(6, dtype=dtype).reshape(2, 3), requires_grad=True)
            b = Tensor(np.ones((2, 3), dtype=dtype))
            for out in (
                a + b,
                a * 2.0,
                a - 0.5,
                a / b,
                a @ b.T,
                a.sum(),
                a.mean(axis=0),
                a.max(axis=1),
                a[0],
                a.reshape(3, 2),
                a.exp(),
                a.sigmoid(),
                a.tanh(),
                a.relu(),
            ):
                assert out.dtype == dtype, out._op

    def test_backward_grad_follows_tensor_dtype(self):
        with dtype_policy("float32"):
            t = Tensor(np.ones((3,), dtype=F32), requires_grad=True)
            (t * 2.0).sum().backward()
        assert t.grad.dtype == F32

    def test_explicit_float64_output_grad_is_cast_down(self):
        with dtype_policy("float32"):
            t = Tensor(np.ones((3,), dtype=F32), requires_grad=True)
            out = t * 2.0
        out.backward(np.ones(3))  # float64 seed under the default policy
        assert t.grad.dtype == F32

    def test_parked_buffer_not_revived_across_dtype_change(self):
        with dtype_policy("float32"):
            t = Tensor(np.ones((3,), dtype=F32), requires_grad=True)
            (t * 3.0).sum().backward()
            t.zero_grad(set_to_none=False)  # parks the float32 buffer
        # Cast the leaf up; the parked float32 buffer must not be reused.
        t.data = t.data.astype(F64)
        (t * 3.0).sum().backward()
        assert t.grad.dtype == F64

    def test_helpers_honor_policy(self):
        with dtype_policy("float32"):
            mask = dropout_mask((4, 4), 0.5, np.random.default_rng(0))
            assert mask.dtype == F32
            padded, valid = pad_sequences([np.array([1.0]), np.array([1.0, 2.0])])
            assert padded.dtype == F32 and valid.dtype == F32

    def test_gather_rows_sparse_grad_keeps_dtype(self):
        with dtype_policy("float32"):
            table = Tensor(np.ones((64, 4), dtype=F32), requires_grad=True)
            out = gather_rows(table, np.array([1, 2, 3]))
            out.sum().backward()
        grad = table.grad
        assert grad.values.dtype == F32
        assert grad.to_dense().dtype == F32
        assert grad.coalesce().values.dtype == F32
