"""Tests for grid/random/successive-halving search."""

import pytest

from repro.core import ModelConfig, PayloadConfig, TuningSpec
from repro.errors import TuningError
from repro.tuning import grid_search, random_search, successive_halving


def spec_2x2() -> TuningSpec:
    return TuningSpec(
        payload_options={"tokens": {"encoder": ["bow", "lstm"], "size": [8, 16]}}
    )


def score_fn(config: ModelConfig) -> float:
    """Deterministic: prefers lstm and larger size."""
    p = config.for_payload("tokens")
    return (1.0 if p.encoder == "lstm" else 0.0) + p.size / 100.0


class TestGridSearch:
    def test_finds_best(self):
        result = grid_search(spec_2x2(), score_fn)
        assert result.num_trials == 4
        assert result.best_config.for_payload("tokens").encoder == "lstm"
        assert result.best_config.for_payload("tokens").size == 16

    def test_trial_log_complete(self):
        result = grid_search(spec_2x2(), score_fn)
        scores = sorted(t.score for t in result.trials)
        assert scores == sorted([0.08, 0.16, 1.08, 1.16])

    def test_empty_spec_single_trial(self):
        result = grid_search(TuningSpec(), lambda c: 1.0)
        assert result.num_trials == 1


class TestRandomSearch:
    def test_subsamples(self):
        result = random_search(spec_2x2(), score_fn, num_trials=2, seed=0)
        assert result.num_trials == 2

    def test_more_trials_than_grid_evaluates_all(self):
        result = random_search(spec_2x2(), score_fn, num_trials=100)
        assert result.num_trials == 4

    def test_invalid_trials(self):
        with pytest.raises(TuningError):
            random_search(spec_2x2(), score_fn, num_trials=0)

    def test_seeded_deterministic(self):
        r1 = random_search(spec_2x2(), score_fn, num_trials=2, seed=7)
        r2 = random_search(spec_2x2(), score_fn, num_trials=2, seed=7)
        assert [t.score for t in r1.trials] == [t.score for t in r2.trials]


class TestSuccessiveHalving:
    def test_promotes_best(self):
        calls = []

        def trial(config, epochs):
            calls.append((config.for_payload("tokens").encoder, epochs))
            return score_fn(config)

        result = successive_halving(
            spec_2x2(), trial, min_epochs=1, max_epochs=4, reduction=2
        )
        assert result.best_config.for_payload("tokens").encoder == "lstm"
        # Rung structure: 4 trials at budget 1, then 2 at 2, then 1 at 4.
        budgets = [e for _, e in calls]
        assert budgets.count(1) == 4
        assert budgets.count(2) == 2
        assert budgets.count(4) == 1

    def test_epochs_injected_into_config(self):
        seen_epochs = []

        def trial(config, epochs):
            seen_epochs.append(config.trainer.epochs)
            return 0.0

        successive_halving(spec_2x2(), trial, min_epochs=3, max_epochs=3)
        assert all(e == 3 for e in seen_epochs)

    def test_invalid_reduction(self):
        with pytest.raises(TuningError):
            successive_halving(spec_2x2(), lambda c, e: 0.0, reduction=1)

    def test_rungs_recorded(self):
        result = successive_halving(
            spec_2x2(), lambda c, e: score_fn(c), min_epochs=1, max_epochs=4
        )
        rungs = {t.rung for t in result.trials}
        assert rungs == {0, 1, 2}

    def test_spec_epochs_axis_does_not_duplicate_candidates(self):
        """Halving owns the epochs axis; declared epoch values must not
        multiply the candidate pool with configs that only differ there."""
        spec = TuningSpec(
            payload_options={"tokens": {"encoder": ["bow", "lstm"]}},
            trainer_options={"epochs": [2, 4, 8]},
        )
        result = successive_halving(
            spec, lambda c, e: score_fn(c), min_epochs=1, max_epochs=4
        )
        rung0 = [t for t in result.trials if t.rung == 0]
        assert len(rung0) == 2  # one per encoder, not 6
        assert len({t.config.to_json() for t in rung0}) == 2
