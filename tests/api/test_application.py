"""Tests for the repro.api lifecycle layer: Application / Run / Endpoint."""

import json

import numpy as np
import pytest

from repro.api import Application, Endpoint, Run, SupervisionPolicy
from repro.core import ModelConfig, PayloadConfig, TrainerConfig, TuningSpec
from repro.deploy import ModelStore
from repro.errors import DeploymentError, SchemaError
from repro.slicing import SliceSet, SliceSpec

from tests.fixtures import factoid_schema, mini_dataset


def fast_config(size: int = 16, epochs: int = 4) -> ModelConfig:
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder="bow", size=size),
            "query": PayloadConfig(size=size),
            "entities": PayloadConfig(size=size),
        },
        trainer=TrainerConfig(epochs=epochs, batch_size=16, lr=0.05),
    )


def assert_responses_close(a: dict, b: dict) -> None:
    """Hard outputs must match exactly; scores up to float reduction order."""
    assert set(a) == set(b)
    for task in a:
        ra, rb = a[task], b[task]
        assert set(ra) == set(rb)
        for key in ("label", "labels", "index"):
            if key in ra:
                assert ra[key] == rb[key], task
        if "scores" in ra:
            assert ra["scores"] == pytest.approx(rb["scores"], abs=1e-9)


def app_spec() -> dict:
    return {
        "name": "factoid-qa",
        "schema": factoid_schema().to_dict(),
        "slices": ["nutrition", {"name": "hard", "description": "hard readings"}],
        "supervision": {"gold_source": "gold", "method": "label_model"},
        "seed": 3,
    }


@pytest.fixture(scope="module")
def fitted():
    """One trained run shared by the read-only tests in this module."""
    ds = mini_dataset(n=80, seed=0)
    app = Application(factoid_schema(), name="factoid-qa")
    return app, ds, app.fit(ds, fast_config())


class TestApplicationSpec:
    def test_from_spec_dict(self):
        app = Application.from_spec(app_spec())
        assert app.name == "factoid-qa"
        assert app.schema.fingerprint() == factoid_schema().fingerprint()
        assert app.slices.names == ["nutrition", "hard"]
        assert app.slices.get("hard").description == "hard readings"
        assert app.supervision == SupervisionPolicy(
            gold_source="gold", method="label_model", rebalance=True
        )
        assert app.seed == 3

    def test_to_spec_roundtrip(self):
        app = Application.from_spec(app_spec())
        clone = Application.from_spec(app.to_spec())
        assert clone.to_spec() == app.to_spec()
        assert clone.schema.fingerprint() == app.schema.fingerprint()
        assert clone.slices.names == app.slices.names
        assert clone.supervision == app.supervision

    def test_from_spec_file_with_schema_path(self, tmp_path):
        factoid_schema().save(tmp_path / "schema.json")
        spec = {**app_spec(), "schema": "schema.json"}
        (tmp_path / "app.json").write_text(json.dumps(spec))
        app = Application.from_spec(tmp_path / "app.json")
        assert app.schema.fingerprint() == factoid_schema().fingerprint()

    def test_unknown_keys_rejected(self):
        with pytest.raises(SchemaError, match="unknown application spec keys"):
            Application.from_spec({**app_spec(), "modle": {}})
        with pytest.raises(SchemaError, match="unknown supervision policy keys"):
            Application.from_spec(
                {**app_spec(), "supervision": {"gold": "gold"}}
            )
        with pytest.raises(SchemaError, match="unknown slice spec keys"):
            Application.from_spec({**app_spec(), "slices": [{"nam": "x"}]})

    def test_schema_required(self):
        with pytest.raises(SchemaError, match="'schema'"):
            Application.from_spec({"name": "x"})


class TestFitAndRun:
    def test_fit_returns_run_driving_full_loop(self, fitted, tmp_path):
        app, ds, run = fitted
        assert isinstance(run, Run)
        evals = run.evaluate(ds, tag="test")
        assert evals["Intent"].metrics["accuracy"] > 0.8
        # The run owns history and the supervision summary.
        assert len(run.history.epochs) == 4
        assert "weak_a" in run.supervision_summary["Intent"]
        # report() is remembered on the run.
        report = run.report(ds, tags=["test"])
        assert run.quality is report
        assert report.metric("test", "Intent", "accuracy") > 0.8
        # fit -> report -> save -> Endpoint.predict, all through the api.
        run.save(tmp_path / "run")
        endpoint = Run.load(tmp_path / "run").endpoint()
        response = endpoint.predict(
            {
                "tokens": ["how", "tall", "is", "paris"],
                "entities": [{"id": "paris", "range": [3, 4]}],
            }
        )
        assert response["Intent"]["label"] in ds.schema.task("Intent").classes

    def test_run_save_load_roundtrip(self, fitted, tmp_path):
        app, ds, run = fitted
        run.report(ds, tags=["test"])
        run.save(tmp_path / "run")
        loaded = Run.load(tmp_path / "run")
        # Application spec, history, fingerprint, and report survive.
        assert loaded.application.to_spec() == app.to_spec()
        assert loaded.train_fingerprint == run.train_fingerprint
        assert [e.train_loss for e in loaded.history.epochs] == pytest.approx(
            [e.train_loss for e in run.history.epochs]
        )
        assert loaded.supervision_summary == run.supervision_summary
        assert loaded.quality is not None
        assert loaded.quality.metric("test", "Intent", "accuracy") == pytest.approx(
            run.quality.metric("test", "Intent", "accuracy")
        )
        # The reloaded model predicts identically.
        payloads = [
            {"tokens": r.payloads["tokens"], "entities": r.payloads["entities"]}
            for r in ds.split("test").records[:8]
        ]
        assert run.endpoint().predict(payloads) == loaded.endpoint().predict(payloads)

    def test_load_rejects_non_run_directory(self, tmp_path):
        with pytest.raises(DeploymentError, match="run.json"):
            Run.load(tmp_path)

    def test_tune_returns_best_trial_robustly(self):
        ds = mini_dataset(n=60, seed=1)
        app = Application(factoid_schema())
        spec = TuningSpec(
            payload_options={"tokens": {"size": [8, 16]}},
            trainer_options={"epochs": [2], "lr": [0.05]},
        )
        run = app.tune(ds, spec, strategy="grid")
        assert run.search is not None
        assert run.search.num_trials == 2
        # The returned model is the best trial's model: configs match.
        assert run.config == run.search.best_config
        best_trial_scores = [t.score for t in run.search.trials]
        assert run.search.best_score == max(best_trial_scores)


class TestEndpoint:
    def test_batch_vs_single_request_parity(self, fitted):
        app, ds, run = fitted
        endpoint = run.endpoint(micro_batch_size=3)
        payloads = [
            {"tokens": r.payloads["tokens"], "entities": r.payloads["entities"]}
            for r in ds.split("test").records[:10]
        ]
        batched = endpoint.predict(payloads)
        assert len(batched) == len(payloads)
        singles = [endpoint.predict(p) for p in payloads]
        for b, s in zip(batched, singles):
            assert_responses_close(b, s)
        # Micro-batching actually happened and counters track it.
        assert endpoint.batches_run >= len(payloads) + 4
        assert endpoint.requests_served == 2 * len(payloads)

    def test_missing_payload_named_in_error(self, fitted):
        app, ds, run = fitted
        endpoint = run.endpoint()
        with pytest.raises(DeploymentError, match=r"missing payloads \['entities'\]"):
            endpoint.predict({"tokens": ["how", "tall", "is", "paris"]})

    def test_unknown_payload_named_in_error(self, fitted):
        app, ds, run = fitted
        endpoint = run.endpoint()
        with pytest.raises(DeploymentError, match=r"unknown payloads \['bogus'\]"):
            endpoint.predict(
                {
                    "tokens": ["hi"],
                    "entities": [],
                    "bogus": 1,
                }
            )

    def test_validation_happens_before_any_model_work(self, fitted):
        app, ds, run = fitted
        endpoint = run.endpoint()
        good = {
            "tokens": ["how", "tall", "is", "paris"],
            "entities": [{"id": "paris", "range": [3, 4]}],
        }
        with pytest.raises(DeploymentError, match="request 1"):
            endpoint.predict([good, {"bogus": 1}])
        assert endpoint.requests_served == 0

    def test_version_pinning_against_store(self, fitted, tmp_path):
        app, ds, run = fitted
        store = ModelStore(tmp_path / "store")
        v1 = run.deploy(store)
        follower = Endpoint.from_store(store, app.name)
        pinned = Endpoint.from_store(store, app.name, version=v1.version)
        assert follower.version == v1.version and not follower.pinned
        assert pinned.version == v1.version and pinned.pinned

        # A second (different) model arrives.
        run2 = app.fit(ds, fast_config(size=8, epochs=2))
        v2 = run2.deploy(store)
        assert v2.version != v1.version
        assert follower.refresh() is True
        assert follower.version == v2.version
        assert pinned.refresh() is False
        assert pinned.version == v1.version

    def test_refresh_skips_fetch_when_unchanged(self, fitted, tmp_path):
        """The gateway polls refresh(); an unchanged latest must be cheap —
        a version-hash comparison, never a re-deserialization."""
        app, ds, run = fitted
        store = ModelStore(tmp_path / "store")
        run.deploy(store)
        follower = Endpoint.from_store(store, app.name)
        fetches = []
        original_fetch = store.fetch
        store.fetch = lambda *a, **kw: (fetches.append(a), original_fetch(*a, **kw))[1]
        assert follower.refresh() is False
        assert follower.refresh() is False
        assert fetches == []  # unchanged latest: no artifact work at all

    def test_store_free_endpoint_cannot_refresh(self, fitted):
        app, ds, run = fitted
        with pytest.raises(DeploymentError, match="not backed by a model store"):
            run.endpoint().refresh()


class TestLegacyAliases:
    def test_legacy_imports_work_and_warn(self):
        import repro

        with pytest.warns(DeprecationWarning, match="repro.api.Application"):
            overton_cls = repro.Overton
        with pytest.warns(DeprecationWarning, match="repro.api.Endpoint"):
            predictor_cls = repro.Predictor
        with pytest.warns(DeprecationWarning, match="repro.api.Run"):
            trained_cls = repro.TrainedModel

        from repro.core.overton import Overton, TrainedModel
        from repro.deploy.predictor import Predictor

        assert overton_cls is Overton
        assert predictor_cls is Predictor
        assert trained_cls is TrainedModel

    def test_legacy_facade_matches_api_results(self):
        import warnings

        ds = mini_dataset(n=60, seed=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro

            overton = repro.Overton(factoid_schema())
        trained = overton.train(ds, fast_config(epochs=2))
        app = Application(factoid_schema())
        run = app.fit(ds, fast_config(epochs=2))
        np.testing.assert_allclose(
            [e.train_loss for e in trained.history.epochs],
            [e.train_loss for e in run.history.epochs],
        )

    def test_predictor_is_permissive_endpoint(self, fitted):
        app, ds, run = fitted
        from repro.deploy.predictor import Predictor

        predictor = Predictor(run.artifact())
        assert isinstance(predictor, Endpoint)
        # Legacy contract: missing inputs allowed, unknown still rejected.
        response = predictor.predict_one({"tokens": ["how", "old", "is", "obama"]})
        assert "Intent" in response
        with pytest.raises(DeploymentError, match="unknown payloads"):
            predictor.predict_one({"bogus": [1]})
