"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tensor import Tensor


def numerical_grad(
    fn: Callable[[Tensor], Tensor], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(Tensor(x)).item()
        flat[i] = orig - eps
        lo = fn(Tensor(x)).item()
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert that autodiff and numerical gradients of ``fn`` agree at ``x``."""
    t = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    out = fn(t)
    out.backward()
    assert t.grad is not None, "no gradient reached the input"
    num = numerical_grad(fn, x)
    np.testing.assert_allclose(t.grad, num, atol=atol, rtol=rtol)
