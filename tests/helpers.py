"""Shared test utilities: numerical gradient checking.

Both helpers accept a ``dtype`` so the gradcheck suites can run under the
float32 policy too: the function under test is evaluated inside
``dtype_policy(dtype)``, and float32 runs use a larger finite-difference
step (single-precision losses only carry ~7 significant digits, so a 1e-6
step is below the noise floor) with correspondingly relaxed tolerances.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tensor import Tensor, dtype_policy

# Finite-difference steps and comparison tolerances per dtype policy.
_EPS = {"float64": 1e-6, "float32": 1e-3}
_TOL = {"float64": (1e-5, 1e-4), "float32": (5e-3, 5e-2)}


def numerical_grad(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    eps: float | None = None,
    dtype: str = "float64",
) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``.

    Perturbation bookkeeping stays in float64; each evaluation runs under
    ``dtype_policy(dtype)`` so the function sees the same precision the
    autodiff pass under test used.  ``eps`` defaults per dtype — a
    float64-sized step under float32 would be dominated by rounding noise.
    """
    if eps is None:
        eps = _EPS[dtype]
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    with dtype_policy(dtype):
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            hi = fn(Tensor(x)).item()
            flat[i] = orig - eps
            lo = fn(Tensor(x)).item()
            flat[i] = orig
            grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    atol: float | None = None,
    rtol: float | None = None,
    dtype: str = "float64",
) -> None:
    """Assert that autodiff and numerical gradients of ``fn`` agree at ``x``.

    Under ``dtype="float32"`` the input, every op, and the returned
    gradient all live in single precision (asserted), and the comparison
    uses float32-appropriate step size and tolerances.  Explicit
    caller tolerances are honored verbatim under float64 (so a test may
    pin a *tighter* bound than the default); under float32 they are only
    ever widened to the precision's noise floor.
    """
    base_atol, base_rtol = _TOL[dtype]
    if atol is None:
        atol = base_atol
    elif dtype == "float32":
        atol = max(atol, base_atol)
    if rtol is None:
        rtol = base_rtol
    elif dtype == "float32":
        rtol = max(rtol, base_rtol)
    with dtype_policy(dtype):
        t = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
        assert t.data.dtype == np.dtype(dtype)
        out = fn(t)
        out.backward()
    assert t.grad is not None, "no gradient reached the input"
    assert t.grad.dtype == np.dtype(dtype), t.grad.dtype
    num = numerical_grad(fn, x, eps=_EPS[dtype], dtype=dtype)
    np.testing.assert_allclose(t.grad, num, atol=atol, rtol=rtol)
