"""Shared fixtures: the paper's Fig. 2a factoid schema and sample records.

``mini_dataset`` builds from a small parametric synth spec
(:mod:`repro.workloads.synth`), so the fixture corpus exercises the same
generator the benches and soak tests use.  Set ``REPRO_LEGACY_FIXTURES=1``
(or pass ``legacy=True``) for the original hand-rolled records,
byte-identical to the pre-synth fixture.
"""

from __future__ import annotations

import os

from repro.core import Schema
from repro.data import Record

POS_CLASSES = ["NOUN", "VERB", "ADJ", "ADV", "DET", "ADP", "PRON", "PUNCT"]
ENTITY_TYPE_CLASSES = ["person", "location", "country", "title", "food"]
INTENT_CLASSES = ["height", "age", "population", "capital", "nutrition"]


def factoid_schema() -> Schema:
    """The running-example schema from Fig. 2a, with explicit label spaces."""
    return Schema.from_dict(
        {
            "payloads": {
                "tokens": {"type": "sequence", "max_length": 12},
                "query": {"type": "singleton", "base": ["tokens"]},
                "entities": {"type": "set", "range": "tokens", "max_members": 4},
            },
            "tasks": {
                "POS": {
                    "payload": "tokens",
                    "type": "multiclass",
                    "classes": POS_CLASSES,
                },
                "EntityType": {
                    "payload": "tokens",
                    "type": "bitvector",
                    "classes": ENTITY_TYPE_CLASSES,
                },
                "Intent": {
                    "payload": "query",
                    "type": "multiclass",
                    "classes": INTENT_CLASSES,
                },
                "IntentArg": {"payload": "entities", "type": "select"},
            },
        }
    )


def mini_spec(n: int = 60, seed: int = 0, weak_noise: float = 0.2):
    """The synth WorkloadSpec behind :func:`mini_dataset`."""
    from repro.workloads.synth import WorkloadSpec

    return WorkloadSpec(
        name="mini",
        n=n,
        seed=seed,
        intents=len(INTENT_CLASSES),
        entity_types=len(ENTITY_TYPE_CLASSES),
        roles=len(POS_CLASSES),
        intent_names=tuple(INTENT_CLASSES),
        role_names=tuple(POS_CLASSES),
        type_names=tuple(ENTITY_TYPE_CLASSES),
        vocab_size=40,
        min_length=4,
        max_length=7,
        label_noise=weak_noise * 0.75,
        slice_rarity=0.0,
        slice_skew=0.0,
        ambiguity=0.0,
        keyword_dropout=0.0,
        sources=("weak_a", "weak_b", "lf_keyword", "crowd"),
        train_fraction=0.6,
        dev_fraction=0.2,
    )


def mini_dataset(
    n: int = 60, seed: int = 0, weak_noise: float = 0.2, legacy: bool | None = None
):
    """A small learnable dataset conforming to the factoid schema.

    Intent is determined by a keyword; entities are single-token spans; gold
    labels exist on every record (used for dev/test evaluation only), plus
    two noisy weak sources for training.  Built from :func:`mini_spec` by
    default; ``legacy=True`` (or ``REPRO_LEGACY_FIXTURES=1``) regenerates
    the original hand-rolled records byte-for-byte.
    """
    if legacy is None:
        legacy = os.environ.get("REPRO_LEGACY_FIXTURES", "") == "1"
    if legacy:
        return _legacy_mini_dataset(n, seed, weak_noise)
    from repro.data import Dataset
    from repro.workloads.synth import SynthGenerator

    generator = SynthGenerator(mini_spec(n, seed, weak_noise))
    return Dataset(factoid_schema(), list(generator.iter_records(n)))


def _legacy_mini_dataset(n: int = 60, seed: int = 0, weak_noise: float = 0.2):
    """The pre-synth hand-rolled fixture, kept byte-identical."""
    import numpy as np

    from repro.data import Dataset

    rng = np.random.default_rng(seed)
    intents = [
        ("height", ["how", "tall", "is"]),
        ("age", ["how", "old", "is"]),
        ("population", ["population", "of"]),
    ]
    names = ["paris", "france", "everest", "obama", "tokyo", "nile"]
    records = []
    for i in range(n):
        intent, prefix = intents[int(rng.integers(len(intents)))]
        name = names[int(rng.integers(len(names)))]
        tokens = prefix + [name]
        pos = ["ADV"] * (len(tokens) - 1) + ["NOUN"]
        span_start = len(tokens) - 1
        entities = [{"id": name, "range": [span_start, span_start + 1]}]
        record = Record.from_dict(
            {
                "payloads": {"tokens": tokens, "entities": entities},
                "tasks": {
                    "POS": {"gold": pos},
                    "EntityType": {"gold": [[] for _ in tokens[:-1]] + [["location"]]},
                    "Intent": {"gold": intent},
                    "IntentArg": {"gold": 0},
                },
                "tags": [],
            }
        )
        # Two weak sources with independent noise.
        for source, noise in (("weak_a", weak_noise), ("weak_b", weak_noise * 1.5)):
            if rng.random() < noise:
                wrong = [x for x, _ in intents if x != intent]
                record.add_label("Intent", source, wrong[int(rng.integers(len(wrong)))])
            else:
                record.add_label("Intent", source, intent)
        split = "train" if i % 5 < 3 else ("dev" if i % 5 == 3 else "test")
        record.add_tag(split)
        records.append(record)
    return Dataset(factoid_schema(), records)


def sample_record() -> Record:
    """A record shaped like the paper's pretty-printed example."""
    return Record.from_dict(
        {
            "payloads": {
                "tokens": ["how", "tall", "is", "the", "president", "of", "the", "us"],
                "query": "how tall is the president of the us",
                "entities": [
                    {"id": "President_(title)", "range": [4, 5]},
                    {"id": "United_States", "range": [7, 8]},
                ],
            },
            "tasks": {
                "POS": {
                    "spacy": ["ADV", "ADJ", "VERB", "DET", "NOUN", "ADP", "DET", "NOUN"]
                },
                "EntityType": {
                    "eproj": [[], [], [], [], ["title"], [], [], ["location", "country"]]
                },
                "Intent": {"weak1": "height", "weak2": "age", "crowd": "height"},
                "IntentArg": {"weak1": 0, "weak2": 1, "crowd": 0},
            },
            "tags": ["train"],
        }
    )
