"""Shared fixtures: the paper's Fig. 2a factoid schema and sample records."""

from __future__ import annotations

from repro.core import Schema
from repro.data import Record

POS_CLASSES = ["NOUN", "VERB", "ADJ", "ADV", "DET", "ADP", "PRON", "PUNCT"]
ENTITY_TYPE_CLASSES = ["person", "location", "country", "title", "food"]
INTENT_CLASSES = ["height", "age", "population", "capital", "nutrition"]


def factoid_schema() -> Schema:
    """The running-example schema from Fig. 2a, with explicit label spaces."""
    return Schema.from_dict(
        {
            "payloads": {
                "tokens": {"type": "sequence", "max_length": 12},
                "query": {"type": "singleton", "base": ["tokens"]},
                "entities": {"type": "set", "range": "tokens", "max_members": 4},
            },
            "tasks": {
                "POS": {
                    "payload": "tokens",
                    "type": "multiclass",
                    "classes": POS_CLASSES,
                },
                "EntityType": {
                    "payload": "tokens",
                    "type": "bitvector",
                    "classes": ENTITY_TYPE_CLASSES,
                },
                "Intent": {
                    "payload": "query",
                    "type": "multiclass",
                    "classes": INTENT_CLASSES,
                },
                "IntentArg": {"payload": "entities", "type": "select"},
            },
        }
    )


def mini_dataset(n: int = 60, seed: int = 0, weak_noise: float = 0.2):
    """A small learnable dataset conforming to the factoid schema.

    Intent is determined by a keyword; entities are single-token spans; gold
    labels exist on every record (used for dev/test evaluation only), plus
    two noisy weak sources for training.
    """
    import numpy as np

    from repro.data import Dataset

    rng = np.random.default_rng(seed)
    intents = [
        ("height", ["how", "tall", "is"]),
        ("age", ["how", "old", "is"]),
        ("population", ["population", "of"]),
    ]
    names = ["paris", "france", "everest", "obama", "tokyo", "nile"]
    records = []
    for i in range(n):
        intent, prefix = intents[int(rng.integers(len(intents)))]
        name = names[int(rng.integers(len(names)))]
        tokens = prefix + [name]
        pos = ["ADV"] * (len(tokens) - 1) + ["NOUN"]
        span_start = len(tokens) - 1
        entities = [{"id": name, "range": [span_start, span_start + 1]}]
        record = Record.from_dict(
            {
                "payloads": {"tokens": tokens, "entities": entities},
                "tasks": {
                    "POS": {"gold": pos},
                    "EntityType": {"gold": [[] for _ in tokens[:-1]] + [["location"]]},
                    "Intent": {"gold": intent},
                    "IntentArg": {"gold": 0},
                },
                "tags": [],
            }
        )
        # Two weak sources with independent noise.
        for source, noise in (("weak_a", weak_noise), ("weak_b", weak_noise * 1.5)):
            if rng.random() < noise:
                wrong = [x for x, _ in intents if x != intent]
                record.add_label("Intent", source, wrong[int(rng.integers(len(wrong)))])
            else:
                record.add_label("Intent", source, intent)
        split = "train" if i % 5 < 3 else ("dev" if i % 5 == 3 else "test")
        record.add_tag(split)
        records.append(record)
    return Dataset(factoid_schema(), records)


def sample_record() -> Record:
    """A record shaped like the paper's pretty-printed example."""
    return Record.from_dict(
        {
            "payloads": {
                "tokens": ["how", "tall", "is", "the", "president", "of", "the", "us"],
                "query": "how tall is the president of the us",
                "entities": [
                    {"id": "President_(title)", "range": [4, 5]},
                    {"id": "United_States", "range": [7, 8]},
                ],
            },
            "tasks": {
                "POS": {
                    "spacy": ["ADV", "ADJ", "VERB", "DET", "NOUN", "ADP", "DET", "NOUN"]
                },
                "EntityType": {
                    "eproj": [[], [], [], [], ["title"], [], [], ["location", "country"]]
                },
                "Intent": {"weak1": "height", "weak2": "age", "crowd": "height"},
                "IntentArg": {"weak1": 0, "weak2": 1, "crowd": 0},
            },
            "tags": ["train"],
        }
    )
