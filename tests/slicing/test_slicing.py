"""Tests for slice definitions, slice-aware heads, and per-slice metrics."""

import numpy as np
import pytest

from repro.errors import SliceError
from repro.nn import Parameter
from repro.optim import Adam
from repro.slicing import (
    SliceAwareHead,
    SliceSet,
    SliceSpec,
    accuracy_and_f1,
    expand_membership_to_items,
    per_slice_reports,
    predicted_membership,
    reports_to_columns,
    slice_loss,
)
from repro.tensor import Tensor

from tests.fixtures import sample_record


class TestSliceSpec:
    def test_tag_membership(self):
        record = sample_record()
        record.add_tag("slice:rare")
        assert SliceSpec(name="rare").member(record)
        assert not SliceSpec(name="other").member(record)

    def test_predicate_membership(self):
        spec = SliceSpec(name="short", predicate=lambda r: len(r.payloads["tokens"]) < 10)
        assert spec.member(sample_record())

    def test_materialize_writes_tags(self):
        spec = SliceSpec(name="short", predicate=lambda r: True)
        records = [sample_record(), sample_record()]
        assert spec.materialize(records) == 2
        assert all(r.has_tag("slice:short") for r in records)


class TestSliceSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SliceError):
            SliceSet([SliceSpec(name="a"), SliceSpec(name="a")])

    def test_add_and_get(self):
        sliceset = SliceSet([SliceSpec(name="a")])
        sliceset.add(SliceSpec(name="b"))
        assert sliceset.get("b").name == "b"
        assert len(sliceset) == 2
        with pytest.raises(SliceError):
            sliceset.add(SliceSpec(name="a"))
        with pytest.raises(SliceError):
            sliceset.get("zzz")

    def test_membership_matrix(self):
        records = [sample_record(), sample_record()]
        records[0].add_tag("slice:x")
        sliceset = SliceSet([SliceSpec(name="x"), SliceSpec(name="y")])
        matrix = sliceset.membership_matrix(records)
        np.testing.assert_allclose(matrix, [[1.0, 0.0], [0.0, 0.0]])

    def test_from_tags_discovers(self):
        records = [sample_record(), sample_record()]
        records[0].add_tag("slice:zebra")
        records[1].add_tag("slice:apple")
        sliceset = SliceSet.from_tags(records)
        assert sliceset.names == ["apple", "zebra"]

    def test_expand_membership_to_items(self):
        membership = np.array([[1.0, 0.0], [0.0, 1.0]])
        item_index = np.array([[0, 0], [0, 1], [1, 0]])
        expanded = expand_membership_to_items(membership, item_index)
        np.testing.assert_allclose(expanded, [[1, 0], [1, 0], [0, 1]])

    def test_expand_requires_2d(self):
        with pytest.raises(SliceError):
            expand_membership_to_items(np.zeros(3), np.zeros((3, 2), dtype=int))


class TestSliceAwareHead:
    def rng(self):
        return np.random.default_rng(0)

    def test_no_slices_is_plain_head(self):
        head = SliceAwareHead(8, 3, [], self.rng())
        out = head(Tensor(np.random.default_rng(1).normal(size=(4, 8))))
        assert out.final_logits.shape == (4, 3)
        assert out.indicator_logits is None
        assert out.expert_logits is None
        np.testing.assert_allclose(out.final_logits.data, out.base_logits.data)

    def test_with_slices_shapes(self):
        head = SliceAwareHead(8, 3, ["a", "b"], self.rng())
        out = head(Tensor(np.random.default_rng(2).normal(size=(5, 8))))
        assert out.final_logits.shape == (5, 3)
        assert out.indicator_logits.shape == (5, 2)
        assert out.expert_logits.shape == (5, 2, 3)
        assert out.attention.shape == (5, 2)

    def test_attention_weights_bounded(self):
        head = SliceAwareHead(8, 3, ["a"], self.rng())
        out = head(Tensor(np.random.default_rng(3).normal(size=(6, 8))))
        assert (out.attention >= 0).all()
        assert (out.attention.sum(axis=1) <= 1.0 + 1e-9).all()

    def test_predicted_membership(self):
        head = SliceAwareHead(8, 2, ["a"], self.rng())
        out = head(Tensor(np.random.default_rng(4).normal(size=(3, 8))))
        probs = predicted_membership(out)
        assert probs.shape == (3, 1)
        assert ((probs >= 0) & (probs <= 1)).all()
        assert predicted_membership(
            SliceAwareHead(8, 2, [], self.rng())(Tensor(np.zeros((1, 8))))
        ) is None

    def test_loss_backward_reaches_all_params(self):
        head = SliceAwareHead(6, 2, ["a", "b"], self.rng())
        rep = Tensor(np.random.default_rng(5).normal(size=(4, 6)))
        out = head(rep)
        targets = np.array([[1, 0], [0, 1], [1, 0], [0, 1]], dtype=float)
        membership = np.array([[1, 0], [0, 1], [1, 1], [0, 0]], dtype=float)
        loss = slice_loss(out, targets, np.ones(4), membership)
        loss.backward()
        missing = [n for n, p in head.named_parameters() if p.grad is None]
        assert not missing, f"no grad for {missing}"

    def test_slice_head_learns_slice_specific_pattern(self):
        """A slice whose labels invert the global rule should be learnable
        with slice heads — the mechanism behind the paper's +50 F1 claim."""
        rng = np.random.default_rng(6)
        n = 400
        x = rng.normal(size=(n, 4))
        in_slice = rng.random(n) < 0.25
        # Global rule: y = x0 > 0.  In-slice rule inverted.
        y = (x[:, 0] > 0).astype(int)
        y[in_slice] = 1 - y[in_slice]
        # Membership is detectable from feature 1.
        x[in_slice, 1] = 3.0
        targets = np.zeros((n, 2))
        targets[np.arange(n), y] = 1.0
        membership = in_slice.astype(float)[:, None]

        def train(head, with_membership):
            opt = Adam(head.parameters(), lr=0.02)
            for _ in range(150):
                opt.zero_grad()
                out = head(Tensor(x))
                loss = slice_loss(
                    out, targets, np.ones(n),
                    membership if with_membership else None,
                )
                loss.backward()
                opt.step()
            preds = head(Tensor(x)).final_logits.data.argmax(axis=1)
            return (preds[in_slice] == y[in_slice]).mean()

        plain = train(SliceAwareHead(4, 2, [], np.random.default_rng(7)), False)
        sliced = train(
            SliceAwareHead(4, 2, ["inverted"], np.random.default_rng(7)), True
        )
        assert sliced > plain + 0.1


class TestMetrics:
    def test_accuracy_and_f1_perfect(self):
        acc, f1, n = accuracy_and_f1(np.array([0, 1, 1]), np.array([0, 1, 1]))
        assert acc == 1.0 and f1 == 1.0 and n == 3

    def test_accuracy_and_f1_masked(self):
        acc, _, n = accuracy_and_f1(
            np.array([0, 1]), np.array([0, 0]), mask=np.array([True, False])
        )
        assert acc == 1.0 and n == 1

    def test_empty_mask(self):
        acc, f1, n = accuracy_and_f1(np.array([0]), np.array([0]), np.array([False]))
        assert (acc, f1, n) == (0.0, 0.0, 0)

    def test_shape_mismatch(self):
        with pytest.raises(SliceError):
            accuracy_and_f1(np.zeros(2), np.zeros(3))

    def test_per_slice_reports(self):
        preds = np.array([0, 0, 1, 1])
        gold = np.array([0, 1, 1, 1])
        membership = np.array([[1.0], [1.0], [0.0], [0.0]])
        reports = per_slice_reports(preds, gold, membership, ["hard"])
        assert reports[0].slice_name == "overall"
        assert reports[0].accuracy == 0.75
        assert reports[1].slice_name == "hard"
        assert reports[1].size == 2
        assert reports[1].accuracy == 0.5

    def test_reports_shape_validation(self):
        with pytest.raises(SliceError):
            per_slice_reports(np.zeros(2), np.zeros(2), np.zeros((2, 2)), ["one"])

    def test_reports_to_columns(self):
        preds = np.array([0, 1])
        gold = np.array([0, 1])
        cols = reports_to_columns(
            per_slice_reports(preds, gold, np.ones((2, 1)), ["s"])
        )
        assert cols["slice"] == ["overall", "s"]
        assert len(cols["accuracy"]) == 2
