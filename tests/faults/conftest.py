"""Fixtures for the fault-injection suites.

The fault-point registry is process-global, so every test in this
directory runs under an autouse guard that disarms whatever plan it
installed — a leaked armed point would fire into unrelated suites.
"""

from __future__ import annotations

import pytest

import repro.faults
from repro.api import Application
from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.deploy import ModelStore
from repro.deploy.sync import push_pair

from tests.fixtures import factoid_schema, mini_dataset


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Never let an installed plan outlive its test."""
    yield
    repro.faults.clear()


def serve_config(size: int = 12, epochs: int = 2) -> ModelConfig:
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder="bow", size=size),
            "query": PayloadConfig(size=size),
            "entities": PayloadConfig(size=size),
        },
        trainer=TrainerConfig(epochs=epochs, batch_size=16, lr=0.05),
    )


def request_payloads(ds, n: int = 20) -> list[dict]:
    records = ds.records[:n]
    return [
        {"tokens": r.payloads["tokens"], "entities": r.payloads["entities"]}
        for r in records
    ]


@pytest.fixture(scope="session")
def served():
    """One app + dataset + trained run + request payloads, shared read-only."""
    ds = mini_dataset(n=80, seed=0)
    app = Application(factoid_schema(), name="factoid-qa")
    run = app.fit(ds, serve_config())
    return app, ds, run, request_payloads(ds)


@pytest.fixture(scope="session")
def single_store(served, tmp_path_factory):
    """A store with one stable version of the served model."""
    app, ds, run, payloads = served
    store = ModelStore(tmp_path_factory.mktemp("faults-store") / "store")
    stable = run.deploy(store)
    return store, stable


@pytest.fixture(scope="session")
def pair_store(served, tmp_path_factory):
    """A store holding a synchronized large/small pair for tier routing."""
    app, ds, run, payloads = served
    large = app.fit(ds, serve_config(size=16, epochs=1))
    small = app.fit(ds, serve_config(size=8, epochs=1))
    store = ModelStore(tmp_path_factory.mktemp("faults-pair") / "store")
    pushed = push_pair(store, app.name, large.artifact(), small.artifact())
    return store, pushed
