"""TrialExecutor under failure: retries, skip-vs-raise, injected crashes."""

import pytest

from repro.core import ModelConfig, PayloadConfig
from repro.errors import TuningError
from repro.exec import TrialExecutor
from repro.faults import FaultPlan, FaultRule, injected


def config(size: int) -> ModelConfig:
    return ModelConfig(payloads={"tokens": PayloadConfig(size=size)})


def score(context, cfg, seed, budget) -> float:
    return cfg.for_payload("tokens").size / 100.0


class TestRetries:
    def test_flaky_trial_recovers_within_retries(self):
        attempts: dict[int, int] = {}

        def flaky(context, cfg, seed, budget) -> float:
            size = cfg.for_payload("tokens").size
            attempts[size] = attempts.get(size, 0) + 1
            if attempts[size] == 1:
                raise RuntimeError(f"transient blip on size {size}")
            return score(context, cfg, seed, budget)

        executor = TrialExecutor(flaky, retries=1, retry_backoff_s=0.0)
        outcomes = executor.evaluate([config(8), config(16)])
        assert [o.score for o in outcomes] == [0.08, 0.16]
        assert not any(o.skipped for o in outcomes)
        assert executor.stats.retries == 2
        assert executor.stats.errors == 0
        assert attempts == {8: 2, 16: 2}

    def test_raise_names_config_and_attempt_count(self):
        def broken(context, cfg, seed, budget) -> float:
            raise ValueError("always down")

        executor = TrialExecutor(broken, retries=2, retry_backoff_s=0.0)
        with pytest.raises(TuningError, match="after 3 attempts"):
            executor.evaluate([config(8)])
        assert executor.stats.retries == 2
        assert executor.stats.errors == 1

    def test_zero_retries_keeps_the_legacy_message(self):
        def broken(context, cfg, seed, budget) -> float:
            raise ValueError("always down")

        with pytest.raises(TuningError, match=r"trial 0 failed \(ValueError"):
            TrialExecutor(broken).evaluate([config(8)])


class TestSkip:
    def test_skipped_outcome_cannot_win_a_search(self):
        def poisoned(context, cfg, seed, budget) -> float:
            if cfg.for_payload("tokens").size == 8:
                raise RuntimeError("cursed candidate")
            return score(context, cfg, seed, budget)

        executor = TrialExecutor(poisoned, on_error="skip")
        outcomes = executor.evaluate([config(8), config(16)])
        cursed, healthy = outcomes
        assert cursed.skipped and cursed.score == float("-inf")
        assert "cursed candidate" in cursed.error
        assert not healthy.skipped and healthy.score == 0.16
        assert max(outcomes, key=lambda o: o.score) is healthy
        assert executor.stats.skipped == 1

    def test_all_trials_failing_still_raises(self):
        def broken(context, cfg, seed, budget) -> float:
            raise RuntimeError("everything is down")

        executor = TrialExecutor(broken, on_error="skip")
        with pytest.raises(TuningError, match="all 2 trials failed"):
            executor.evaluate([config(8), config(16)])

    def test_bad_on_error_rejected(self):
        with pytest.raises(TuningError, match="on_error"):
            TrialExecutor(score, on_error="ignore")

    def test_negative_retries_rejected(self):
        with pytest.raises(TuningError, match="retries"):
            TrialExecutor(score, retries=-1)


class TestInjectedCrashes:
    def test_injected_worker_crash_is_retried_away(self):
        storm = FaultPlan(
            name="crash-once",
            rules=(FaultRule(point="exec.trial", kind="crash", max_fires=1),),
        )
        executor = TrialExecutor(score, retries=1, retry_backoff_s=0.0)
        with injected(storm) as injector:
            outcomes = executor.evaluate([config(8), config(16)])
        assert [o.score for o in outcomes] == [0.08, 0.16]
        assert executor.stats.retries == 1
        assert [d["kind"] for d in injector.decisions()] == ["crash"]

    def test_unretried_crash_skips_the_trial(self):
        storm = FaultPlan(
            name="crash-once",
            rules=(
                FaultRule(
                    point="exec.trial", kind="crash", match=(("trial", "0"),)
                ),
            ),
        )
        executor = TrialExecutor(score, on_error="skip")
        with injected(storm):
            outcomes = executor.evaluate([config(8), config(16)])
        assert outcomes[0].skipped and "InjectedCrash" in outcomes[0].error
        assert outcomes[1].score == 0.16
