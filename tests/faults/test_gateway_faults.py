"""Gateway failure domains under injected faults: shed, isolate, degrade."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ServeOverloadError
from repro.faults import FaultPlan, FaultRule, injected, InjectedFault
from repro.serve import (
    BreakerPolicy,
    GatewayConfig,
    GatewayHTTPServer,
    ReplicaPool,
    ServingGateway,
)


def storm(*rules: FaultRule, seed: int = 0) -> FaultPlan:
    return FaultPlan(name="gateway-storm", seed=seed, rules=tuple(rules))


def stable_error(**kwargs) -> FaultRule:
    return FaultRule(
        point="replica.serve", match=(("role", "stable"),), **kwargs
    )


class TestQueueShedding:
    def test_full_queue_sheds_with_a_retryable_error(self, served, single_store):
        app, ds, run, payloads = served
        store, _ = single_store
        pool = ReplicaPool.from_store(store, app.name)
        config = GatewayConfig(
            max_batch_size=1, max_wait_s=0.0, max_queue_depth=2, breaker=None
        )
        slow = storm(
            stable_error(kind="latency", latency_s=0.1),
        )
        with injected(slow), ServingGateway(pool, config) as gateway:
            futures, shed = [], 0
            for payload in payloads[:12]:
                try:
                    futures.append(gateway.submit_async(payload))
                except ServeOverloadError as exc:
                    shed += 1
                    assert "retry" in str(exc)
            assert shed > 0, "twelve instant submits must overflow depth 2"
            for future in futures:  # accepted requests still get answers
                assert future.result(timeout=10)
            stats = gateway.stats()
            assert stats["sheds"]["default"]["queue_full"] == shed

    def test_unbounded_queue_never_sheds(self, served, single_store):
        app, ds, run, payloads = served
        store, _ = single_store
        pool = ReplicaPool.from_store(store, app.name)
        config = GatewayConfig(
            max_batch_size=1, max_wait_s=0.0, max_queue_depth=None, breaker=None
        )
        slow = storm(stable_error(kind="latency", latency_s=0.02))
        with injected(slow), ServingGateway(pool, config) as gateway:
            futures = [gateway.submit_async(p) for p in payloads[:8]]
            for future in futures:
                assert future.result(timeout=10)
            assert gateway.stats()["sheds"] == {}


class TestBatchIsolation:
    def test_poison_batch_fails_one_request_not_all(self, served, single_store):
        app, ds, run, payloads = served
        store, _ = single_store
        pool = ReplicaPool.from_store(store, app.name)
        # A long batching window coalesces the four requests into one
        # batch; the rule fires on the batch, then once more on the first
        # per-item retry — the other three must be salvaged.
        config = GatewayConfig(max_batch_size=8, max_wait_s=0.5, breaker=None)
        with injected(storm(stable_error(max_fires=2))) as injector:
            with ServingGateway(pool, config) as gateway:
                futures = [gateway.submit_async(p) for p in payloads[:4]]
                with pytest.raises(InjectedFault):
                    futures[0].result(timeout=10)
                for future in futures[1:]:
                    assert future.result(timeout=10)
        assert injector.fires("replica.serve") == 2

    def test_isolated_outcomes_feed_the_breaker(self, served, single_store):
        app, ds, run, payloads = served
        store, _ = single_store
        pool = ReplicaPool.from_store(store, app.name)
        config = GatewayConfig(
            max_batch_size=8,
            max_wait_s=0.5,
            breaker=BreakerPolicy(failure_threshold=5, reset_timeout_s=60.0),
        )
        with injected(storm(stable_error(max_fires=2))):
            with ServingGateway(pool, config) as gateway:
                futures = [gateway.submit_async(p) for p in payloads[:4]]
                results = []
                for future in futures:
                    try:
                        results.append(future.result(timeout=10))
                    except InjectedFault:
                        results.append(None)
                snapshot = gateway.stats()["breakers"]["default"]
        # Batch failure + one poison retry, then three salvaged successes:
        # the streak reset, the circuit never opened.
        assert snapshot["state"] == "closed"
        assert snapshot["consecutive_failures"] == 0
        assert sum(1 for r in results if r is None) == 1


class TestBreakerRouting:
    def test_open_circuit_degrades_to_the_healthy_tier(self, served, pair_store):
        app, ds, run, payloads = served
        store, _ = pair_store
        pool = ReplicaPool.from_store(store, app.name)
        assert pool.tier_order == ["large", "small"]
        # Route everything at the small tier via latency hints.
        pool.set_latency_hint("large", 10.0)
        pool.set_latency_hint("small", 0.0001)
        config = GatewayConfig(
            max_batch_size=1,
            max_wait_s=0.0,
            breaker=BreakerPolicy(failure_threshold=3, reset_timeout_s=60.0),
        )
        small_down = storm(
            FaultRule(
                point="replica.serve",
                match=(("tier", "small"), ("role", "stable")),
                max_fires=3,
            )
        )
        with injected(small_down), ServingGateway(pool, config) as gateway:
            for payload in payloads[:3]:
                with pytest.raises(InjectedFault):
                    gateway.submit(payload, latency_budget=0.01)
            stats = gateway.stats()
            assert stats["breakers"]["small"]["state"] == "open"
            assert stats["breakers"]["large"]["state"] == "closed"
            # The same budget now lands on the healthy large tier.
            response = gateway.submit(payloads[3], latency_budget=0.01)
            assert response
            flips = gateway.stats()["breaker_history"]
            assert [(f["tier"], f["from"], f["to"]) for f in flips] == [
                ("small", "closed", "open")
            ]

    def test_all_circuits_open_sheds_then_recovers_half_open(
        self, served, single_store
    ):
        app, ds, run, payloads = served
        store, _ = single_store
        pool = ReplicaPool.from_store(store, app.name)
        config = GatewayConfig(
            max_batch_size=1,
            max_wait_s=0.0,
            breaker=BreakerPolicy(
                failure_threshold=2, reset_timeout_s=0.05, half_open_successes=1
            ),
        )
        down = storm(stable_error(max_fires=2))
        with injected(down), ServingGateway(pool, config) as gateway:
            for payload in payloads[:2]:
                with pytest.raises(InjectedFault):
                    gateway.submit(payload)
            # Single tier, circuit open, nowhere to degrade: shed fast.
            with pytest.raises(ServeOverloadError, match="circuit is open"):
                gateway.submit(payloads[2])
            assert gateway.stats()["sheds"]["default"]["breaker"] == 1
            # After the reset timeout a probe is allowed through; the
            # fault is spent, so one clean serve closes the circuit.
            time.sleep(0.06)
            assert gateway.submit(payloads[3])
            stats = gateway.stats()
            assert stats["breakers"]["default"]["state"] == "closed"
            transitions = [
                (f["from"], f["to"]) for f in stats["breaker_history"]
            ]
            assert transitions == [
                ("closed", "open"),
                ("open", "half_open"),
                ("half_open", "closed"),
            ]


def post(url: str, body) -> tuple[int, dict, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestHTTPStatusMapping:
    def test_shed_is_503_with_retry_after(self, served, single_store):
        app, ds, run, payloads = served
        store, _ = single_store
        pool = ReplicaPool.from_store(store, app.name)
        config = GatewayConfig(
            max_batch_size=1,
            max_wait_s=0.0,
            breaker=BreakerPolicy(failure_threshold=1, reset_timeout_s=60.0),
        )
        down = storm(stable_error(max_fires=1))
        with injected(down), ServingGateway(pool, config) as gateway:
            with GatewayHTTPServer(gateway, port=0) as http:
                status, body, _ = post(http.url + "/predict", payloads[0])
                assert status == 500  # the injected fault itself
                status, body, headers = post(http.url + "/predict", payloads[1])
                assert status == 503
                assert headers["Retry-After"] == "1"
                assert "circuit is open" in body["error"]

    def test_gateway_timeout_is_504(self, served, single_store):
        app, ds, run, payloads = served
        store, _ = single_store
        pool = ReplicaPool.from_store(store, app.name)
        config = GatewayConfig(
            max_batch_size=1,
            max_wait_s=0.0,
            request_timeout_s=0.05,
            breaker=None,
        )
        slow = storm(stable_error(kind="latency", latency_s=0.3, max_fires=1))
        with injected(slow), ServingGateway(pool, config) as gateway:
            with GatewayHTTPServer(gateway, port=0) as http:
                status, body, _ = post(http.url + "/predict", payloads[0])
                assert status == 504
                assert "not answered" in body["error"] or "timed out" in body["error"]
            gateway.drain(timeout=10)
