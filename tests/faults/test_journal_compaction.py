"""DecisionJournal durability: torn tails, corruption, and compaction."""

import json

import pytest

from repro.autopilot import DecisionJournal, check_consistency

HEAL_CYCLE = (
    "trigger",
    "retrain_started",
    "retrain_finished",
    "staged",
    "shadow_started",
    "gate",
    "promoted",
    "reference_updated",
)


def record_cycle(journal: DecisionJournal) -> None:
    for kind in HEAL_CYCLE:
        if kind == "gate":
            journal.record(kind, passed=True)
        else:
            journal.record(kind)


class TestTornTail:
    def journal_file(self, tmp_path, torn: bool = True):
        journal = DecisionJournal(path=tmp_path / "journal.jsonl")
        record_cycle(journal)
        if torn:
            with journal.path.open("a", encoding="utf-8") as handle:
                handle.write('{"seq": 9, "at": 1.0, "kind": "trig')
        return journal.path

    def test_read_drops_the_truncated_trailing_line(self, tmp_path):
        path = self.journal_file(tmp_path)
        entries = DecisionJournal.read(path)
        assert [e["kind"] for e in entries] == list(HEAL_CYCLE)

    def test_strict_read_raises_on_the_torn_tail(self, tmp_path):
        path = self.journal_file(tmp_path)
        with pytest.raises(ValueError, match="truncated trailing line"):
            DecisionJournal.read(path, strict=True)

    def test_check_file_reports_the_tail_as_a_warning(self, tmp_path):
        path = self.journal_file(tmp_path)
        problems = DecisionJournal.check_file(path)
        assert len(problems) == 1
        assert problems[0].startswith("warning: dropped truncated trailing line")

    def test_clean_file_checks_clean(self, tmp_path):
        path = self.journal_file(tmp_path, torn=False)
        assert DecisionJournal.check_file(path) == []

    def test_mid_file_corruption_is_raised_not_dropped(self, tmp_path):
        path = self.journal_file(tmp_path, torn=False)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[2] = "{broken"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unparseable line 3"):
            DecisionJournal.read(path)


class TestCompaction:
    def test_compacts_old_cycles_behind_a_marker(self, tmp_path):
        journal = DecisionJournal(path=tmp_path / "journal.jsonl")
        for _ in range(3):
            record_cycle(journal)
        dropped = journal.compact(keep_last=8)
        assert dropped == 16  # the two oldest cycles

        survivors = DecisionJournal.read(journal.path)
        assert [e["kind"] for e in survivors] == ["compacted"] + list(HEAL_CYCLE)
        marker = survivors[0]
        assert marker["detail"]["dropped"] == 16
        assert marker["detail"]["first_seq"] == 1
        assert marker["detail"]["last_seq"] == 16
        assert marker["detail"]["kinds"]["promoted"] == 2
        # The compacted file still audits clean, memory and disk alike.
        assert DecisionJournal.check_file(journal.path) == []
        assert journal.check() == []
        assert [e["kind"] for e in journal.entries()] == [
            "compacted"
        ] + list(HEAL_CYCLE)

    def test_recording_continues_after_compaction(self, tmp_path):
        journal = DecisionJournal(path=tmp_path / "journal.jsonl")
        for _ in range(2):
            record_cycle(journal)
        journal.compact(keep_last=8)
        record_cycle(journal)
        entries = DecisionJournal.read(journal.path)
        assert entries[-1]["kind"] == "reference_updated"
        assert entries[-1]["seq"] == 24
        assert DecisionJournal.check_file(journal.path) == []

    def test_never_cuts_inside_an_in_flight_heal(self, tmp_path):
        journal = DecisionJournal(path=tmp_path / "journal.jsonl")
        journal.record("trigger")
        journal.record("retrain_started")
        assert journal.compact(keep_last=0) == 0
        assert len(DecisionJournal.read(journal.path)) == 2

    def test_never_splits_a_promotion_from_its_reference_update(self, tmp_path):
        journal = DecisionJournal(path=tmp_path / "journal.jsonl")
        for _ in range(2):
            record_cycle(journal)
        # keep_last=1 would cut between promoted and reference_updated;
        # the boundary must retreat to the previous completed cycle.
        dropped = journal.compact(keep_last=1)
        assert dropped == 8
        survivors = DecisionJournal.read(journal.path)
        assert [e["kind"] for e in survivors] == ["compacted"] + list(HEAL_CYCLE)
        assert check_consistency(survivors) == []

    def test_unconsumed_trigger_blocks_the_cut(self, tmp_path):
        journal = DecisionJournal()
        record_cycle(journal)
        journal.record("trigger")
        # Only boundary not splitting trigger from its heal is before it.
        assert journal.compact(keep_last=0) == 8
        assert [e["kind"] for e in journal.entries()] == ["compacted", "trigger"]

    def test_paused_journal_blocks_the_cut_until_resumed(self, tmp_path):
        journal = DecisionJournal()
        record_cycle(journal)
        journal.record("paused", reason="operator")
        assert journal.compact(keep_last=0) == 8
        assert [e["kind"] for e in journal.entries()] == ["compacted", "paused"]
        journal.record("resumed")
        assert journal.compact(keep_last=0) == 3
        assert [e["kind"] for e in journal.entries()] == ["compacted"]

    def test_in_memory_journal_compacts_without_a_file(self):
        journal = DecisionJournal()
        for _ in range(4):
            record_cycle(journal)
        assert journal.compact(keep_last=8) == 24
        assert journal.check() == []

    def test_negative_keep_last_rejected(self):
        with pytest.raises(ValueError, match="keep_last"):
            DecisionJournal().compact(keep_last=-1)

    def test_compact_is_a_no_op_on_a_short_journal(self, tmp_path):
        journal = DecisionJournal(path=tmp_path / "journal.jsonl")
        record_cycle(journal)
        assert journal.compact(keep_last=256) == 0
        assert len(DecisionJournal.read(journal.path)) == 8

    def test_compaction_tolerates_a_torn_tail(self, tmp_path):
        journal = DecisionJournal(path=tmp_path / "journal.jsonl")
        for _ in range(2):
            record_cycle(journal)
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 99, "at":')
        dropped = journal.compact(keep_last=8)
        assert dropped == 8
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        for line in lines:
            json.loads(line)  # the rewrite healed the torn tail
