"""The fault-point registry and injector: windows, seeds, determinism."""

import pytest

from repro.errors import ReproError
from repro.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    active,
    clear,
    fault_point,
    injected,
    install,
)


def plan(*rules: FaultRule, seed: int = 0) -> FaultPlan:
    return FaultPlan(name="test", seed=seed, rules=tuple(rules))


class TestRegistry:
    def test_fault_point_is_get_or_create(self):
        assert fault_point("t.registry") is fault_point("t.registry")

    def test_disarmed_hit_is_a_no_op(self):
        fault_point("t.disarmed").hit(tier="small", anything=1)

    def test_install_arms_only_targeted_points(self):
        point = fault_point("t.armed")
        other = fault_point("t.other")
        install(plan(FaultRule(point="t.armed")))
        assert point.armed and not other.armed
        clear()
        assert not point.armed

    def test_active_tracks_the_installed_injector(self):
        assert active() is None
        injector = install(plan(FaultRule(point="t.active")))
        assert active() is injector
        clear()
        assert active() is None

    def test_injected_scopes_install_and_clear(self):
        point = fault_point("t.scoped")
        with injected(plan(FaultRule(point="t.scoped"))):
            assert point.armed
        assert not point.armed

    def test_injected_clears_even_when_the_fault_escapes(self):
        point = fault_point("t.escape")
        with pytest.raises(InjectedFault):
            with injected(plan(FaultRule(point="t.escape"))):
                point.hit()
        assert not point.armed

    def test_reinstall_replaces_the_previous_plan(self):
        first = fault_point("t.first")
        install(plan(FaultRule(point="t.first")))
        install(plan(FaultRule(point="t.second")))
        assert not first.armed
        assert fault_point("t.second").armed


class TestKinds:
    def test_error_raises_injected_fault_with_point(self):
        point = fault_point("t.error")
        with injected(plan(FaultRule(point="t.error", message="boom"))):
            with pytest.raises(InjectedFault) as excinfo:
                point.hit()
        assert excinfo.value.point == "t.error"
        assert str(excinfo.value) == "boom [t.error]"
        # Injected faults model the outside world breaking: they must
        # never be catchable as a deliberate library error.
        assert not isinstance(excinfo.value, ReproError)

    def test_crash_is_a_transient_subclass(self):
        point = fault_point("t.crash")
        with injected(plan(FaultRule(point="t.crash", kind="crash"))):
            with pytest.raises(InjectedCrash):
                point.hit()
        assert issubclass(InjectedCrash, InjectedFault)

    def test_io_error_raises_os_error(self):
        point = fault_point("t.io")
        with injected(plan(FaultRule(point="t.io", kind="io_error"))):
            with pytest.raises(OSError):
                point.hit()

    def test_latency_sleeps_via_injected_clock(self):
        point = fault_point("t.latency")
        slept: list[float] = []
        storm = plan(FaultRule(point="t.latency", kind="latency", latency_s=0.25))
        with injected(storm, sleep=slept.append):
            point.hit()
        assert slept == [0.25]

    def test_latency_and_error_on_one_hit_do_both(self):
        point = fault_point("t.both")
        slept: list[float] = []
        storm = plan(
            FaultRule(point="t.both", kind="latency", latency_s=0.1),
            FaultRule(point="t.both"),
        )
        with injected(storm, sleep=slept.append):
            with pytest.raises(InjectedFault):
                point.hit()
        assert slept == [0.1]


class TestWindows:
    def test_after_passes_the_first_hits(self):
        point = fault_point("t.after")
        with injected(plan(FaultRule(point="t.after", after=2))) as injector:
            point.hit()
            point.hit()
            with pytest.raises(InjectedFault):
                point.hit()
        assert injector.fires() == 1
        assert injector.decisions()[0]["hit"] == 3

    def test_max_fires_disarms_the_rule(self):
        point = fault_point("t.maxfires")
        with injected(plan(FaultRule(point="t.maxfires", max_fires=2))) as inj:
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    point.hit()
            point.hit()
            point.hit()
        assert inj.fires("t.maxfires") == 2

    def test_match_restricts_to_labelled_hits(self):
        point = fault_point("t.match")
        rule = FaultRule(point="t.match", match=(("tier", "small"),))
        with injected(plan(rule)) as injector:
            point.hit(tier="large")
            with pytest.raises(InjectedFault):
                point.hit(tier="small")
        # Non-matching hits must not consume the rule's window.
        assert injector.decisions()[0]["hit"] == 1

    def test_zero_rate_never_fires(self):
        point = fault_point("t.zero")
        with injected(plan(FaultRule(point="t.zero", rate=0.0))) as injector:
            for _ in range(50):
                point.hit()
        assert injector.fires() == 0


class TestDeterminism:
    def storm(self, seed: int = 7) -> FaultPlan:
        return plan(
            FaultRule(point="t.det", rate=0.4, max_fires=10),
            FaultRule(point="t.det", kind="crash", rate=0.2, after=5),
            seed=seed,
        )

    def run_storm(self, storm: FaultPlan) -> list[dict]:
        point = fault_point("t.det")
        with injected(storm) as injector:
            for _ in range(100):
                try:
                    point.hit()
                except InjectedFault:
                    pass
            return injector.decisions()

    def test_same_plan_replays_byte_identically(self):
        first = self.run_storm(self.storm())
        second = self.run_storm(self.storm())
        assert first, "the storm should fire at least once in 100 hits"
        assert first == second

    def test_decisions_are_timestamp_free_plain_data(self):
        for entry in self.run_storm(self.storm()):
            assert set(entry) == {"point", "rule", "kind", "hit", "fire"}

    def test_a_different_seed_is_a_different_storm(self):
        assert self.run_storm(self.storm(seed=7)) != self.run_storm(
            self.storm(seed=8)
        )

    def test_decision_rule_indexes_point_into_the_plan(self):
        storm = self.storm()
        for entry in self.run_storm(storm):
            assert storm.rules[entry["rule"]].kind == entry["kind"]
