"""FaultPlan / FaultRule: validation, matching, and JSON round-trips."""

import json

import pytest

from repro.errors import FaultError, ReproError
from repro.faults import KINDS, FaultPlan, FaultRule


class TestRuleValidation:
    def test_defaults_are_an_always_firing_error(self):
        rule = FaultRule(point="replica.serve")
        assert rule.kind == "error"
        assert rule.rate == 1.0
        assert rule.after == 0
        assert rule.max_fires is None

    def test_empty_point_rejected(self):
        with pytest.raises(FaultError, match="point name"):
            FaultRule(point="")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultRule(point="x", kind="explode")

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rate_out_of_range_rejected(self, rate):
        with pytest.raises(FaultError, match="rate"):
            FaultRule(point="x", rate=rate)

    def test_negative_after_rejected(self):
        with pytest.raises(FaultError, match="after"):
            FaultRule(point="x", after=-1)

    def test_zero_max_fires_rejected(self):
        with pytest.raises(FaultError, match="max_fires"):
            FaultRule(point="x", max_fires=0)

    def test_latency_rule_needs_a_duration(self):
        with pytest.raises(FaultError, match="latency_s"):
            FaultRule(point="x", kind="latency")

    def test_fault_error_is_a_repro_error(self):
        # Plan *validation* failures are deliberate library errors —
        # unlike the injected faults themselves (see test_injector).
        with pytest.raises(ReproError):
            FaultRule(point="x", kind="nope")


class TestRuleMatching:
    def test_empty_match_accepts_any_labels(self):
        rule = FaultRule(point="x")
        assert rule.matches({})
        assert rule.matches({"tier": "small"})

    def test_match_values_compare_as_strings(self):
        rule = FaultRule(point="x", match=(("trial", "3"),))
        assert rule.matches({"trial": 3})
        assert rule.matches({"trial": "3"})
        assert not rule.matches({"trial": 4})
        assert not rule.matches({})

    def test_all_match_keys_must_hold(self):
        rule = FaultRule(point="x", match=(("tier", "small"), ("role", "stable")))
        assert rule.matches({"tier": "small", "role": "stable"})
        assert not rule.matches({"tier": "small", "role": "shadow"})


class TestPlanValidation:
    def test_plan_needs_a_name(self):
        with pytest.raises(FaultError, match="name"):
            FaultPlan(name="")

    def test_seed_must_be_an_int(self):
        with pytest.raises(FaultError, match="seed"):
            FaultPlan(seed="zero")

    def test_rules_must_be_fault_rules(self):
        with pytest.raises(FaultError, match="FaultRule"):
            FaultPlan(rules=({"point": "x"},))

    def test_points_dedup_in_first_seen_order(self):
        plan = FaultPlan(
            rules=(
                FaultRule(point="b"),
                FaultRule(point="a"),
                FaultRule(point="b", kind="crash"),
            )
        )
        assert plan.points() == ["b", "a"]


class TestRoundTrip:
    def plan(self) -> FaultPlan:
        return FaultPlan(
            name="storm-7",
            seed=42,
            rules=(
                FaultRule(point="replica.serve", rate=0.25, after=10),
                FaultRule(
                    point="exec.trial",
                    kind="crash",
                    max_fires=2,
                    message="worker died",
                ),
                FaultRule(point="store.fetch", kind="io_error"),
                FaultRule(
                    point="replica.serve",
                    kind="latency",
                    latency_s=0.05,
                    match=(("tier", "small"),),
                ),
            ),
        )

    def test_dict_round_trip_is_identity(self):
        plan = self.plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_round_trip_is_identity(self):
        plan = self.plan()
        assert FaultPlan.from_dict(json.loads(plan.to_json())) == plan

    def test_file_round_trip_is_identity(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "storm.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert FaultPlan.from_file(path) == plan

    def test_match_dict_normalizes_to_sorted_tuples(self):
        spec = {"point": "x", "match": {"role": "stable", "tier": "small"}}
        rule = FaultRule.from_dict(spec)
        assert rule.match == (("role", "stable"), ("tier", "small"))

    def test_unknown_rule_key_is_a_fault_error(self):
        with pytest.raises(FaultError, match="bad fault rule"):
            FaultRule.from_dict({"point": "x", "blast_radius": 1})

    def test_missing_file_is_a_fault_error(self, tmp_path):
        with pytest.raises(FaultError, match="cannot read"):
            FaultPlan.from_file(tmp_path / "nope.json")

    def test_non_object_file_is_a_fault_error(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(FaultError, match="JSON object"):
            FaultPlan.from_file(path)

    def test_every_kind_round_trips(self):
        for kind in KINDS:
            latency = 0.01 if kind == "latency" else 0.0
            rule = FaultRule(point="x", kind=kind, latency_s=latency)
            assert FaultRule.from_dict(rule.to_dict()) == rule
