"""ModelStore.fetch failure modes: named errors, never leaked internals."""

import pytest

from repro.deploy import ModelStore
from repro.errors import StoreError
from repro.faults import FaultPlan, FaultRule, injected


@pytest.fixture()
def fresh_store(served, tmp_path):
    """A per-test store (safe to corrupt) with one pushed version."""
    app, ds, run, payloads = served
    store = ModelStore(tmp_path / "store")
    record = store.push(app.name, run.artifact())
    return store, app.name, record


def test_missing_version_names_model_and_version(fresh_store):
    store, name, record = fresh_store
    with pytest.raises(StoreError, match=f"no version 'deadbeef' for model {name!r}"):
        store.fetch(name, "deadbeef")


def test_corrupt_artifact_is_a_friendly_store_error(fresh_store):
    store, name, record = fresh_store
    target = store.root / name / record.version
    for path in target.iterdir():
        if path.is_file():
            path.write_bytes(b"\x00garbage\x00")
    with pytest.raises(StoreError) as excinfo:
        store.fetch(name, record.version)
    message = str(excinfo.value)
    assert "corrupt artifact" in message
    assert name in message and record.version in message


def test_injected_io_error_surfaces_as_store_error(fresh_store):
    store, name, record = fresh_store
    storm = FaultPlan(
        name="disk-flake",
        rules=(FaultRule(point="store.fetch", kind="io_error", max_fires=1),),
    )
    with injected(storm) as injector:
        with pytest.raises(StoreError, match="corrupt artifact") as excinfo:
            store.fetch(name, record.version)
        # The flake was one-shot: the very next fetch succeeds.
        artifact = store.fetch(name, record.version)
    assert isinstance(excinfo.value.__cause__, OSError)
    assert artifact is not None
    assert injector.fires("store.fetch") == 1


def test_fetch_matches_by_model_label(fresh_store):
    store, name, record = fresh_store
    storm = FaultPlan(
        name="other-model",
        rules=(
            FaultRule(
                point="store.fetch",
                kind="io_error",
                match=(("model", "someone-else"),),
            ),
        ),
    )
    with injected(storm):
        assert store.fetch(name, record.version) is not None
