"""The circuit-breaker state machine, driven by a fake clock."""

import pytest

from repro.errors import ReproError, ServeError
from repro.serve import BreakerPolicy, CircuitBreaker


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def breaker(
    failure_threshold: int = 3,
    reset_timeout_s: float = 10.0,
    half_open_successes: int = 1,
    transitions: list | None = None,
):
    clock = Clock()
    policy = BreakerPolicy(
        failure_threshold=failure_threshold,
        reset_timeout_s=reset_timeout_s,
        half_open_successes=half_open_successes,
    )
    on_transition = None
    if transitions is not None:
        on_transition = lambda old, new: transitions.append((old, new))  # noqa: E731
    return CircuitBreaker(policy, clock=clock, on_transition=on_transition), clock


class TestPolicy:
    def test_defaults_round_trip(self):
        policy = BreakerPolicy()
        assert BreakerPolicy.from_dict(policy.to_dict()) == policy

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"reset_timeout_s": 0.0},
            {"half_open_successes": 0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ServeError):
            BreakerPolicy(**kwargs)

    def test_policy_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            BreakerPolicy(failure_threshold=-1)


class TestStateMachine:
    def test_starts_closed_and_allowing(self):
        b, _ = breaker()
        assert b.state == "closed"
        assert b.allow()

    def test_failures_below_threshold_stay_closed(self):
        b, _ = breaker(failure_threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state == "closed" and b.allow()

    def test_a_success_resets_the_failure_streak(self):
        b, _ = breaker(failure_threshold=3)
        for _ in range(5):
            b.record_failure()
            b.record_failure()
            b.record_success()
        assert b.state == "closed"

    def test_consecutive_failures_open_the_circuit(self):
        b, _ = breaker(failure_threshold=3)
        for _ in range(3):
            b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        assert b.opens == 1

    def test_open_flips_half_open_after_the_reset_timeout(self):
        b, clock = breaker(failure_threshold=1, reset_timeout_s=10.0)
        b.record_failure()
        clock.advance(9.9)
        assert not b.allow()
        clock.advance(0.2)
        assert b.allow()
        assert b.state == "half_open"

    def test_half_open_failure_reopens_immediately(self):
        b, clock = breaker(failure_threshold=2, reset_timeout_s=10.0)
        b.record_failure()
        b.record_failure()
        clock.advance(11.0)
        assert b.allow()
        b.record_failure()  # one probe failure, not a full streak
        assert b.state == "open"
        assert b.opens == 2

    def test_half_open_needs_a_clean_streak_to_close(self):
        b, clock = breaker(
            failure_threshold=1, reset_timeout_s=10.0, half_open_successes=2
        )
        b.record_failure()
        clock.advance(11.0)
        assert b.allow()
        b.record_success()
        assert b.state == "half_open"
        b.record_success()
        assert b.state == "closed"
        assert b.allow()

    def test_success_while_closed_is_a_no_op(self):
        b, _ = breaker()
        b.record_success()
        assert b.state == "closed"


class TestObservers:
    def test_transitions_emit_in_lifecycle_order(self):
        transitions: list[tuple[str, str]] = []
        b, clock = breaker(
            failure_threshold=1, reset_timeout_s=10.0, transitions=transitions
        )
        b.record_failure()
        clock.advance(11.0)
        b.allow()
        b.record_failure()
        clock.advance(11.0)
        b.allow()
        b.record_success()
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_to_dict_snapshots_state_and_open_age(self):
        b, clock = breaker(failure_threshold=1)
        assert b.to_dict() == {
            "state": "closed",
            "consecutive_failures": 0,
            "opens": 0,
            "open_for_s": None,
        }
        b.record_failure()
        clock.advance(4.0)
        snapshot = b.to_dict()
        assert snapshot["state"] == "open"
        assert snapshot["opens"] == 1
        assert snapshot["open_for_s"] == pytest.approx(4.0)
