"""Tier-1 smoke for the autopilot heal-loop benchmark.

Runs ``benchmarks/bench_autopilot.py`` in reduced-size mode on every test
run, so the full monitor -> retrain -> shadow -> promote pipeline — the
drift trigger, the cached retrain, the unreleased staging, the promotion
gate — is exercised continuously against a live gateway.  Thresholds are
*not* asserted here; those belong to the full-size run under
``tools/run_benchmarks.py``.
"""

from benchmarks.bench_autopilot import run_autopilot_bench


def test_autopilot_reduced_mode():
    metrics = run_autopilot_bench(reduced=True)
    # Wiring, not thresholds: the loop closed and every leg was timed.
    assert metrics["promotions"] == 1
    assert metrics["journal_kinds"] == [
        "trigger",
        "retrain_started",
        "retrain_finished",
        "staged",
        "shadow_started",
        "gate",
        "promoted",
        "reference_updated",
    ]
    for key in ("retrain_s", "heal_tick_s", "detect_to_promote_s"):
        assert metrics[key] > 0, (key, metrics)
    assert metrics["records"] == 120
