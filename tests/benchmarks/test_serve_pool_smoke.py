"""Tier-1 smoke for the process-parallel serving benchmark.

Runs ``benchmarks/bench_serve_gateway.py`` in reduced-size mode (tiny
workload, a single 2-worker pool row) on every test run, so the
gateway-vs-pool comparison — including the unconditional bit-identical
parity gate inside ``run_gateway_throughput`` — stays exercised
continuously.  Throughput thresholds are *not* asserted here; those
belong to the full-size run under ``tools/run_benchmarks.py``.
"""

from benchmarks.bench_serve_gateway import run_gateway_throughput


def test_serve_pool_reduced_mode():
    columns = run_gateway_throughput(reduced=True)
    # Wiring, not thresholds: all three serving paths answered the log,
    # and the reduced run carries exactly one worker-pool row.
    assert columns["mode"] == [
        "per-request Endpoint.predict",
        "gateway (batch 32)",
        "pool (2 workers)",
    ]
    assert all(r > 0 for r in columns["requests/s"])
