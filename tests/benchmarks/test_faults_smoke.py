"""Tier-1 smoke for the fault-injection overhead benchmark.

Runs ``benchmarks/bench_faults_overhead.py`` in reduced-size mode on
every test run, so the cleared-vs-armed gateway drain and the per-op
micro measurements stay exercised continuously.  Thresholds are *not*
asserted here; those belong to the full-size run under
``tools/run_benchmarks.py``.
"""

from benchmarks.bench_faults_overhead import run_faults_overhead


def test_faults_reduced_mode():
    metrics = run_faults_overhead(reduced=True)
    # Wiring, not thresholds: both postures drained, micros were timed.
    assert metrics["reduced"] is True
    assert metrics["cleared_rps"] > 0
    assert metrics["armed_rps"] > 0
    assert 0.0 <= metrics["overhead_frac"] <= 1.0
    assert metrics["disarmed_hit_ns"] > 0
    assert metrics["armed_idle_hit_ns"] > 0
