"""Tier-1 smoke for the dtype inference benchmark.

Runs ``benchmarks/bench_dtype_inference.py`` in reduced-size mode on every
test run, so the float32 serving path — policy-scoped encoding, float32
compilation, the divergence comparison — is exercised continuously.
Thresholds are *not* asserted here; those belong to the full-size run
under ``tools/run_benchmarks.py --only dtype``.
"""

from benchmarks.bench_dtype_inference import run_dtype_bench


def test_dtype_bench_reduced_mode():
    metrics = run_dtype_bench(reduced=True)
    # Wiring, not thresholds: both precisions ran and compared sanely.
    for key in ("float64_fwd_per_s", "float32_fwd_per_s", "dtype_speedup"):
        assert metrics[key] > 0, (key, metrics)
    assert metrics["reps"] == 2
    assert metrics["max_divergence"] <= 1e-4, metrics
    assert metrics["prediction_flips"] == 0, metrics
