"""Tier-1 smoke for the core hot-path benchmark.

Runs ``benchmarks/bench_core_hotpaths.py`` in reduced-size mode on every
test run, so the perf-path wiring — tape-free inference, the legacy taped
evaluation lane, encoded-batch caching, and the parity assertions inside
the benchmark — is exercised continuously.  Thresholds are *not* asserted
here; those belong to the full-size run under ``tools/run_benchmarks.py``.
"""

from benchmarks.bench_core_hotpaths import run_core_hotpaths


def test_core_hotpaths_reduced_mode():
    metrics = run_core_hotpaths(reduced=True)
    # Wiring, not thresholds: both measurements ran and produced sane output.
    for key in (
        "taped_fwd_per_s",
        "tape_free_fwd_per_s",
        "inference_speedup",
        "epoch_legacy_s",
        "epoch_fast_s",
        "epoch_speedup",
    ):
        assert metrics[key] > 0, (key, metrics)
    assert metrics["reps"] == 2
    assert metrics["epochs"] == 2
