"""Tier-1 smoke for the synth generator benchmark.

Runs ``benchmarks/bench_synth_generator.py`` in reduced-size mode on
every test run, so the streaming throughput path and the difficulty
calibration loop stay exercised continuously.  Thresholds are *not*
asserted here; those belong to the full-size run under
``tools/run_benchmarks.py``.
"""

from benchmarks.bench_synth_generator import run_synth_bench


def test_synth_reduced_mode():
    metrics = run_synth_bench(reduced=True)
    # Wiring, not thresholds: every scale was timed, calibration ran.
    assert metrics["reduced"] is True
    assert metrics["scales"] == [500, 1_000, 2_000]
    for n in metrics["scales"]:
        assert metrics[f"records_per_s_at_{n}"] > 0
    assert 0.0 <= metrics["calibration_mae"] <= 1.0
    assert 0.0 <= metrics["rank_concordance"] <= 1.0
    assert [row["spec"] for row in metrics["calibration_rows"]] == [
        "synth-easy",
        "synth-medium",
        "synth-hard",
    ]
