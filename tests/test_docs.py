"""Tier-1 wiring for the documentation suite.

Two guarantees: the docstring lint (``tools/check_docs.py``) stays green
on ``src/repro``, and the user-facing documents the README links to
actually exist and cover what they claim.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestDocstringLint:
    def test_public_api_is_documented(self, capsys):
        assert check_docs.main([]) == 0, capsys.readouterr().out

    def test_lint_catches_missing_module_docstring(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        problems = check_docs.check_tree(tmp_path)
        assert len(problems) == 1
        assert "missing module docstring" in problems[0]

    def test_lint_catches_missing_class_docstring(self, tmp_path):
        (tmp_path / "mod.py").write_text('"""Doc."""\n\nclass Thing:\n    pass\n')
        problems = check_docs.check_tree(tmp_path)
        assert len(problems) == 1
        assert "class Thing" in problems[0]

    def test_private_names_are_exempt(self, tmp_path):
        (tmp_path / "_internal.py").write_text("x = 1\n")
        (tmp_path / "mod.py").write_text('"""Doc."""\n\nclass _Helper:\n    pass\n')
        assert check_docs.check_tree(tmp_path) == []

    def test_unparseable_file_is_reported(self, tmp_path):
        (tmp_path / "mod.py").write_text("def broken(:\n")
        problems = check_docs.check_tree(tmp_path)
        assert len(problems) == 1
        assert "cannot parse" in problems[0]


class TestDocumentationSuite:
    def test_readme_exists_and_links_the_guides(self):
        readme = (ROOT / "README.md").read_text()
        for guide in ("docs/lifecycle.md", "docs/serving.md", "docs/tuning.md"):
            assert guide in readme, f"README must link {guide}"

    def test_readme_maps_every_package(self):
        readme = (ROOT / "README.md").read_text()
        packages = sorted(
            p.name
            for p in (ROOT / "src" / "repro").iterdir()
            if p.is_dir() and not p.name.startswith("_")
        )
        for package in packages:
            assert f"repro/{package}" in readme, (
                f"README architecture map must mention src/repro/{package}"
            )

    def test_guides_exist_and_cover_their_claims(self):
        lifecycle = (ROOT / "docs" / "lifecycle.md").read_text()
        assert "app.json" in lifecycle
        assert "Application" in lifecycle and "Endpoint" in lifecycle

        serving = (ROOT / "docs" / "serving.md").read_text()
        assert "set_latest=False" in serving  # staging a version, documented
        assert "refresh()" in serving
        assert "CHANGES.md" in serving  # cross-links, not duplicated tables

        tuning = (ROOT / "docs" / "tuning.md").read_text()
        assert "workers" in tuning
        assert "coverage" in tuning
        assert "cache" in tuning
