"""Supervisor loop tests: detect -> retrain -> shadow -> promote, and the
paths that must NOT promote (kill switch, cooldown, dry-run, gate
rejection, shadow timeout, promotion budget)."""

from __future__ import annotations

import pytest

from repro.autopilot import HealPolicy, PromotionGate, Supervisor

from tests.autopilot.conftest import clean_payload, drifted_payload, lenient_policy


class FakeClock:
    """A controllable monotonic clock for cooldown/timeout paths."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def drive(gateway, ds, lo, hi, drifted=True):
    make = drifted_payload if drifted else clean_payload
    for record in ds.records[lo:hi]:
        gateway.submit(make(record))
    gateway.drain()


class TestEndToEndHeal:
    def test_drift_detect_retrain_shadow_promote(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        stable_version = store.latest_version(app.name)
        supervisor = Supervisor(gateway, app, store, ds, lenient_policy())
        with gateway:
            drive(gateway, ds, 0, 20, drifted=False)
            assert supervisor.step()["action"] == "no_trigger"

            drive(gateway, ds, 0, 40, drifted=True)
            outcome = supervisor.step()
            assert outcome["action"] == "heal_started"
            staged = outcome["version"]
            # Staged, not released: the latest pointer has not moved.
            assert staged != stable_version
            assert store.latest_version(app.name) == stable_version
            assert supervisor.state == "shadowing"

            drive(gateway, ds, 40, 80, drifted=True)
            outcome = supervisor.step()
            assert outcome["action"] == "promoted"
            assert store.latest_version(app.name) == staged

        # Every decision journaled, in pipeline order.
        kinds = supervisor.journal.kinds()
        assert kinds == [
            "trigger",
            "retrain_started",
            "retrain_finished",
            "staged",
            "shadow_started",
            "gate",
            "promoted",
            "reference_updated",
        ]
        gate_entry = supervisor.journal.entries(kind="gate")[0]
        assert gate_entry["detail"]["passed"] is True
        status = supervisor.status()
        assert status["promotions"] == 1
        assert status["rejections"] == 0
        # The rollout left its trace in telemetry (satellite: lifecycle events).
        actions = [e.action for e in gateway.telemetry.rollout_events()]
        assert "set_shadow" in actions
        assert "promote" in actions

    def test_healed_reference_stops_refiring(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        supervisor = Supervisor(gateway, app, store, ds, lenient_policy())
        with gateway:
            drive(gateway, ds, 0, 40, drifted=True)
            assert supervisor.step()["action"] == "heal_started"
            drive(gateway, ds, 40, 80, drifted=True)
            assert supervisor.step()["action"] == "promoted"
            # Promotion dropped the stale sample window...
            entry = supervisor.journal.entries(kind="reference_updated")[0]
            assert entry["detail"]["stale_samples_dropped"] > 0
            # ...and the absorbed drift no longer fires on fresh traffic.
            drive(gateway, ds, 0, 40, drifted=True)
            assert supervisor.step()["action"] == "no_trigger"


class TestRejectionPaths:
    def test_uncovered_blocking_slice_rejects_and_journals(
        self, ap_world, ap_gateway
    ):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        stable_version = store.latest_version(app.name)
        policy = lenient_policy(
            gate=PromotionGate(
                max_disagreement_rate=1.0,
                min_shadow_requests=16,
                regression_threshold=0.25,
                min_examples=5,
                blocking_slices=("slice:does_not_exist",),
            )
        )
        supervisor = Supervisor(gateway, app, store, ds, policy)
        with gateway:
            drive(gateway, ds, 0, 40, drifted=True)
            assert supervisor.step()["action"] == "heal_started"
            drive(gateway, ds, 40, 80, drifted=True)
            outcome = supervisor.step()
        assert outcome["action"] == "rejected"
        assert "slice_coverage" in outcome["reason"]
        # Not promoted: pointer and replicas untouched, decision journaled.
        assert store.latest_version(app.name) == stable_version
        assert not gateway.pool.has_candidate()
        assert supervisor.journal.entries(kind="promoted") == []
        gate_entry = supervisor.journal.entries(kind="gate")[0]
        assert gate_entry["detail"]["passed"] is False
        assert supervisor.status()["rejections"] == 1

    def test_shadow_timeout_rejects(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        clock = FakeClock()
        policy = lenient_policy(
            gate=PromotionGate(
                max_disagreement_rate=1.0,
                min_shadow_requests=500,  # never fills
                shadow_timeout_s=30.0,
                regression_threshold=0.25,
            )
        )
        supervisor = Supervisor(gateway, app, store, ds, policy, clock=clock)
        with gateway:
            drive(gateway, ds, 0, 40, drifted=True)
            assert supervisor.step()["action"] == "heal_started"
            assert supervisor.step()["action"] == "awaiting_shadow"
            clock.advance(31.0)
            outcome = supervisor.step()
        assert outcome["action"] == "rejected"
        assert "timed out" in outcome["reason"]


class TestControls:
    def test_kill_switch_pauses_and_resumes(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        supervisor = Supervisor(
            gateway, app, store, ds, lenient_policy(), dry_run=True
        )
        with gateway:
            drive(gateway, ds, 0, 40, drifted=True)
            supervisor.pause(reason="operator hold")
            outcome = supervisor.step()
            assert outcome["action"] == "paused"
            assert outcome["reason"] == "operator hold"
            # Paused means *nothing* was decided: no triggers journaled.
            assert supervisor.journal.entries(kind="trigger") == []
            supervisor.resume()
            assert supervisor.step()["action"] == "dry_run"
        kinds = supervisor.journal.kinds()
        assert "paused" in kinds and "resumed" in kinds

    def test_cooldown_blocks_next_heal(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        clock = FakeClock()
        policy = lenient_policy(cooldown_s=120.0)
        supervisor = Supervisor(
            gateway, app, store, ds, policy, dry_run=True, clock=clock
        )
        with gateway:
            drive(gateway, ds, 0, 40, drifted=True)
            assert supervisor.step()["action"] == "dry_run"
            outcome = supervisor.step()
            assert outcome["action"] == "cooldown"
            assert outcome["remaining_s"] == pytest.approx(120.0)
            clock.advance(121.0)
            # Cooldown over; the un-healed drift fires again.
            assert supervisor.step()["action"] == "dry_run"

    def test_dry_run_journals_without_acting(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        supervisor = Supervisor(
            gateway, app, store, ds, lenient_policy(), dry_run=True
        )
        with gateway:
            drive(gateway, ds, 0, 40, drifted=True)
            outcome = supervisor.step()
        assert outcome["action"] == "dry_run"
        # Intended actions journaled; nothing actually happened.
        entry = supervisor.journal.entries(kind="dry_run")[0]
        assert entry["detail"]["would"] == ["retrain", "stage", "shadow", "gate"]
        assert len(store.versions(app.name)) == 1
        assert not gateway.pool.has_candidate()
        assert supervisor.journal.entries(kind="staged") == []

    def test_promotion_budget_pauses_the_loop(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        policy = lenient_policy(max_promotions=0)
        supervisor = Supervisor(gateway, app, store, ds, policy)
        with gateway:
            drive(gateway, ds, 0, 40, drifted=True)
            outcome = supervisor.step()
            assert outcome["action"] == "budget_exhausted"
            assert supervisor.paused
            assert supervisor.step()["action"] == "paused"

    def test_run_thread_ticks_and_stops(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        supervisor = Supervisor(
            gateway, app, store, ds, lenient_policy(), dry_run=True
        )
        with gateway:
            thread = supervisor.run(interval_s=0.01)
            assert thread.is_alive()
            import time

            deadline = time.monotonic() + 5.0
            while supervisor.ticks < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            supervisor.stop()
        assert supervisor.ticks >= 3
        assert not thread.is_alive()


class TestJournalWiring:
    def test_empty_file_backed_journal_is_kept(
        self, ap_world, ap_gateway, tmp_path
    ):
        from repro.autopilot import DecisionJournal

        app, ds, run = ap_world
        store, gateway = ap_gateway
        journal = DecisionJournal(tmp_path / "decisions.jsonl")
        # An empty journal is falsy (len == 0); the supervisor must keep
        # it anyway instead of swapping in an in-memory one.
        supervisor = Supervisor(
            gateway, app, store, ds, lenient_policy(), journal=journal,
            dry_run=True,
        )
        assert supervisor.journal is journal
        with gateway:
            drive(gateway, ds, 0, 40, drifted=True)
            supervisor.step()
        on_disk = DecisionJournal.read(tmp_path / "decisions.jsonl")
        assert [e["kind"] for e in on_disk] == ["trigger", "dry_run"]


class TestSurfaces:
    def test_status_and_render(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        supervisor = Supervisor(
            gateway, app, store, ds, lenient_policy(), dry_run=True
        )
        with gateway:
            drive(gateway, ds, 0, 40, drifted=True)
            supervisor.step()
        status = supervisor.status()
        assert status["dry_run"] is True
        assert status["model"] == app.name
        text = supervisor.render()
        assert "autopilot:" in text
        assert "dry-run" in text
        assert "recent decisions" in text

    def test_http_autopilot_route(self, ap_world, ap_gateway):
        import json
        from urllib.request import urlopen

        from repro.serve import GatewayHTTPServer

        app, ds, run = ap_world
        store, gateway = ap_gateway
        supervisor = Supervisor(
            gateway, app, store, ds, lenient_policy(), dry_run=True
        )
        with gateway, GatewayHTTPServer(gateway, autopilot=supervisor) as server:
            drive(gateway, ds, 0, 40, drifted=True)
            supervisor.step()
            body = json.loads(urlopen(f"{server.url}/autopilot").read())
            assert body["status"]["state"] == "idle"
            assert body["policy"]["min_live_window"] == 16
            kinds = [e["kind"] for e in body["journal"]]
            assert "trigger" in kinds and "dry_run" in kinds
            dashboard = urlopen(f"{server.url}/dashboard").read().decode()
            assert "autopilot:" in dashboard

    def test_http_404_without_autopilot(self, ap_world, ap_gateway):
        from urllib.error import HTTPError
        from urllib.request import urlopen

        from repro.serve import GatewayHTTPServer

        app, ds, run = ap_world
        store, gateway = ap_gateway
        with gateway, GatewayHTTPServer(gateway) as server:
            with pytest.raises(HTTPError) as excinfo:
                urlopen(f"{server.url}/autopilot")
            assert excinfo.value.code == 404
