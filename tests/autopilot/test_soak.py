"""Soak tests: the autopilot as a *stable controller*, not a one-shot heal.

Tier-1 runs a reduced smoke — one drift storm, dozens of requests, a
simulated clock — asserting the supervisor stays quiet on clean traffic,
heals exactly once when the storm arrives, and never re-fires on drift it
already absorbed.  Set ``REPRO_SOAK=1`` for the full tier-2 soak: dozens
of ticks through a calm -> storm -> calm -> second-storm schedule, two
promotions, and a :func:`repro.autopilot.check_consistency` audit of the
whole decision journal.
"""

from __future__ import annotations

import os

import pytest

from repro.autopilot import (
    DecisionJournal,
    DriftTrigger,
    HealPolicy,
    PromotionGate,
    RetrainPlan,
    check_consistency,
)
from repro.faults import FaultPlan, FaultRule
from repro.workloads.synth import DriftPhase, preset, run_soak

SOAK = os.environ.get("REPRO_SOAK", "") == "1"


def _soak_policy() -> HealPolicy:
    # js_threshold is deliberately high: small live windows over a
    # 120-token vocabulary sit around js ~0.15 from sampling noise alone.
    # The OOV jump is the reliable discriminator — the storm phases push
    # live OOV to ~0.45 vs ~0.01 on clean traffic.
    return HealPolicy(
        drift_triggers=(DriftTrigger(js_threshold=0.35, oov_jump_threshold=0.05),),
        min_live_window=16,
        cooldown_s=0.0,
        retrain=RetrainPlan(workers=1, max_live_records=256),
        gate=PromotionGate(
            max_disagreement_rate=1.0,
            min_shadow_requests=16,
            regression_threshold=0.25,
            min_examples=5,
        ),
    )


def test_soak_smoke_heals_once_and_absorbs_the_drift(tmp_path):
    spec = preset("synth-drift-storm").scaled(160)
    report = run_soak(
        spec,
        ticks=10,
        requests_per_tick=24,
        policy=_soak_policy(),
        store_dir=tmp_path / "store",
        journal_path=tmp_path / "journal.jsonl",
    )
    actions = report.actions()
    heal_tick = report.first_action_tick("heal_started")
    promote_tick = report.first_action_tick("promoted")

    # Quiet on clean traffic: nothing fires before the storm arrives.
    storm_start = next(t.tick for t in report.ticks if t.oov_rate > 0)
    assert heal_tick is not None and heal_tick >= storm_start, actions
    assert all(a == "no_trigger" for a in actions[:heal_tick]), actions

    # The heal lands: one promotion, no rejections.
    assert promote_tick is not None and promote_tick > heal_tick, actions
    assert report.promotions == 1 and report.rejections == 0, actions

    # Absorbed drift never re-fires, even though the storm keeps blowing.
    assert all(a == "no_trigger" for a in actions[promote_tick + 1 :]), actions
    assert report.heals_started == 1

    # The journal survives the process and audits clean.
    assert report.journal.check() == []
    replayed = DecisionJournal.read(tmp_path / "journal.jsonl")
    assert check_consistency(replayed) == []
    assert [e["kind"] for e in replayed] == [
        "trigger",
        "retrain_started",
        "retrain_finished",
        "staged",
        "shadow_started",
        "gate",
        "promoted",
        "reference_updated",
    ]


def test_calm_drift_never_triggers(tmp_path):
    """The calm preset's tiny OOV blip must stay below the trigger."""
    spec = preset("synth-drift-calm").scaled(120)
    report = run_soak(
        spec,
        ticks=6,
        requests_per_tick=20,
        policy=_soak_policy(),
        store_dir=tmp_path / "store",
    )
    assert report.actions() == ["no_trigger"] * 6, report.actions()
    assert report.heals_started == 0


def _chaos_policy(max_heal_failures: int = 3) -> HealPolicy:
    """The soak policy, hardened: retrial-tolerant retrains, auto-pause."""
    return HealPolicy(
        drift_triggers=(DriftTrigger(js_threshold=0.35, oov_jump_threshold=0.05),),
        min_live_window=16,
        cooldown_s=0.0,
        retrain=RetrainPlan(
            workers=1,
            max_live_records=256,
            retries=1,
            retry_backoff_s=0.0,
            on_error="skip",
        ),
        gate=PromotionGate(
            max_disagreement_rate=1.0,
            min_shadow_requests=16,
            regression_threshold=0.25,
            min_examples=5,
        ),
        max_heal_failures=max_heal_failures,
    )


def _chaos_plan() -> FaultPlan:
    """One storm across all three shipped fault points.

    Two live requests fail outright, the first retrain's trial crashes
    once (absorbed by the executor retry), and the first heal's candidate
    fetch dies with an IO error (failing that heal) — the loop must
    degrade, back off, and still land the promotion on the second try.
    """
    return FaultPlan(
        name="soak-storm",
        seed=20,
        rules=(
            FaultRule(
                point="replica.serve",
                match=(("role", "stable"),),
                after=30,
                max_fires=2,
            ),
            FaultRule(point="exec.trial", kind="crash", max_fires=1),
            FaultRule(point="store.fetch", kind="io_error", max_fires=1),
        ),
    )


def _run_chaos_soak(tmp_path, name: str, **overrides):
    spec = preset("synth-drift-storm").scaled(160)
    kwargs = dict(
        ticks=12,
        requests_per_tick=24,
        policy=_chaos_policy(),
        store_dir=tmp_path / f"{name}-store",
        journal_path=tmp_path / f"{name}-journal.jsonl",
        fault_plan=_chaos_plan(),
    )
    kwargs.update(overrides)
    return run_soak(spec, **kwargs)


def test_chaos_soak_degrades_and_recovers(tmp_path):
    """The full storm: failed requests, a crashed trial, a failed heal —
    and still exactly one promotion, with every decision journaled."""
    report = _run_chaos_soak(tmp_path, "chaos")
    actions = report.actions()

    # The storm was absorbed: one failed heal, then a clean promotion.
    assert actions.count("heal_failed") == 1, actions
    assert report.heals_started == 2 and report.promotions == 1, actions
    assert report.rejections == 0

    # The two injected request faults failed those requests, nothing more:
    # no shedding, and the loop never saw them as drift.
    assert report.request_errors == 2
    assert report.shed == 0

    # The injected storm replayed exactly as planned, in plan order.
    assert [d["kind"] for d in report.fault_decisions] == [
        "error",
        "error",
        "crash",
        "io_error",
    ]
    assert [d["hit"] for d in report.fault_decisions] == [31, 32, 1, 1]

    # The journal tells the whole story, and audits clean despite the
    # mid-heal failure.
    replayed = DecisionJournal.read(tmp_path / "chaos-journal.jsonl")
    assert check_consistency(replayed) == []
    assert [e["kind"] for e in replayed] == [
        "trigger",
        "retrain_started",
        "retrain_finished",
        "staged",
        "heal_failed",
        "trigger",
        "retrain_started",
        "retrain_finished",
        "staged",
        "shadow_started",
        "gate",
        "promoted",
        "reference_updated",
    ]
    failed = [e for e in replayed if e["kind"] == "heal_failed"]
    assert failed[0]["detail"]["consecutive"] == 1
    assert "StoreError" in failed[0]["detail"]["error"]


def test_chaos_soak_auto_pauses_after_repeated_heal_failures(tmp_path):
    """A heal that keeps dying must stop retraining and page a human."""
    always_down = FaultPlan(
        name="store-down",
        seed=0,
        rules=(FaultRule(point="store.fetch", kind="io_error"),),
    )
    report = _run_chaos_soak(
        tmp_path,
        "pause",
        ticks=10,
        policy=_chaos_policy(max_heal_failures=2),
        fault_plan=always_down,
    )
    actions = report.actions()
    assert actions.count("heal_failed") == 2, actions
    assert report.heals_started == 2 and report.promotions == 0

    # Every tick after the second failure is a paused no-op.
    last_failure = max(i for i, a in enumerate(actions) if a == "heal_failed")
    assert actions[last_failure + 1 :] == ["paused"] * (
        len(actions) - last_failure - 1
    ), actions

    paused = report.journal.entries("paused")
    assert len(paused) == 1
    assert (
        paused[0]["detail"]["reason"]
        == "auto-paused after 2 consecutive heal failures"
    )
    failed = report.journal.entries("heal_failed")
    assert [e["detail"]["consecutive"] for e in failed] == [1, 2]
    assert report.journal.check() == []


@pytest.mark.skipif(not SOAK, reason="tier-2 soak; set REPRO_SOAK=1")
def test_chaos_soak_is_byte_deterministic(tmp_path):
    """The same seeded storm twice: identical decisions, identical journal."""
    first = _run_chaos_soak(tmp_path, "det-a")
    second = _run_chaos_soak(tmp_path, "det-b")
    assert first.fault_decisions == second.fault_decisions
    first_journal = DecisionJournal.read(tmp_path / "det-a-journal.jsonl")
    second_journal = DecisionJournal.read(tmp_path / "det-b-journal.jsonl")
    assert [(e["seq"], e["kind"]) for e in first_journal] == [
        (e["seq"], e["kind"]) for e in second_journal
    ]
    assert first.actions() == second.actions()
    assert first.request_errors == second.request_errors


@pytest.mark.skipif(not SOAK, reason="tier-2 soak; set REPRO_SOAK=1")
def test_full_soak_two_storms_two_heals(tmp_path):
    spec = preset("synth-drift-storm").replace(
        n=600,
        drift=(
            DriftPhase(start=0.0),
            DriftPhase(start=0.25, oov_rate=0.45, length_delta=1),
            DriftPhase(start=0.5),
            DriftPhase(start=0.72, oov_rate=0.5, length_delta=1),
        ),
    )
    report = run_soak(
        spec,
        ticks=36,
        requests_per_tick=24,
        policy=_soak_policy(),
        store_dir=tmp_path / "store",
        journal_path=tmp_path / "journal.jsonl",
    )
    actions = report.actions()

    # Two storms, two heals, both promoted; the calm valleys stay quiet.
    assert report.heals_started == 2, actions
    assert report.promotions == 2 and report.rejections == 0, actions
    heal_ticks = [t.tick for t in report.ticks if t.action == "heal_started"]
    promote_ticks = [t.tick for t in report.ticks if t.action == "promoted"]
    storm_ticks = {t.tick for t in report.ticks if t.oov_rate > 0}
    assert len(heal_ticks) == 2 and len(promote_ticks) == 2
    assert all(tick in storm_ticks for tick in heal_ticks), (
        heal_ticks,
        sorted(storm_ticks),
    )
    # Between a promotion and the next storm phase, and after the last
    # one, nothing re-fires: absorbed drift stays absorbed.
    first_promote, second_heal = promote_ticks[0], heal_ticks[1]
    between = actions[first_promote + 1 : second_heal]
    assert all(a == "no_trigger" for a in between), actions
    assert all(a == "no_trigger" for a in actions[promote_ticks[1] + 1 :]), actions

    # Repeated heals keep the journal consistent, in memory and on disk.
    assert report.journal.check() == []
    replayed = DecisionJournal.read(tmp_path / "journal.jsonl")
    assert check_consistency(replayed) == []
    assert sum(1 for e in replayed if e["kind"] == "promoted") == 2
