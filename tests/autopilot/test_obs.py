"""Observability through the autopilot: tick spans, journal trace links,
and the supervisor's scrapeable counters."""

from __future__ import annotations

import repro.obs as obs
from repro.autopilot import DecisionJournal, Supervisor

from tests.autopilot.conftest import clean_payload, lenient_policy


def make_supervisor(ap_world, ap_gateway) -> Supervisor:
    app, ds, run = ap_world
    store, gateway = ap_gateway
    return Supervisor(gateway, app, store, ds, lenient_policy())


class TestTickTracing:
    def test_each_tick_is_one_root_span(self, ap_world, ap_gateway):
        supervisor = make_supervisor(ap_world, ap_gateway)
        with obs.activated():
            supervisor.step()
            supervisor.step()
            ticks = [
                s for s in obs.get_tracer().ring.spans()
                if s.name == "autopilot.tick"
            ]
            assert len(ticks) == 2
            assert all(s.parent_id is None for s in ticks)
            assert len({s.trace_id for s in ticks}) == 2  # fresh trace per tick
            assert ticks[0].attrs["state"] == "idle"

    def test_journal_entries_link_to_the_tick_trace(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        supervisor = make_supervisor(ap_world, ap_gateway)
        with obs.activated():
            # Enough clean traffic to clear min_live_window: the step
            # journals a "trigger"-free tick only when something happens,
            # so force a decision via the kill switch instead.
            supervisor.pause("audit")
            supervisor.resume()
            (paused, resumed) = supervisor.journal.entries()[-2:]
        assert paused["kind"] == "paused" and resumed["kind"] == "resumed"
        # pause/resume run outside a tick -> no trace to link.
        assert "trace_id" not in paused

    def test_journal_records_tick_trace_id_inside_step(
        self, ap_world, ap_gateway, monkeypatch
    ):
        supervisor = make_supervisor(ap_world, ap_gateway)
        with obs.activated():
            # A quiet gateway's tick journals nothing, so journal from
            # inside the tick via a wrapped idle step — what matters is
            # that record() picks the tick span's trace id up implicitly.
            original = supervisor._step_idle

            def journaling_idle(now):
                supervisor.journal.record("probe", note="from inside tick")
                return original(now)

            monkeypatch.setattr(supervisor, "_step_idle", journaling_idle)
            supervisor.step()
            (entry,) = [
                e for e in supervisor.journal.entries() if e["kind"] == "probe"
            ]
            (tick,) = [
                s for s in obs.get_tracer().ring.spans()
                if s.name == "autopilot.tick"
            ]
            assert entry["trace_id"] == tick.trace_id

    def test_tick_counter_mirrors_ticks(self, ap_world, ap_gateway):
        supervisor = make_supervisor(ap_world, ap_gateway)
        with obs.activated():
            for _ in range(3):
                supervisor.step()
            counter = obs.get_registry().get("repro_autopilot_ticks_total")
            assert counter.value() == 3.0
        assert supervisor.ticks == 3


class TestJournalTraceColumn:
    def test_every_entry_carries_the_column(self, tmp_path):
        journal = DecisionJournal(tmp_path / "journal.jsonl")
        journal.record("start", reason="test")
        with obs.activated():
            with obs.span("autopilot.tick"):
                journal.record("inside")
        rows = DecisionJournal.read(tmp_path / "journal.jsonl")
        assert "trace_id" not in rows[0]  # recorded outside any span
        assert rows[1]["trace_id"]


class TestServeTraffic:
    def test_supervised_gateway_traffic_is_traced(self, ap_world, ap_gateway):
        app, ds, run = ap_world
        store, gateway = ap_gateway
        with obs.activated():
            future = gateway.submit_async(clean_payload(ds.records[0]))
            future.result(timeout=30)
            gateway.drain()
            names = {
                s.name
                for s in obs.get_tracer().ring.trace(future.trace_id)
            }
        assert "gateway.enqueue" in names and "gateway.batch" in names
