"""Unit tests: policy serialization, trigger evaluation, gate checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autopilot import (
    DecisionJournal,
    DriftTrigger,
    HealPolicy,
    PromotionGate,
    RegressionTrigger,
    RetrainPlan,
    evaluate_drift_triggers,
    evaluate_gate,
    evaluate_regression_trigger,
)
from repro.data.record import Record
from repro.data.vocab import Vocab
from repro.errors import AutopilotError
from repro.serve import RequestEvent, TelemetryRing
from repro.training.reports import QualityReport, ReportRow


def report(rows) -> QualityReport:
    return QualityReport(
        rows=[
            ReportRow(tag=tag, task=task, n=n, metrics=metrics)
            for tag, task, n, metrics in rows
        ]
    )


class TestPolicySerialization:
    def test_round_trip(self):
        policy = HealPolicy(
            drift_triggers=(DriftTrigger(payload="tokens", js_threshold=0.2),),
            regression_trigger=RegressionTrigger(
                threshold=0.05, slices=("slice:hard",)
            ),
            min_live_window=10,
            cooldown_s=60.0,
            max_promotions=3,
            gate=PromotionGate(blocking_slices=("slice:hard",)),
        )
        rebuilt = HealPolicy.from_dict(policy.to_dict())
        assert rebuilt == policy

    def test_from_file(self, tmp_path):
        import json

        path = tmp_path / "policy.json"
        path.write_text(json.dumps(HealPolicy().to_dict()))
        assert HealPolicy.from_file(path) == HealPolicy()

    def test_from_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text("[]")
        with pytest.raises(AutopilotError):
            HealPolicy.from_file(path)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_live_window": 0},
            {"cooldown_s": -1.0},
            {"max_promotions": -1},
        ],
    )
    def test_policy_validation(self, kwargs):
        with pytest.raises(AutopilotError):
            HealPolicy(**kwargs)

    def test_gate_validation(self):
        with pytest.raises(AutopilotError):
            PromotionGate(max_disagreement_rate=1.5)
        with pytest.raises(AutopilotError):
            PromotionGate(min_shadow_requests=0)

    def test_trigger_validation(self):
        with pytest.raises(AutopilotError):
            DriftTrigger(js_threshold=-0.1)
        with pytest.raises(AutopilotError):
            RetrainPlan(workers=0)


class TestDriftTriggers:
    def ring_with(self, payloads) -> TelemetryRing:
        ring = TelemetryRing(payload_sample_every=1)
        for payload in payloads:
            ring.record(
                RequestEvent(
                    at=0.0, tier="default", role="stable",
                    latency_s=0.001, batch_size=1,
                ),
                payload=payload,
            )
        return ring

    def reference(self):
        records = [
            Record(payloads={"tokens": ["how", "tall", "is", "everest"]})
            for _ in range(8)
        ]
        vocab = Vocab.build([r.payloads["tokens"] for r in records])
        return records, {"tokens": vocab}

    def test_below_min_window_never_fires(self):
        records, vocabs = self.reference()
        ring = self.ring_with([{"tokens": ["zzz", "qqq"]}] * 5)
        policy = HealPolicy(min_live_window=32)
        assert evaluate_drift_triggers(policy, ring, records, vocabs) == []

    def test_fires_with_evidence(self):
        records, vocabs = self.reference()
        ring = self.ring_with([{"tokens": ["zzz", "qqq"]}] * 20)
        policy = HealPolicy(min_live_window=16)
        events = evaluate_drift_triggers(policy, ring, records, vocabs)
        assert len(events) == 1
        assert events[0].kind == "drift"
        assert events[0].evidence["report"]["drifted"] is True
        assert events[0].evidence["live_window"] == 20

    def test_quiet_traffic_does_not_fire(self):
        records, vocabs = self.reference()
        ring = self.ring_with(
            [{"tokens": ["how", "tall", "is", "everest"]}] * 20
        )
        policy = HealPolicy(min_live_window=16)
        assert evaluate_drift_triggers(policy, ring, records, vocabs) == []

    def test_unknown_vocab_raises(self):
        records, vocabs = self.reference()
        ring = self.ring_with([{"tokens": ["zzz"]}] * 20)
        policy = HealPolicy(
            drift_triggers=(DriftTrigger(payload="query"),), min_live_window=1
        )
        with pytest.raises(AutopilotError):
            evaluate_drift_triggers(policy, ring, records, vocabs)


class TestRegressionTrigger:
    def test_fires_on_watched_slice(self):
        trigger = RegressionTrigger(threshold=0.02, slices=("slice:hard",))
        baseline = report([("slice:hard", "Intent", 50, {"accuracy": 0.9})])
        observed = report([("slice:hard", "Intent", 50, {"accuracy": 0.7})])
        event = evaluate_regression_trigger(trigger, baseline, observed)
        assert event is not None and event.kind == "regression"
        assert "slice:hard" in event.reason

    def test_unwatched_slice_ignored(self):
        trigger = RegressionTrigger(threshold=0.02, slices=("slice:hard",))
        baseline = report([("slice:other", "Intent", 50, {"accuracy": 0.9})])
        observed = report([("slice:other", "Intent", 50, {"accuracy": 0.7})])
        assert evaluate_regression_trigger(trigger, baseline, observed) is None

    def test_no_regression_no_event(self):
        trigger = RegressionTrigger()
        rows = [("overall", "Intent", 50, {"accuracy": 0.9})]
        assert (
            evaluate_regression_trigger(trigger, report(rows), report(rows))
            is None
        )


class TestPromotionGate:
    def gate(self, **kw) -> PromotionGate:
        defaults = dict(
            max_disagreement_rate=0.1,
            min_shadow_requests=10,
            regression_threshold=0.05,
            min_examples=5,
        )
        defaults.update(kw)
        return PromotionGate(**defaults)

    def test_all_checks_pass(self):
        stable = report([("overall", "Intent", 50, {"accuracy": 0.8})])
        candidate = report([("overall", "Intent", 50, {"accuracy": 0.85})])
        result = evaluate_gate(self.gate(), 20, 1, stable, candidate)
        assert result.passed
        assert result.failures() == []

    def test_disagreement_rate_blocks(self):
        stable = report([("overall", "Intent", 50, {"accuracy": 0.8})])
        result = evaluate_gate(self.gate(), 20, 10, stable, stable)
        assert not result.passed
        assert "shadow_disagreement" in result.failures()

    def test_short_window_blocks(self):
        stable = report([("overall", "Intent", 50, {"accuracy": 0.8})])
        result = evaluate_gate(self.gate(), 5, 0, stable, stable)
        assert not result.passed
        assert "shadow_window" in result.failures()

    def test_regression_blocks_everywhere_by_default(self):
        stable = report([("slice:rare", "Intent", 50, {"accuracy": 0.9})])
        candidate = report([("slice:rare", "Intent", 50, {"accuracy": 0.7})])
        result = evaluate_gate(self.gate(), 20, 0, stable, candidate)
        assert not result.passed
        assert "non_regression" in result.failures()

    def test_blocking_slices_restrict_the_gate(self):
        gate = self.gate(blocking_slices=("slice:hard",))
        stable = report(
            [
                ("slice:hard", "Intent", 50, {"accuracy": 0.8}),
                ("slice:rare", "Intent", 50, {"accuracy": 0.9}),
            ]
        )
        candidate = report(
            [
                ("slice:hard", "Intent", 50, {"accuracy": 0.85}),
                ("slice:rare", "Intent", 50, {"accuracy": 0.7}),
            ]
        )
        # slice:rare regressed but is not blocking; slice:hard is covered
        # and improved, so the candidate ships.
        result = evaluate_gate(gate, 20, 0, stable, candidate)
        assert result.passed
        non_reg = [c for c in result.checks if c["name"] == "non_regression"]
        assert non_reg[0]["detail"]["advisory"]

    def test_uncovered_blocking_slice_blocks(self):
        gate = self.gate(blocking_slices=("slice:hard",))
        stable = report([("overall", "Intent", 50, {"accuracy": 0.8})])
        candidate = report([("overall", "Intent", 50, {"accuracy": 0.8})])
        result = evaluate_gate(gate, 20, 0, stable, candidate)
        assert not result.passed
        assert "slice_coverage" in result.failures()


class TestDecisionJournal:
    def test_record_and_read_back(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = DecisionJournal(path)
        journal.record("trigger", reason="drift")
        journal.record("promoted", version="abc")
        assert len(journal) == 2
        assert journal.kinds() == ["trigger", "promoted"]
        assert [e["seq"] for e in journal.entries()] == [1, 2]
        loaded = DecisionJournal.read(path)
        assert [e["kind"] for e in loaded] == ["trigger", "promoted"]
        assert loaded[0]["detail"]["reason"] == "drift"

    def test_tail_and_kind_filter(self):
        journal = DecisionJournal()
        for i in range(5):
            journal.record("tick", i=i)
        journal.record("promoted")
        assert [e["kind"] for e in journal.tail(2)] == ["tick", "promoted"]
        assert len(journal.entries(kind="tick")) == 5

    def test_numpy_values_survive_serialization(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = DecisionJournal(path)
        journal.record(
            "gate", rate=np.float64(0.25), served=np.int64(40), tags={"a", "b"}
        )
        entry = DecisionJournal.read(path)[0]
        assert entry["detail"]["rate"] == 0.25
        assert entry["detail"]["served"] == 40
        assert sorted(entry["detail"]["tags"]) == ["a", "b"]
