"""Shared autopilot fixtures: one trained world, per-test gateways."""

from __future__ import annotations

import pytest

from repro.api import Application
from repro.autopilot import DriftTrigger, HealPolicy, PromotionGate, RetrainPlan
from repro.core import ModelConfig, PayloadConfig, TrainerConfig
from repro.deploy import ModelStore
from repro.serve import GatewayConfig, ReplicaPool, ServingGateway
from repro.workloads.factoid import FactoidGenerator, WorkloadConfig
from repro.workloads.weak_sources import apply_standard_weak_supervision


def ap_config(size: int = 12, epochs: int = 2) -> ModelConfig:
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder="bow", size=size),
            "query": PayloadConfig(size=size),
            "entities": PayloadConfig(size=size),
        },
        trainer=TrainerConfig(epochs=epochs, batch_size=16, lr=0.05),
    )


def lenient_policy(**overrides) -> HealPolicy:
    """A policy tuned so the e2e loop heals deterministically and fast."""
    defaults = dict(
        drift_triggers=(DriftTrigger(js_threshold=0.1, oov_jump_threshold=0.05),),
        min_live_window=16,
        cooldown_s=0.0,
        retrain=RetrainPlan(workers=1, max_live_records=256),
        gate=PromotionGate(
            max_disagreement_rate=1.0,
            min_shadow_requests=16,
            regression_threshold=0.25,
            min_examples=5,
        ),
    )
    defaults.update(overrides)
    return HealPolicy(**defaults)


def clean_payload(record) -> dict:
    return {
        "tokens": list(record.payloads["tokens"]),
        "entities": [dict(m) for m in record.payloads.get("entities") or []],
    }


def drifted_payload(record) -> dict:
    """The same query with every entity surface token mutated (OOV)."""
    payload = clean_payload(record)
    for member in payload["entities"]:
        span = member.get("range") or [0, 1]
        for t in range(span[0], min(span[1], len(payload["tokens"]))):
            payload["tokens"][t] = payload["tokens"][t] + "esque"
    return payload


@pytest.fixture(scope="session")
def ap_world():
    """One labeled dataset + application + trained stable run."""
    ds = FactoidGenerator(WorkloadConfig(n=160, seed=3)).generate()
    apply_standard_weak_supervision(ds.records, seed=3)
    app = Application(ds.schema, name="factoid-qa")
    run = app.fit(ds, ap_config())
    return app, ds, run


@pytest.fixture()
def ap_gateway(ap_world, tmp_path):
    """A fresh store + single-tier gateway serving the stable model."""
    app, ds, run = ap_world
    store = ModelStore(tmp_path / "store")
    run.deploy(store)
    pool = ReplicaPool.from_store(store, app.name)
    gateway = ServingGateway(
        pool,
        GatewayConfig(
            max_batch_size=8, max_wait_s=0.001, payload_sample_every=1
        ),
    )
    yield store, gateway
    gateway.stop()
