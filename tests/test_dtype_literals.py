"""Tier-1 wiring for the dtype-literal lint (tools/check_dtype_literals.py).

The dtype policy only works if nothing re-pins precision with a bare
``np.float64``/``np.float32`` outside ``repro.tensor.backend``; this test
keeps the whole tree clean on every run and pins the lint's own detection
logic with a known-bad snippet.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_dtype_literals import DEFAULT_TARGET, check_tree, violations_in


def test_src_tree_has_no_bare_dtype_literals():
    assert check_tree(DEFAULT_TARGET) == []


def test_lint_catches_bare_literals(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import numpy as np\n"
        "x = np.zeros(3, dtype=np.float64)\n"
        "y = np.float32(1.0)\n"
    )
    found = violations_in(bad)
    assert len(found) == 2
    assert "np.float64" in found[0] and "np.float32" in found[1]


def test_backend_module_is_exempt(tmp_path):
    tree = tmp_path / "tensor"
    tree.mkdir()
    (tree / "backend.py").write_text("import numpy as np\nF = np.float64\n")
    (tree / "other.py").write_text("import numpy as np\nF = np.float64\n")
    problems = check_tree(tmp_path)
    assert len(problems) == 1 and "other.py" in problems[0]
