"""Tests for optimizers, gradient clipping, and LR schedules."""

import numpy as np
import pytest

from repro.nn import Linear, Parameter
from repro.optim import (
    Adam,
    AdamW,
    ConstantSchedule,
    SGD,
    StepDecay,
    WarmupCosine,
    clip_grad_norm,
)
from repro.tensor import Tensor


def quadratic_loss(p: Parameter) -> Tensor:
    """(p - 3)^2 summed — minimum at 3."""
    diff = p - Tensor(np.full(p.shape, 3.0))
    return (diff * diff).sum()


def run_steps(optimizer, p: Parameter, n: int = 200) -> None:
    for _ in range(n):
        optimizer.zero_grad()
        quadratic_loss(p).backward()
        optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        run_steps(SGD([p], lr=0.1), p)
        np.testing.assert_allclose(p.data, np.full(3, 3.0), atol=1e-4)

    def test_momentum_converges(self):
        p = Parameter(np.zeros(3))
        run_steps(SGD([p], lr=0.05, momentum=0.9), p)
        np.testing.assert_allclose(p.data, np.full(3, 3.0), atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        p1 = Parameter(np.zeros(1))
        p2 = Parameter(np.zeros(1))
        run_steps(SGD([p1], lr=0.1), p1)
        run_steps(SGD([p2], lr=0.1, weight_decay=1.0), p2)
        assert p2.data[0] < p1.data[0]

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad: should be a no-op, not crash
        np.testing.assert_allclose(p.data, np.ones(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        run_steps(Adam([p], lr=0.1), p, n=400)
        np.testing.assert_allclose(p.data, np.full(3, 3.0), atol=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_adamw_decoupled_decay(self):
        # With pure decay and zero gradient signal, AdamW shrinks weights
        # geometrically.
        p = Parameter(np.ones(1))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_trains_linear_layer(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 1, rng)
        w_true = np.array([[1.0], [-2.0], [0.5], [3.0]])
        x = rng.normal(size=(64, 4))
        y = x @ w_true
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, w_true, atol=0.05)


class TestClipGradNorm:
    def test_clips_to_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_max(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_handles_missing_grads(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestSchedules:
    def test_constant(self):
        opt = SGD([Parameter(np.zeros(1))], lr=0.5)
        sched = ConstantSchedule(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 0.5

    def test_step_decay(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepDecay(opt, period=2, gamma=0.1)
        sched.step()  # step 1
        assert opt.lr == pytest.approx(1.0)
        sched.step()  # step 2 -> decayed once
        assert opt.lr == pytest.approx(0.1)

    def test_step_decay_validates_period(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepDecay(opt, period=0)

    def test_warmup_cosine_profile(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = WarmupCosine(opt, warmup_steps=10, total_steps=100, min_lr=0.0)
        # During warmup lr rises linearly.
        assert sched.lr_at(5) == pytest.approx(0.5)
        assert sched.lr_at(10) == pytest.approx(1.0)
        # At the end lr reaches min.
        assert sched.lr_at(100) == pytest.approx(0.0, abs=1e-9)
        # Beyond the end it stays clamped.
        assert sched.lr_at(150) == pytest.approx(0.0, abs=1e-9)

    def test_warmup_cosine_validates_lengths(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            WarmupCosine(opt, warmup_steps=10, total_steps=10)
