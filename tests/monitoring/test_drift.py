"""Tests for input-drift detection."""

import numpy as np
import pytest

from repro.data import Vocab
from repro.monitoring import detect_drift, js_divergence

from tests.fixtures import mini_dataset


class TestJSDivergence:
    def test_identical_is_zero(self):
        p = np.array([0.5, 0.3, 0.2])
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_is_ln2(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert js_divergence(p, q) == pytest.approx(np.log(2))

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        p, q = rng.random(5), rng.random(5)
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))

    def test_unnormalized_inputs_accepted(self):
        p = np.array([5.0, 3.0, 2.0])
        q = np.array([50.0, 30.0, 20.0])
        assert js_divergence(p, q) == pytest.approx(0.0, abs=1e-12)


class TestDetectDrift:
    def test_same_distribution_no_drift(self):
        ds = mini_dataset(n=100, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        half = len(ds.records) // 2
        report = detect_drift(ds.records[:half], ds.records[half:], vocab)
        assert not report.drifted()
        assert report.token_js_divergence < 0.1

    def test_vocabulary_shift_detected(self):
        ds = mini_dataset(n=60, seed=1)
        vocab = ds.build_vocabs()["tokens"]
        live = mini_dataset(n=60, seed=2)
        for record in live.records:
            record.payloads["tokens"] = [
                f"{t}_new" for t in record.payloads["tokens"]
            ]
        report = detect_drift(ds.records, live.records, vocab)
        assert report.drifted()
        assert report.oov_rate_live > 0.9
        assert report.novel_token_fraction > 0.9

    def test_length_stats(self):
        ds = mini_dataset(n=30, seed=3)
        vocab = ds.build_vocabs()["tokens"]
        live = mini_dataset(n=30, seed=4)
        for record in live.records:
            record.payloads["tokens"] = record.payloads["tokens"] * 2
        report = detect_drift(ds.records, live.records, vocab)
        assert report.mean_length_live > report.mean_length_reference * 1.5

    def test_empty_windows(self):
        report = detect_drift([], [], Vocab())
        assert report.token_js_divergence == 0.0
        assert not report.drifted()


class TestThresholdFlow:
    """Policy-set thresholds ride on the report instead of the call site."""

    def test_detect_drift_stores_thresholds(self):
        ds = mini_dataset(n=40, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        report = detect_drift(
            ds.records, ds.records, vocab, js_threshold=0.3, oov_threshold=0.2
        )
        assert report.js_threshold == 0.3
        assert report.oov_jump_threshold == 0.2

    def test_stored_thresholds_decide_drifted(self):
        ds = mini_dataset(n=40, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        live = mini_dataset(n=40, seed=5)
        for record in live.records:
            record.payloads["tokens"] = [
                f"{t}_new" for t in record.payloads["tokens"]
            ]
        strict = detect_drift(ds.records, live.records, vocab)
        lax = detect_drift(
            ds.records,
            live.records,
            vocab,
            js_threshold=np.log(2) + 1,
            oov_threshold=1.0,
        )
        assert strict.drifted()
        assert not lax.drifted()
        # Explicit arguments still override the stored thresholds.
        assert lax.drifted(js_threshold=0.01)

    def test_ring_forwards_thresholds(self):
        from repro.serve import RequestEvent, TelemetryRing

        ds = mini_dataset(n=40, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        ring = TelemetryRing(payload_sample_every=1)
        for i in range(10):
            ring.record(
                RequestEvent(
                    at=float(i),
                    tier="default",
                    role="stable",
                    latency_s=0.001,
                    batch_size=1,
                ),
                payload={"tokens": [f"novel_{i}"]},
            )
        report = ring.drift_report(
            ds.records, vocab, js_threshold=0.42, oov_threshold=0.9
        )
        assert report.js_threshold == 0.42
        assert report.oov_jump_threshold == 0.9

    def test_to_dict_is_json_ready(self):
        import json

        ds = mini_dataset(n=20, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        report = detect_drift(ds.records, ds.records, vocab)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["drifted"] is False
        assert payload["oov_jump"] == 0.0


class TestLiveWindows:
    """Serving-shaped windows: a gateway's live sample can be tiny."""

    def test_empty_live_window_against_real_reference(self):
        ds = mini_dataset(n=40, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        report = detect_drift(ds.records, [], vocab)
        assert np.isfinite(report.token_js_divergence)
        assert report.oov_rate_live == 0.0
        assert report.mean_length_live == 0.0
        assert report.novel_token_fraction == 0.0

    def test_single_record_live_window(self):
        ds = mini_dataset(n=40, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        report = detect_drift(ds.records, ds.records[:1], vocab)
        assert np.isfinite(report.token_js_divergence)
        assert report.mean_length_live == len(ds.records[0].payloads["tokens"])
        assert not report.drifted(js_threshold=np.log(2))

    def test_single_novel_record_flags_oov(self):
        ds = mini_dataset(n=40, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        from repro.data import Record

        live = [Record(payloads={"tokens": ["zyx", "wvu"]})]
        report = detect_drift(ds.records, live, vocab)
        assert report.oov_rate_live == 1.0
        assert report.novel_token_fraction == 1.0
        assert report.drifted()


class TestServeTelemetryRoundTrip:
    """The gateway's payload samples must feed straight into a DriftReport."""

    def test_telemetry_ring_to_drift_report(self):
        from repro.monitoring import DriftReport
        from repro.serve import RequestEvent, TelemetryRing

        ds = mini_dataset(n=60, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        ring = TelemetryRing(payload_sample_every=1)
        for i, record in enumerate(ds.records[:30]):
            ring.record(
                RequestEvent(
                    at=float(i),
                    tier="default",
                    role="stable",
                    latency_s=0.001,
                    batch_size=4,
                ),
                payload={"tokens": record.payloads["tokens"]},
            )
        report = ring.drift_report(ds.records, vocab)
        assert isinstance(report, DriftReport)
        # Live traffic drawn from the training distribution: no drift.
        assert not report.drifted()
        assert report.oov_rate_live == 0.0

    def test_drifted_live_traffic_detected_from_telemetry(self):
        from repro.serve import RequestEvent, TelemetryRing

        ds = mini_dataset(n=60, seed=0)
        vocab = ds.build_vocabs()["tokens"]
        ring = TelemetryRing(payload_sample_every=1)
        for i in range(30):
            ring.record(
                RequestEvent(
                    at=float(i),
                    tier="default",
                    role="stable",
                    latency_s=0.001,
                    batch_size=4,
                ),
                payload={"tokens": [f"novel_{i}", f"token_{i}"]},
            )
        report = ring.drift_report(ds.records, vocab)
        assert report.drifted()
        assert report.novel_token_fraction == 1.0
