"""Tests for regression detection and dashboards."""

import pytest

from repro.monitoring import (
    compare_reports,
    format_table,
    render_quality_report,
    render_regressions,
    render_source_accuracies,
)
from repro.training.reports import QualityReport, ReportRow


def report(rows) -> QualityReport:
    return QualityReport(
        rows=[
            ReportRow(tag=tag, task=task, n=n, metrics=metrics)
            for tag, task, n, metrics in rows
        ]
    )


class TestCompareReports:
    def test_detects_regression(self):
        before = report([("slice:a", "Intent", 50, {"accuracy": 0.9})])
        after = report([("slice:a", "Intent", 50, {"accuracy": 0.8})])
        result = compare_reports(before, after)
        assert result.blocking
        assert result.regressions[0].delta == pytest.approx(-0.1)

    def test_detects_improvement(self):
        before = report([("overall", "Intent", 50, {"accuracy": 0.8})])
        after = report([("overall", "Intent", 50, {"accuracy": 0.9})])
        result = compare_reports(before, after)
        assert not result.blocking
        assert len(result.improvements) == 1

    def test_threshold_respected(self):
        before = report([("overall", "Intent", 50, {"accuracy": 0.900})])
        after = report([("overall", "Intent", 50, {"accuracy": 0.895})])
        result = compare_reports(before, after, threshold=0.01)
        assert not result.blocking

    def test_small_slices_skipped(self):
        before = report([("slice:tiny", "Intent", 2, {"accuracy": 1.0})])
        after = report([("slice:tiny", "Intent", 2, {"accuracy": 0.0})])
        result = compare_reports(before, after, min_examples=5)
        assert not result.blocking

    def test_missing_tag_in_after_skipped(self):
        before = report([("slice:gone", "Intent", 50, {"accuracy": 0.9})])
        after = report([])
        assert not compare_reports(before, after).blocking

    def test_missing_slices_surfaced_without_blocking(self):
        before = report(
            [
                ("slice:gone", "Intent", 50, {"accuracy": 0.9}),
                ("overall", "Intent", 50, {"accuracy": 0.9}),
            ]
        )
        after = report(
            [
                ("overall", "Intent", 50, {"accuracy": 0.9}),
                ("slice:new", "Intent", 50, {"accuracy": 0.8}),
            ]
        )
        result = compare_reports(before, after)
        assert result.missing_after == [("slice:gone", "Intent")]
        assert result.missing_before == [("slice:new", "Intent")]
        # A vanished slice is a coverage problem, not a regression.
        assert not result.blocking

    def test_missing_small_slices_ignored(self):
        before = report([("slice:tiny", "Intent", 2, {"accuracy": 0.9})])
        after = report([("slice:other", "Intent", 3, {"accuracy": 0.9})])
        result = compare_reports(before, after, min_examples=5)
        assert result.missing_after == []
        assert result.missing_before == []

    def test_regression_report_to_dict(self):
        import json

        before = report([("slice:a", "Intent", 50, {"accuracy": 0.9})])
        after = report([("slice:a", "Intent", 50, {"accuracy": 0.7})])
        payload = json.loads(json.dumps(compare_reports(before, after).to_dict()))
        assert payload["blocking"] is True
        assert payload["regressions"][0]["tag"] == "slice:a"


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table({"name": ["a", "bb"], "value": [0.5, 1.25]})
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.5000" in text
        assert "1.2500" in text

    def test_empty(self):
        assert format_table({}) == "(empty table)"

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table({"a": [1], "b": [1, 2]})

    def test_max_rows_truncates(self):
        text = format_table({"x": list(range(10))}, max_rows=3)
        assert "7 more rows" in text


class TestRenderers:
    def test_render_quality_report(self):
        text = render_quality_report(
            report([("overall", "Intent", 10, {"accuracy": 0.9})])
        )
        assert "overall" in text
        assert "0.9000" in text

    def test_render_regressions(self):
        before = report([("t", "T", 50, {"accuracy": 0.9})])
        after = report([("t", "T", 50, {"accuracy": 0.5})])
        text = render_regressions(compare_reports(before, after))
        assert "REGRESSIONS" in text
        assert "-0.4" in text

    def test_render_no_regressions(self):
        text = render_regressions(compare_reports(report([]), report([])))
        assert "No regressions" in text

    def test_render_source_accuracies(self):
        text = render_source_accuracies({"crowd": 0.9, "weak1": 0.6})
        assert text.index("crowd") < text.index("weak1")
        assert render_source_accuracies({}) == "(no sources)"


class TestRenderSpans:
    def _spans(self):
        from repro.obs import Span

        return [
            Span("t1", "root", None, "gateway.enqueue", 0.0, 0.010),
            Span("t1", "mid", "root", "gateway.batch", 0.002, 0.009),
            Span("t1", "leaf", "mid", "endpoint.forward", 0.003, 0.008),
        ]

    def test_flame_panel_shape(self):
        from repro.monitoring import render_spans

        text = render_spans(self._spans())
        lines = text.splitlines()
        assert lines[0].startswith("trace t1")
        assert "3 spans" in lines[0]
        # Indentation follows parent depth.
        assert "gateway.enqueue" in lines[1]
        assert "  gateway.batch" in lines[2]
        assert "    endpoint.forward" in lines[3]
        # Every row has a duration and a bar.
        for line in lines[1:]:
            assert "ms" in line and "█" in line

    def test_accepts_dict_spans_from_jsonl(self):
        from repro.monitoring import render_spans

        text = render_spans([s.to_dict() for s in self._spans()])
        assert "gateway.enqueue" in text

    def test_empty_input(self):
        from repro.monitoring import render_spans

        assert render_spans([]) == "(no spans)"

    def test_multiple_traces_header(self):
        from repro.monitoring import render_spans
        from repro.obs import Span

        spans = self._spans() + [Span("t2", "x", None, "other", 0.0, 0.001)]
        assert render_spans(spans).splitlines()[0].startswith("2 traces")
