"""Tests for the tuning spec: validation, expansion, sizes."""

import pytest

from repro.core import ModelConfig, PayloadConfig, TrainerConfig, TuningSpec
from repro.errors import TuningError


class TestValidation:
    def test_unknown_payload_key(self):
        with pytest.raises(TuningError):
            TuningSpec(payload_options={"tokens": {"hidden": [1]}})

    def test_unknown_encoder(self):
        with pytest.raises(TuningError):
            TuningSpec(payload_options={"tokens": {"encoder": ["transformerXL"]}})

    def test_unknown_aggregation(self):
        with pytest.raises(TuningError):
            TuningSpec(payload_options={"query": {"aggregation": ["sum"]}})

    def test_unknown_trainer_key(self):
        with pytest.raises(TuningError):
            TuningSpec(trainer_options={"temperature": [1.0]})

    def test_from_dict_unknown_top_level(self):
        with pytest.raises(TuningError):
            TuningSpec.from_dict({"model": {}})


class TestExpansion:
    def test_empty_spec_yields_default(self):
        configs = TuningSpec().expand()
        assert len(configs) == 1
        assert configs[0].trainer == TrainerConfig()

    def test_grid_size(self):
        spec = TuningSpec(
            payload_options={
                "tokens": {"encoder": ["bow", "lstm"], "size": [16, 32]},
            },
            trainer_options={"lr": [0.01, 0.001]},
        )
        assert spec.size() == 8
        assert len(spec.expand()) == 8

    def test_multi_payload_cross_product(self):
        spec = TuningSpec(
            payload_options={
                "tokens": {"encoder": ["bow", "cnn"]},
                "query": {"aggregation": ["mean", "max"]},
            }
        )
        configs = spec.expand()
        assert len(configs) == 4
        combos = {
            (c.for_payload("tokens").encoder, c.for_payload("query").aggregation)
            for c in configs
        }
        assert combos == {
            ("bow", "mean"),
            ("bow", "max"),
            ("cnn", "mean"),
            ("cnn", "max"),
        }

    def test_for_payload_default(self):
        config = ModelConfig()
        assert config.for_payload("anything") == PayloadConfig()

    def test_expand_applies_trainer_options(self):
        spec = TuningSpec(trainer_options={"epochs": [3], "lr": [0.5]})
        (config,) = spec.expand()
        assert config.trainer.epochs == 3
        assert config.trainer.lr == 0.5


class TestSerialization:
    def test_model_config_roundtrip(self):
        config = ModelConfig(
            payloads={"tokens": PayloadConfig(encoder="lstm", size=64)},
            trainer=TrainerConfig(lr=0.02, epochs=5),
        )
        again = ModelConfig.from_dict(config.to_dict())
        assert again == config

    def test_tuning_spec_roundtrip(self):
        spec = TuningSpec(
            payload_options={"tokens": {"encoder": ["bow"]}},
            trainer_options={"lr": [0.1]},
        )
        again = TuningSpec.from_dict(spec.to_dict())
        assert again.payload_options == spec.payload_options
        assert again.trainer_options == spec.trainer_options

    def test_from_file(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text('{"payloads": {"tokens": {"size": [8]}}, "trainer": {}}')
        spec = TuningSpec.from_file(path)
        assert spec.payload_options["tokens"]["size"] == [8]
