"""Tests for serving signatures."""

import pytest

from repro.core import ServingSignature
from repro.errors import SchemaError

from tests.fixtures import factoid_schema


class TestServingSignature:
    def test_inputs_exclude_derived_payloads(self):
        sig = ServingSignature.from_schema(factoid_schema())
        names = [i.name for i in sig.inputs]
        assert "tokens" in names
        assert "entities" in names
        assert "query" not in names  # derived via base

    def test_outputs_cover_all_tasks(self):
        sig = ServingSignature.from_schema(factoid_schema())
        assert {o.name for o in sig.outputs} == {
            "POS",
            "EntityType",
            "Intent",
            "IntentArg",
        }

    def test_output_granularity(self):
        sig = ServingSignature.from_schema(factoid_schema())
        assert sig.output("POS").granularity == "sequence"
        assert sig.output("Intent").granularity == "singleton"
        assert sig.output("IntentArg").granularity == "set"

    def test_output_classes_preserved(self):
        sig = ServingSignature.from_schema(factoid_schema())
        assert "height" in sig.output("Intent").classes
        assert sig.output("IntentArg").classes == ()

    def test_unknown_output(self):
        sig = ServingSignature.from_schema(factoid_schema())
        with pytest.raises(SchemaError):
            sig.output("nope")

    def test_fingerprint_matches_schema(self):
        schema = factoid_schema()
        sig = ServingSignature.from_schema(schema)
        assert sig.schema_fingerprint == schema.fingerprint()

    def test_json_roundtrip(self):
        sig = ServingSignature.from_schema(factoid_schema())
        again = ServingSignature.from_json(sig.to_json())
        assert again == sig
