"""Tests for payload/task specs, schema validation, and round-trips."""

import pytest

from repro.core import PayloadSpec, Schema, TaskSpec
from repro.errors import SchemaError

from tests.fixtures import factoid_schema


class TestPayloadSpec:
    def test_sequence_requires_max_length(self):
        with pytest.raises(SchemaError):
            PayloadSpec(name="t", type="sequence")

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            PayloadSpec(name="t", type="tensor")

    def test_singleton_needs_base_or_dim(self):
        with pytest.raises(SchemaError):
            PayloadSpec(name="q", type="singleton")

    def test_singleton_base_and_dim_conflict(self):
        with pytest.raises(SchemaError):
            PayloadSpec(name="q", type="singleton", base=("tokens",), dim=4)

    def test_set_requires_range_and_members(self):
        with pytest.raises(SchemaError):
            PayloadSpec(name="e", type="set", max_members=3)
        with pytest.raises(SchemaError):
            PayloadSpec(name="e", type="set", range="tokens")

    def test_from_dict_string_base_promoted(self):
        spec = PayloadSpec.from_dict("q", {"type": "singleton", "base": "tokens"})
        assert spec.base == ("tokens",)

    def test_from_dict_unknown_field(self):
        with pytest.raises(SchemaError):
            PayloadSpec.from_dict("q", {"type": "singleton", "hidden_size": 64})

    def test_from_dict_missing_type(self):
        with pytest.raises(SchemaError):
            PayloadSpec.from_dict("q", {})

    def test_roundtrip(self):
        spec = PayloadSpec.from_dict(
            "e", {"type": "set", "range": "tokens", "max_members": 3, "vocab": "ent"}
        )
        assert PayloadSpec.from_dict("e", spec.to_dict()) == spec


class TestTaskSpec:
    def test_multiclass_needs_two_classes(self):
        with pytest.raises(SchemaError):
            TaskSpec(name="t", payload="q", type="multiclass", classes=("a",))

    def test_bitvector_needs_one_class(self):
        with pytest.raises(SchemaError):
            TaskSpec(name="t", payload="q", type="bitvector")

    def test_duplicate_classes(self):
        with pytest.raises(SchemaError):
            TaskSpec(name="t", payload="q", type="multiclass", classes=("a", "a"))

    def test_select_rejects_classes(self):
        with pytest.raises(SchemaError):
            TaskSpec(name="t", payload="e", type="select", classes=("a", "b"))

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            TaskSpec(name="t", payload="q", type="regress")

    def test_class_index(self):
        t = TaskSpec(name="t", payload="q", type="multiclass", classes=("a", "b"))
        assert t.class_index("b") == 1
        with pytest.raises(SchemaError):
            t.class_index("c")

    def test_from_dict_requires_payload_and_type(self):
        with pytest.raises(SchemaError):
            TaskSpec.from_dict("t", {"type": "multiclass"})
        with pytest.raises(SchemaError):
            TaskSpec.from_dict("t", {"payload": "q"})

    def test_roundtrip(self):
        t = TaskSpec.from_dict(
            "t", {"payload": "q", "type": "multiclass", "classes": ["a", "b"]}
        )
        assert TaskSpec.from_dict("t", t.to_dict()) == t


class TestSchema:
    def test_factoid_schema_valid(self):
        schema = factoid_schema()
        assert schema.payload_names == ["tokens", "query", "entities"]
        assert schema.task_names == ["POS", "EntityType", "Intent", "IntentArg"]

    def test_unknown_payload_reference(self):
        with pytest.raises(SchemaError):
            Schema.from_dict(
                {
                    "payloads": {
                        "query": {"type": "singleton", "base": ["missing"]},
                    },
                    "tasks": {
                        "Intent": {
                            "payload": "query",
                            "type": "multiclass",
                            "classes": ["a", "b"],
                        }
                    },
                }
            )

    def test_task_unknown_payload(self):
        with pytest.raises(SchemaError):
            Schema.from_dict(
                {
                    "payloads": {"tokens": {"type": "sequence", "max_length": 4}},
                    "tasks": {
                        "T": {
                            "payload": "ghost",
                            "type": "multiclass",
                            "classes": ["a", "b"],
                        }
                    },
                }
            )

    def test_select_requires_set_payload(self):
        with pytest.raises(SchemaError):
            Schema.from_dict(
                {
                    "payloads": {"tokens": {"type": "sequence", "max_length": 4}},
                    "tasks": {"Sel": {"payload": "tokens", "type": "select"}},
                }
            )

    def test_range_must_be_sequence(self):
        with pytest.raises(SchemaError):
            Schema.from_dict(
                {
                    "payloads": {
                        "feat": {"type": "singleton", "dim": 3},
                        "ents": {"type": "set", "range": "feat", "max_members": 2},
                    },
                    "tasks": {"Sel": {"payload": "ents", "type": "select"}},
                }
            )

    def test_cycle_detected(self):
        with pytest.raises(SchemaError, match="cycle"):
            Schema.from_dict(
                {
                    "payloads": {
                        "a": {"type": "singleton", "base": ["b"]},
                        "b": {"type": "singleton", "base": ["a"]},
                    },
                    "tasks": {
                        "T": {"payload": "a", "type": "multiclass", "classes": ["x", "y"]}
                    },
                }
            )

    def test_needs_a_task(self):
        with pytest.raises(SchemaError):
            Schema.from_dict(
                {"payloads": {"t": {"type": "sequence", "max_length": 4}}, "tasks": {}}
            )

    def test_topological_order_respects_references(self):
        schema = factoid_schema()
        order = [p.name for p in schema.topological_payload_order()]
        assert order.index("tokens") < order.index("query")
        assert order.index("tokens") < order.index("entities")

    def test_json_roundtrip(self):
        schema = factoid_schema()
        again = Schema.from_json(schema.to_json())
        assert again == schema

    def test_fingerprint_stable_and_sensitive(self):
        a = factoid_schema()
        b = factoid_schema()
        assert a.fingerprint() == b.fingerprint()
        modified = Schema.from_dict(
            {
                "payloads": {"tokens": {"type": "sequence", "max_length": 99}},
                "tasks": {
                    "POS": {
                        "payload": "tokens",
                        "type": "multiclass",
                        "classes": ["a", "b"],
                    }
                },
            }
        )
        assert modified.fingerprint() != a.fingerprint()

    def test_file_roundtrip(self, tmp_path):
        schema = factoid_schema()
        path = tmp_path / "schema.json"
        schema.save(path)
        assert Schema.from_file(path) == schema

    def test_invalid_json_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_json("{not json")

    def test_unknown_top_level_field(self):
        with pytest.raises(SchemaError):
            Schema.from_dict({"payloads": {}, "tasks": {}, "hyperparams": {}})

    def test_lookup_errors(self):
        schema = factoid_schema()
        with pytest.raises(SchemaError):
            schema.payload("nope")
        with pytest.raises(SchemaError):
            schema.task("nope")
