"""Tests for application-level constraints (the paper's future work)."""

import numpy as np
import pytest

from repro.core import (
    Constraint,
    ConstraintError,
    ConstraintSet,
    intent_argument_compatibility,
)


def parity_constraint(weight=5.0):
    """Toy constraint: tasks A and B must pick the same index."""
    return Constraint(
        name="parity",
        tasks=("A", "B"),
        check=lambda a, ctx: a.get("A") == a.get("B"),
        weight=weight,
    )


class TestConstraintDefinition:
    def test_requires_tasks(self):
        with pytest.raises(ConstraintError):
            Constraint(name="x", tasks=(), check=lambda a, c: True)

    def test_requires_positive_weight(self):
        with pytest.raises(ConstraintError):
            Constraint(name="x", tasks=("A",), check=lambda a, c: True, weight=0)

    def test_duplicate_names_rejected(self):
        cs = ConstraintSet([parity_constraint()])
        with pytest.raises(ConstraintError):
            cs.add(parity_constraint())
        assert len(cs) == 1

    def test_constrained_tasks_deduped(self):
        cs = ConstraintSet(
            [
                parity_constraint(),
                Constraint(name="other", tasks=("B", "C"), check=lambda a, c: True),
            ]
        )
        assert cs.constrained_tasks() == ["A", "B", "C"]


class TestJointDecode:
    def test_no_constraints_returns_argmax(self):
        cs = ConstraintSet()
        result = cs.decode({"A": np.array([0.1, 0.9])})
        assert result.assignment == {"A": 1}

    def test_violation_flipped_when_cheap(self):
        # Independent argmaxes disagree (A->1, B->0) but flipping B to 1
        # costs little probability and saves the big penalty.
        cs = ConstraintSet([parity_constraint(weight=10.0)])
        result = cs.decode(
            {
                "A": np.array([0.05, 0.95]),
                "B": np.array([0.55, 0.45]),
            }
        )
        assert result.assignment == {"A": 1, "B": 1}
        assert result.violations == []
        assert result.changed == {"B": (0, 1)}

    def test_violation_kept_when_expensive(self):
        # With a tiny weight, paying the penalty beats moving probability.
        cs = ConstraintSet([parity_constraint(weight=0.01)])
        result = cs.decode(
            {
                "A": np.array([0.01, 0.99]),
                "B": np.array([0.99, 0.01]),
            }
        )
        assert result.assignment == {"A": 1, "B": 0}
        assert result.violations == ["parity"]

    def test_unconstrained_task_untouched(self):
        cs = ConstraintSet([parity_constraint(weight=10.0)])
        result = cs.decode(
            {
                "A": np.array([0.4, 0.6]),
                "B": np.array([0.6, 0.4]),
                "C": np.array([0.2, 0.8]),
            }
        )
        assert result.assignment["C"] == 1

    def test_top_k_bounds_search(self):
        # Weight 10: large enough to matter, small enough that the decoder
        # will not jump to a ~zero-probability option just to satisfy it.
        cs = ConstraintSet([parity_constraint(weight=10.0)])
        # The consistent option for B is its 3rd choice; top_k=2 can't see it.
        dists = {
            "A": np.array([0.0, 0.0, 1.0]),
            "B": np.array([0.5, 0.4, 0.1]),
        }
        shallow = cs.decode(dists, top_k=2)
        assert shallow.violations == ["parity"]
        deep = cs.decode(dists, top_k=3)
        assert deep.violations == []
        assert deep.assignment["B"] == 2

    def test_invalid_top_k(self):
        with pytest.raises(ConstraintError):
            ConstraintSet([parity_constraint()]).decode({"A": np.ones(2)}, top_k=0)

    def test_violation_rate(self):
        cs = ConstraintSet([parity_constraint()])
        examples = [
            {"A": np.array([0.9, 0.1]), "B": np.array([0.9, 0.1])},  # consistent
            {"A": np.array([0.9, 0.1]), "B": np.array([0.1, 0.9])},  # violated
        ]
        assert cs.violation_rate(examples) == 0.5
        assert cs.violation_rate([]) == 0.0


class TestIntentArgumentCompatibility:
    def make(self):
        categories = {"ctx1": ["person", "country"]}

        def lookup(context, idx):
            cats = categories.get(context)
            if cats is None or idx >= len(cats):
                return None
            return cats[idx]

        return intent_argument_compatibility(
            intent_classes=["height", "capital"],
            candidate_categories_of=lookup,
            intent_category={"height": ("person",), "capital": ("country",)},
        )

    def test_compatible_passes(self):
        c = self.make()
        assert c.check({"Intent": 0, "IntentArg": 0}, "ctx1")  # height/person
        assert c.check({"Intent": 1, "IntentArg": 1}, "ctx1")  # capital/country

    def test_incompatible_fails(self):
        c = self.make()
        assert not c.check({"Intent": 0, "IntentArg": 1}, "ctx1")  # height/country

    def test_unknown_candidate_passes(self):
        c = self.make()
        assert c.check({"Intent": 0, "IntentArg": 9}, "ctx1")

    def test_missing_tasks_pass(self):
        c = self.make()
        assert c.check({"Intent": 0}, "ctx1")

    def test_joint_decode_fixes_incompatible_pair(self):
        c = self.make()
        cs = ConstraintSet([c])
        # Model slightly prefers an incompatible pair.
        result = cs.decode(
            {
                "Intent": np.array([0.55, 0.45]),  # height
                "IntentArg": np.array([0.45, 0.55]),  # country (incompatible)
            },
            context="ctx1",
        )
        intent, arg = result.assignment["Intent"], result.assignment["IntentArg"]
        assert (intent, arg) in {(0, 0), (1, 1)}  # a compatible pair
        assert result.violations == []
