"""End-to-end tests for the Overton facade (the Figure 1 loop)."""

import numpy as np
import pytest

from repro import (
    ModelConfig,
    ModelStore,
    Overton,
    PayloadConfig,
    Predictor,
    SliceSet,
    SliceSpec,
    TrainerConfig,
    TuningSpec,
)
from repro.errors import TrainingError

from tests.fixtures import factoid_schema, mini_dataset


def fast_config(**kwargs) -> ModelConfig:
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder="bow", size=16),
            "query": PayloadConfig(size=16),
            "entities": PayloadConfig(size=16),
        },
        trainer=TrainerConfig(epochs=4, batch_size=16, lr=0.05, **kwargs),
    )


class TestTrainEvaluate:
    def test_full_loop(self):
        ds = mini_dataset(n=80, seed=0)
        overton = Overton(factoid_schema())
        trained = overton.train(ds, fast_config())
        evals = overton.evaluate(trained, ds, tag="test")
        assert evals["Intent"].metrics["accuracy"] > 0.8
        # Supervision metadata is surfaced for monitoring.
        assert "weak_a" in trained.supervision["Intent"].source_accuracies

    def test_gold_excluded_from_training(self):
        ds = mini_dataset(n=40, seed=1)
        overton = Overton(factoid_schema())
        targets, combined = overton.combine(ds.records)
        # Intent has weak sources; gold must not appear among them.
        assert "gold" not in combined["Intent"].source_accuracies

    def test_gold_only_task_still_trains(self):
        # POS/EntityType/IntentArg in mini_dataset have only gold labels;
        # combine() falls back to using them rather than failing.
        ds = mini_dataset(n=20, seed=2)
        overton = Overton(factoid_schema())
        targets, _ = overton.combine(ds.records)
        assert targets["POS"].weights.sum() > 0

    def test_no_train_tag_rejected(self):
        ds = mini_dataset(n=10, seed=3)
        for r in ds.records:
            r.tags = ["test"]
        overton = Overton(factoid_schema())
        with pytest.raises(TrainingError, match="train"):
            overton.train(ds, fast_config())

    def test_report_includes_slices(self):
        ds = mini_dataset(n=40, seed=4)
        slices = SliceSet(
            [SliceSpec(name="short", predicate=lambda r: len(r.payloads["tokens"]) <= 5)]
        )
        overton = Overton(factoid_schema(), slices=slices)
        trained = overton.train(ds, fast_config())
        report = overton.report(trained, ds)
        tags = {r.tag for r in report.rows}
        assert "slice:short" in tags

    def test_majority_method(self):
        ds = mini_dataset(n=30, seed=5)
        overton = Overton(factoid_schema())
        trained = overton.train(ds, fast_config(), method="majority")
        assert trained.supervision["Intent"].method == "majority"


class TestTune:
    def test_grid_search_over_encoders(self):
        ds = mini_dataset(n=40, seed=6)
        overton = Overton(factoid_schema())
        spec = TuningSpec(
            payload_options={"tokens": {"encoder": ["bow"], "size": [8, 16]}},
            trainer_options={"epochs": [2], "lr": [0.05]},
        )
        trained, result = overton.tune(ds, spec, strategy="grid")
        assert result.num_trials == 2
        assert trained.model is not None
        assert result.best_score >= max(
            t.score for t in result.trials
        ) - 1e-12

    def test_random_strategy(self):
        ds = mini_dataset(n=30, seed=7)
        overton = Overton(factoid_schema())
        spec = TuningSpec(
            payload_options={"tokens": {"size": [8, 16, 32]}},
            trainer_options={"epochs": [1]},
        )
        _, result = overton.tune(ds, spec, strategy="random", num_trials=2)
        assert result.num_trials == 2

    def test_unknown_strategy(self):
        ds = mini_dataset(n=20, seed=8)
        overton = Overton(factoid_schema())
        with pytest.raises(TrainingError):
            overton.tune(ds, TuningSpec(), strategy="bayesian")

    def test_tune_requires_dev(self):
        ds = mini_dataset(n=20, seed=9)
        for r in ds.records:
            r.tags = ["train"]
        overton = Overton(factoid_schema())
        with pytest.raises(TrainingError, match="dev"):
            overton.tune(ds, TuningSpec())


class TestDeploy:
    def test_train_deploy_serve(self, tmp_path):
        ds = mini_dataset(n=60, seed=10)
        overton = Overton(factoid_schema())
        trained = overton.train(ds, fast_config())
        store = ModelStore(tmp_path / "store")
        version = overton.deploy(trained, store, "factoid-qa", metrics={"acc": 0.9})
        assert version.metadata["metrics"]["acc"] == 0.9
        assert version.metadata["data_fingerprint"] == trained.train_fingerprint

        # Serving uses only the artifact — the model-independence contract.
        predictor = Predictor(store.fetch("factoid-qa"))
        response = predictor.predict_one(
            {
                "tokens": ["kw_00_0", "kw_00_1", "ent00", "w0001"],
                "entities": [{"id": "ent00", "range": [2, 3]}],
            }
        )
        assert response["Intent"]["label"] == "height"

    def test_artifact_metadata_has_fingerprint(self):
        ds = mini_dataset(n=20, seed=11)
        overton = Overton(factoid_schema())
        trained = overton.train(ds, fast_config())
        artifact = overton.build_artifact(trained)
        assert artifact.metadata["data_fingerprint"] == trained.train_fingerprint
