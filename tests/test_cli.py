"""Tests for the CLI entry points."""

import json

import pytest

from repro.cli import main

from tests.fixtures import factoid_schema, mini_dataset


@pytest.fixture()
def project(tmp_path):
    """A schema file + data file on disk, like a real engineer's project."""
    ds = mini_dataset(n=40, seed=0)
    schema_path = tmp_path / "schema.json"
    data_path = tmp_path / "data.jsonl"
    ds.schema.save(schema_path)
    ds.save(data_path)
    return {"schema": str(schema_path), "data": str(data_path), "tmp": tmp_path}


class TestValidate:
    def test_ok(self, project, capsys):
        code = main(["validate", "--schema", project["schema"], "--data", project["data"]])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK: 40 records" in out
        assert "Intent" in out

    def test_bad_data_returns_error(self, project, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"payloads": {}, "tasks": {"Ghost": {"s": 1}}}\n')
        code = main(["validate", "--schema", project["schema"], "--data", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTrainReportPredict:
    def test_full_cli_loop(self, project, capsys):
        artifact_dir = str(project["tmp"] / "artifact")
        code = main(
            [
                "train",
                "--schema", project["schema"],
                "--data", project["data"],
                "--out", artifact_dir,
                "--epochs", "2",
                "--size", "8",
            ]
        )
        assert code == 0
        assert "artifact written" in capsys.readouterr().out

        code = main(
            ["report", "--artifact", artifact_dir, "--data", project["data"], "--tags", "test"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

        request = project["tmp"] / "request.json"
        request.write_text(
            json.dumps(
                {
                    "tokens": ["how", "tall", "is", "paris"],
                    "entities": [{"id": "paris", "range": [3, 4]}],
                }
            )
        )
        code = main(["predict", "--artifact", artifact_dir, "--request", str(request)])
        assert code == 0
        response = json.loads(capsys.readouterr().out.strip())
        assert "Intent" in response

    def test_predict_batch_request(self, project, capsys):
        artifact_dir = str(project["tmp"] / "artifact2")
        main(
            [
                "train",
                "--schema", project["schema"],
                "--data", project["data"],
                "--out", artifact_dir,
                "--epochs", "1",
                "--size", "8",
            ]
        )
        capsys.readouterr()
        request = project["tmp"] / "batch.json"
        request.write_text(
            json.dumps([{"tokens": ["how", "old", "is", "obama"]}] * 2)
        )
        code = main(["predict", "--artifact", artifact_dir, "--request", str(request)])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2


class TestTune:
    @pytest.fixture()
    def tuning_spec(self, project):
        spec_path = project["tmp"] / "tuning.json"
        spec_path.write_text(
            json.dumps(
                {
                    "payloads": {"tokens": {"encoder": ["bow", "cnn"]}},
                    "trainer": {"epochs": [2]},
                }
            )
        )
        return str(spec_path)

    def test_tune_prints_best_and_coverage(self, project, tuning_spec, capsys):
        artifact_dir = str(project["tmp"] / "tuned")
        code = main(
            [
                "tune",
                "--schema", project["schema"],
                "--data", project["data"],
                "--spec", tuning_spec,
                "--out", artifact_dir,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "evaluated 2 trials" in out
        assert "best dev score" in out
        assert "tokens.encoder" in out  # coverage report
        assert "coverage: 100%" in out
        assert (project["tmp"] / "tuned" / "model.json").exists() or any(
            (project["tmp"] / "tuned").iterdir()
        )

    def test_tune_workers_and_cache_resume(self, project, tuning_spec, capsys):
        cache_dir = str(project["tmp"] / "trial-cache")
        argv = [
            "tune",
            "--schema", project["schema"],
            "--data", project["data"],
            "--spec", tuning_spec,
            "--workers", "2",
            "--cache-dir", cache_dir,
            "--no-coverage",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 trained, 0 from cache" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 trained, 2 from cache" in second
        # Same search, same winner, trials skipped the second time.
        assert first.splitlines()[1] == second.splitlines()[1]

    def test_tune_requires_spec_file(self, project, capsys):
        code = main(
            [
                "tune",
                "--schema", project["schema"],
                "--data", project["data"],
                "--spec", str(project["tmp"] / "missing.json"),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_tune_rejects_malformed_spec_json(self, project, capsys):
        bad = project["tmp"] / "broken.json"
        bad.write_text("{not json")
        code = main(
            [
                "tune",
                "--schema", project["schema"],
                "--data", project["data"],
                "--spec", str(bad),
            ]
        )
        assert code == 1
        assert "cannot read tuning spec" in capsys.readouterr().err


class TestServe:
    def test_serve_artifact_until_deadline(self, project, capsys):
        artifact_dir = str(project["tmp"] / "serve-artifact")
        main(
            [
                "train",
                "--schema", project["schema"],
                "--data", project["data"],
                "--out", artifact_dir,
                "--epochs", "1",
                "--size", "8",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "serve",
                "--artifact", artifact_dir,
                "--port", "0",
                "--poll-seconds", "0",
                "--max-seconds", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving" in out and "http://" in out
        assert "POST /predict" in out
        assert "requests: 0" in out  # the final dashboard rendered

    def test_serve_from_store(self, project, capsys):
        """The --store/--model path (what production rollout uses)."""
        artifact_dir = str(project["tmp"] / "store-artifact")
        main(
            [
                "train",
                "--schema", project["schema"],
                "--data", project["data"],
                "--out", artifact_dir,
                "--epochs", "1",
                "--size", "8",
            ]
        )
        from repro.deploy import ModelArtifact, ModelStore

        store = ModelStore(project["tmp"] / "store")
        store.push("factoid-qa", ModelArtifact.load(artifact_dir))
        capsys.readouterr()
        code = main(
            [
                "serve",
                "--store", str(project["tmp"] / "store"),
                "--model", "factoid-qa",
                "--port", "0",
                "--poll-seconds", "0.1",
                "--max-seconds", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving default@" in out

    def test_serve_requires_a_model_source(self, capsys):
        code = main(["serve", "--port", "0"])
        assert code == 1
        assert "--artifact" in capsys.readouterr().err


class TestQuery:
    def test_tag_count(self, project, capsys):
        code = main(
            ["query", "--schema", project["schema"], "--data", project["data"], "--tag", "train"]
        )
        assert code == 0
        assert "records match" in capsys.readouterr().out

    def test_label_distribution(self, project, capsys):
        code = main(
            [
                "query",
                "--schema", project["schema"],
                "--data", project["data"],
                "--task", "Intent",
                "--source", "gold",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "label distribution" in out

    def test_conflicting_and_show(self, project, capsys):
        code = main(
            [
                "query",
                "--schema", project["schema"],
                "--data", project["data"],
                "--conflicting", "Intent",
                "--show", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "payloads" in out


class TestObs:
    @pytest.fixture()
    def obs_server(self):
        """A stub gateway HTTP server exposing /metrics and /trace/<id>."""
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        metrics_text = (
            "# HELP repro_gateway_requests_total Requests\n"
            "# TYPE repro_gateway_requests_total counter\n"
            'repro_gateway_requests_total{tier="default"} 7\n'
        )
        trace_body = {
            "trace_id": "0xabc",
            "spans": [
                {
                    "trace_id": "0xabc", "span_id": "s1", "parent_id": None,
                    "name": "gateway.enqueue", "start_s": 0.0, "end_s": 0.01,
                    "duration_s": 0.01, "attrs": {},
                }
            ],
        }

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # noqa: A002
                pass

            def do_GET(self):  # noqa: N802
                if self.path == "/metrics":
                    data, code = metrics_text.encode(), 200
                elif self.path == "/trace/0xabc":
                    data, code = json.dumps(trace_body).encode(), 200
                else:
                    data, code = b'{"error": "nope"}', 404
                self.send_response(code)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

        server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{server.server_address[1]}"
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()

    def test_metrics_passthrough(self, obs_server, capsys):
        code = main(["obs", "--url", obs_server, "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert 'repro_gateway_requests_total{tier="default"} 7' in out

    def test_trace_renders_flame_panel(self, obs_server, capsys):
        code = main(["obs", "--url", obs_server, "--trace", "0xabc"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace 0xabc" in out and "gateway.enqueue" in out

    def test_unknown_trace_is_an_error(self, obs_server, capsys):
        code = main(["obs", "--url", obs_server, "--trace", "0xmissing"])
        assert code != 0
        assert "404" in capsys.readouterr().err

    def test_tail_prints_journal_entries(self, tmp_path, capsys):
        from repro.autopilot import DecisionJournal

        journal = DecisionJournal(tmp_path / "journal.jsonl")
        for i in range(5):
            journal.record("tick", index=i)
        code = main(
            ["obs", "--tail", str(tmp_path / "journal.jsonl"), "-n", "2"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert [json.loads(l)["detail"]["index"] for l in lines] == [3, 4]

    def test_no_action_is_an_error(self, capsys):
        code = main(["obs"])
        assert code != 0
        assert "nothing to do" in capsys.readouterr().err


class TestSynth:
    def test_list_names_every_workload(self, capsys):
        code = main(["synth", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("factoid", "synth-easy", "synth-drift-storm"):
            assert name in out

    def test_inspect_preset_prints_spec_and_difficulty(self, capsys):
        code = main(["synth", "--preset", "synth-medium", "--inspect"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out
        assert "predicted difficulty" in out
        assert '"label_noise": 0.2' in out

    def test_export_and_materialize_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        data_path = tmp_path / "data.jsonl"
        schema_path = tmp_path / "schema.json"
        code = main(
            [
                "synth",
                "--preset",
                "synth-easy",
                "--scale",
                "30",
                "--out",
                str(spec_path),
                "--materialize",
                str(data_path),
                "--schema-out",
                str(schema_path),
            ]
        )
        assert code == 0
        assert "30 records written" in capsys.readouterr().out
        # The materialized dataset validates against its own schema ...
        code = main(
            ["validate", "--schema", str(schema_path), "--data", str(data_path)]
        )
        assert code == 0
        # ... and the exported spec regenerates the identical file.
        from repro.workloads.synth import SynthGenerator, WorkloadSpec

        spec = WorkloadSpec.from_file(spec_path)
        regen = tmp_path / "regen.jsonl"
        SynthGenerator(spec).write_jsonl(regen, spec.n)
        assert regen.read_text() == data_path.read_text()

    def test_unknown_preset_is_an_error(self, capsys):
        code = main(["synth", "--preset", "synth-imaginary"])
        assert code != 0
        assert "unknown preset" in capsys.readouterr().err

    def test_no_action_defaults_to_inspect(self, capsys):
        code = main(["synth", "--preset", "synth-hard", "--scale", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert '"n": 20' in out
        assert "record 0 payload tokens:" in out
