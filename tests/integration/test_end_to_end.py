"""Integration tests: full system loops across subsystems."""

import numpy as np
import pytest

from repro import (
    Dataset,
    ModelConfig,
    ModelStore,
    Overton,
    PayloadConfig,
    Predictor,
    SliceSet,
    SliceSpec,
    TrainerConfig,
)
from repro.deploy import VersionLog, check_pair, push_pair
from repro.monitoring import compare_reports
from repro.supervision import LFApplier, labeling_function
from repro.workloads import (
    FactoidGenerator,
    HARD_DISAMBIGUATION_SLICE,
    WorkloadConfig,
    apply_standard_weak_supervision,
    compatibility_intent_arg_source,
)


def fast_config(size=16, epochs=5) -> ModelConfig:
    return ModelConfig(
        payloads={
            "tokens": PayloadConfig(encoder="bow", size=size),
            "query": PayloadConfig(size=size),
            "entities": PayloadConfig(size=size),
        },
        trainer=TrainerConfig(epochs=epochs, batch_size=32, lr=0.05),
    )


@pytest.fixture(scope="module")
def workload():
    dataset = FactoidGenerator(WorkloadConfig(n=400, seed=21)).generate()
    apply_standard_weak_supervision(dataset.records, seed=21)
    return dataset


class TestTrainDeployServe:
    def test_full_loop_through_store(self, workload, tmp_path):
        overton = Overton(workload.schema)
        trained = overton.train(workload, fast_config())
        store = ModelStore(tmp_path / "store")
        overton.deploy(trained, store, "qa")

        predictor = Predictor(store.fetch("qa"))
        test_records = workload.split("test").records[:20]
        correct = 0
        for record in test_records:
            response = predictor.predict_one(
                {
                    "tokens": record.payloads["tokens"],
                    "entities": record.payloads["entities"],
                }
            )
            correct += int(
                response["Intent"]["label"] == record.label_from("Intent", "gold")
            )
        assert correct / len(test_records) > 0.7

    def test_served_predictions_match_trained_model(self, workload, tmp_path):
        """Serialize -> store -> fetch -> serve must be prediction-identical."""
        from repro.data import encode_inputs

        overton = Overton(workload.schema)
        trained = overton.train(workload, fast_config())
        store = ModelStore(tmp_path / "store")
        overton.deploy(trained, store, "qa")
        predictor = Predictor(store.fetch("qa"))

        records = workload.split("test").records[:10]
        batch = encode_inputs(records, workload.schema, trained.vocabs)
        direct = trained.model.predict(batch)["Intent"].predictions
        served = [
            predictor.predict_one(
                {"tokens": r.payloads["tokens"], "entities": r.payloads["entities"]}
            )["Intent"]["label"]
            for r in records
        ]
        classes = workload.schema.task("Intent").classes
        np.testing.assert_array_equal(direct, [classes.index(s) for s in served])


class TestEngineerLoop:
    def test_slice_fix_improves_and_passes_gate(self, tmp_path):
        dataset = FactoidGenerator(
            WorkloadConfig(n=500, seed=22, hard_fraction=0.25)
        ).generate()
        apply_standard_weak_supervision(dataset.records, seed=22)
        for record in dataset.records:
            record.tasks.get("IntentArg", {}).pop("lf_compatible", None)

        slices = SliceSet([SliceSpec(name=HARD_DISAMBIGUATION_SLICE)])
        overton = Overton(dataset.schema, slices=slices)
        tag = f"slice:{HARD_DISAMBIGUATION_SLICE}"

        before_model = overton.train(dataset, fast_config(epochs=6))
        before = overton.report(before_model, dataset, tags=["test", tag])

        compatibility_intent_arg_source(dataset.records)
        after_model = overton.train(dataset, fast_config(epochs=6))
        after = overton.report(after_model, dataset, tags=["test", tag])

        improvement = after.metric(tag, "IntentArg", "accuracy") - before.metric(
            tag, "IntentArg", "accuracy"
        )
        assert improvement > 0.4

        gate = compare_reports(before, after, threshold=0.05, metrics=("accuracy",))
        assert not gate.blocking

    def test_labeling_functions_feed_label_model(self, workload):
        @labeling_function(task="Intent", name="lf_integration", kind="heuristic")
        def lf(record):
            tokens = record.payloads.get("tokens") or []
            return "capital" if "capital" in tokens else None

        LFApplier([lf]).apply(workload.records)
        overton = Overton(workload.schema)
        targets, combined = overton.combine(workload.records)
        assert "lf_integration" in combined["Intent"].source_accuracies
        # A precise keyword heuristic should be rated highly.
        assert combined["Intent"].source_accuracies["lf_integration"] > 0.8


class TestSchemaSharing:
    def test_same_schema_two_locales(self):
        """§2.1: 'the same schema is shared in multiple locales and
        applications, only the supervision differs.'  Two datasets with
        disjoint vocabularies compile and train against one schema."""
        schema = FactoidGenerator(WorkloadConfig(n=1)).schema

        def localized(seed: int, suffix: str) -> Dataset:
            ds = FactoidGenerator(WorkloadConfig(n=200, seed=seed)).generate()
            apply_standard_weak_supervision(ds.records, seed=seed)
            for record in ds.records:
                record.payloads["tokens"] = [
                    f"{t}_{suffix}" for t in record.payloads["tokens"]
                ]
                if "query" in record.payloads:
                    record.payloads["query"] = " ".join(record.payloads["tokens"])
            return Dataset(schema, ds.records, validate=False)

        for seed, locale in ((31, "en"), (32, "fr")):
            dataset = localized(seed, locale)
            overton = Overton(schema)
            trained = overton.train(dataset, fast_config(epochs=4))
            evals = overton.evaluate(trained, dataset, tag="test")
            assert evals["Intent"].metrics["accuracy"] > 0.5, locale


class TestSyncAndVersioning:
    def test_pair_lifecycle(self, workload, tmp_path):
        overton = Overton(workload.schema)
        large = overton.train(workload, fast_config(size=32, epochs=4))
        small = overton.train(workload, fast_config(size=8, epochs=4))
        store = ModelStore(tmp_path / "store")
        pushed = push_pair(
            store,
            "qa",
            overton.build_artifact(large),
            overton.build_artifact(small),
        )
        check = check_pair(store, "qa")
        assert check.in_sync

        log = VersionLog(store, "qa/small")
        v1 = log.record(pushed.small.version)
        log.release(v1.semver)
        assert store.latest_version("qa/small") == pushed.small.version
