"""Smoke tests: the shipped examples must keep running.

Only the two fastest examples run in the unit suite; the *full* set runs
when ``REPRO_SMOKE=1`` is set (CI's smoke job, or ``python
tools/smoke_examples.py``).  Each example executes in a subprocess with
``PYTHONPATH=src``, exactly as a user would run it from a checkout.
"""

import importlib.util
import os
import subprocess
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = ROOT / "examples"

# The one subprocess-with-PYTHONPATH runner lives in the smoke tool; import
# it from there so the launch recipe cannot diverge between CI and the tool.
_spec = importlib.util.spec_from_file_location(
    "smoke_examples", ROOT / "tools" / "smoke_examples.py"
)
smoke_examples = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(smoke_examples)

EXPECTED_EXAMPLES = {
    "quickstart.py",
    "factoid_qa.py",
    "cold_start.py",
    "slice_improvement.py",
    "model_sync.py",
    "constrained_serving.py",
    "serving_gateway.py",
    "parallel_tuning.py",
}


def run_example(name: str) -> subprocess.CompletedProcess:
    return smoke_examples.run_subprocess(EXAMPLES_DIR / name, timeout=300)


@pytest.mark.parametrize("name", ["quickstart.py", "cold_start.py"])
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # examples narrate what they do


def test_quickstart_reports_serving_response():
    result = run_example("quickstart.py")
    assert "serving response" in result.stdout
    assert "Intent" in result.stdout


@pytest.mark.skipif(
    not os.environ.get("REPRO_SMOKE"),
    reason="full example smoke suite; set REPRO_SMOKE=1 to run every example",
)
@pytest.mark.parametrize("name", sorted(EXPECTED_EXAMPLES))
def test_example_smoke_full(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout


def test_all_examples_exist_and_have_docstrings():
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert EXPECTED_EXAMPLES <= found
    for name in EXPECTED_EXAMPLES:
        text = (EXAMPLES_DIR / name).read_text()
        assert text.startswith('"""'), f"{name} needs a module docstring"
        assert "def main()" in text


def test_examples_use_the_lifecycle_api():
    """Shipped examples demonstrate repro.api, not the deprecated facades."""
    for name in EXPECTED_EXAMPLES:
        text = (EXAMPLES_DIR / name).read_text()
        assert "repro.api" in text, f"{name} should import from repro.api"
        assert "Overton(" not in text, f"{name} still uses the legacy Overton facade"
        assert "Predictor(" not in text, f"{name} still uses the legacy Predictor"
