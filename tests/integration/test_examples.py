"""Smoke tests: the shipped examples must keep running.

Only the two fastest examples run in the unit suite (the full set runs in
the benchmark/docs pipeline); each executes in a subprocess exactly as a
user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize("name", ["quickstart.py", "cold_start.py"])
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # examples narrate what they do


def test_quickstart_reports_serving_response():
    result = run_example("quickstart.py")
    assert "serving response" in result.stdout
    assert "Intent" in result.stdout


def test_all_examples_exist_and_have_docstrings():
    expected = {
        "quickstart.py",
        "factoid_qa.py",
        "cold_start.py",
        "slice_improvement.py",
        "model_sync.py",
        "constrained_serving.py",
    }
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= found
    for name in expected:
        text = (EXAMPLES_DIR / name).read_text()
        assert text.startswith('"""'), f"{name} needs a module docstring"
        assert "def main()" in text
